//! Property tests for the flow-sensitive dataflow passes (A006–A009)
//! and the happens-before refinement of the race detector (A001/A010).
//!
//! Four contracts ride on these:
//!
//! * **Fixpoint determinism** — the worklist solver's answer is a
//!   function of the program alone: re-running analysis is bit-identical,
//!   and shuffling behavior *declaration order* (which perturbs every
//!   internal processing order: lowering, bottom-up summary order,
//!   cache seeding) preserves the finding multiset.
//! * **Corpus silence** — each new lint individually reports nothing on
//!   the shipped specification corpus.
//! * **Incremental bit-identity** — a 60-edit session over the largest
//!   corpus spec produces, after every single edit, an analysis report
//!   bit-identical to a cold run over the same text.
//! * **Race refinement** — splitting A001 into proven/unproven strictly
//!   reduces deny findings without losing a true positive: every racy
//!   variable is still reported, just at the right confidence.

use proptest::prelude::*;
use slif::analyze::{
    analyze_compiled_with_flow, check_flow_bounded, AnalysisConfig, AnalysisError, AnalysisReport,
    LintId, LintLevel, SourceMap,
};
use slif::core::{AccessFreq, AccessKind, CompiledDesign, Design, NodeKind};
use slif::frontend::{all_software_partition, allocate_proc_asic, build_design};
use slif::session::{EditDelta, EditSession, RecomputeTier, SessionConfig};
use slif::speclang::{corpus, parse, resolve, FlowProgram};
use slif::techlib::TechnologyLibrary;

const FLOW_LINTS: [LintId; 5] = [
    LintId::ValueRangeOverflow,
    LintId::UninitializedRead,
    LintId::DeadStore,
    LintId::ConstantCondition,
    LintId::UnprovenInterleaving,
];

// ---------------------------------------------------------------------
// Seeded random specification generator (xorshift, fully deterministic).

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn gen_expr(r: &mut Rng, vars: &[String], funcs: &[String], depth: u32) -> String {
    if depth == 0 || r.below(3) == 0 {
        match r.below(3) {
            0 => format!("{}", r.below(400)),
            1 if !funcs.is_empty() => format!("{}()", funcs[r.below(funcs.len() as u64) as usize]),
            _ => vars[r.below(vars.len() as u64) as usize].clone(),
        }
    } else {
        let op = ["+", "-", "*"][r.below(3) as usize];
        let lhs = gen_expr(r, vars, funcs, depth - 1);
        let rhs = gen_expr(r, vars, funcs, depth - 1);
        format!("({lhs} {op} {rhs})")
    }
}

fn gen_stmts(
    r: &mut Rng,
    vars: &[String],
    funcs: &[String],
    depth: u32,
    fresh: &mut u32,
    out: &mut String,
) {
    let count = 1 + r.below(3);
    for _ in 0..count {
        match r.below(if depth > 0 { 4 } else { 2 }) {
            0 | 1 => {
                let target = &vars[r.below(vars.len() as u64) as usize];
                let value = gen_expr(r, vars, funcs, 2);
                out.push_str(&format!("{target} = {value}; "));
            }
            2 => {
                let cmp = [">", "<", "==", "!="][r.below(4) as usize];
                let lhs = gen_expr(r, vars, funcs, 1);
                let rhs = gen_expr(r, vars, funcs, 1);
                out.push_str(&format!("if {lhs} {cmp} {rhs} {{ "));
                gen_stmts(r, vars, funcs, depth - 1, fresh, out);
                out.push_str("} else { ");
                gen_stmts(r, vars, funcs, depth - 1, fresh, out);
                out.push_str("} ");
            }
            _ => {
                let i = *fresh;
                *fresh += 1;
                let hi = 1 + r.below(9);
                out.push_str(&format!("for it{i} in 0 .. {hi} {{ "));
                gen_stmts(r, vars, funcs, depth - 1, fresh, out);
                out.push_str("} ");
            }
        }
    }
}

/// Generates the behavior declarations of a random spec: a few `func`s
/// over the globals, then a few `proc`s whose expressions may call them.
/// Returned separately from the header so tests can permute declaration
/// order.
fn gen_behaviors(seed: u64) -> (String, Vec<String>) {
    let mut r = Rng::new(seed);
    let globals: Vec<String> = (0..3).map(|i| format!("g{i}")).collect();
    let header = {
        let mut h = String::from("system T;\n");
        for g in &globals {
            h.push_str(&format!("var {g} : int<8>;\n"));
        }
        h
    };
    let mut fresh = 0u32;
    let mut decls = Vec::new();
    let mut funcs = Vec::new();
    for i in 0..(1 + r.below(2)) {
        let name = format!("F{i}");
        let mut body = format!("func {name}() -> int<8> {{ var a : int<8>; a = ");
        let vars: Vec<String> = globals.iter().cloned().chain(["a".to_owned()]).collect();
        body.push_str(&gen_expr(&mut r, &vars, &[], 2));
        body.push_str("; return a; }\n");
        decls.push(body);
        funcs.push(name);
    }
    for i in 0..(2 + r.below(3)) {
        let mut body = format!("proc P{i}() {{ var t : int<8>; ");
        let vars: Vec<String> = globals.iter().cloned().chain(["t".to_owned()]).collect();
        gen_stmts(&mut r, &vars, &funcs, 2, &mut fresh, &mut body);
        body.push_str("}\n");
        decls.push(body);
    }
    (header, decls)
}

fn flow_report(source: &str) -> AnalysisReport {
    let spec = parse(source).expect("generated spec parses");
    let flow = FlowProgram::from_spec(&spec);
    let cd = CompiledDesign::compile(&Design::new("gen"));
    analyze_compiled_with_flow(&cd, None, &AnalysisConfig::new(), &flow, None)
}

/// Declaration-order-independent view of a report: the multiset of
/// (lint, level, message) triples. Spans and ordering legitimately vary
/// with declaration order; the *facts* must not.
fn finding_multiset(report: &AnalysisReport) -> Vec<(String, String, String)> {
    let mut v: Vec<_> = report
        .findings()
        .iter()
        .map(|f| (f.lint.code().to_owned(), f.level.to_string(), f.message.clone()))
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fixpoint is a function of the program: analyzing the same
    /// random spec twice is bit-identical, and permuting the behavior
    /// declaration order — which reseeds the solver, the bottom-up
    /// summary order, and the cache in every internal ordering —
    /// preserves the finding multiset exactly.
    #[test]
    fn fixpoint_is_independent_of_processing_order(seed in 0u64..5000) {
        let (header, decls) = gen_behaviors(seed);
        let source = format!("{header}{}", decls.concat());
        let a = flow_report(&source);
        let b = flow_report(&source);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.to_string(), b.to_string());

        // Seeded Fisher–Yates permutation of the declarations.
        let mut r = Rng::new(seed ^ 0xdead_beef);
        let mut perm = decls.clone();
        for i in (1..perm.len()).rev() {
            perm.swap(i, r.below((i + 1) as u64) as usize);
        }
        let shuffled = flow_report(&format!("{header}{}", perm.concat()));
        prop_assert_eq!(finding_multiset(&a), finding_multiset(&shuffled));
    }

    /// The engine is total and bounded on random programs: bounding
    /// either refuses with the typed cap error or accepts, and analysis
    /// itself always returns a (deterministic) report — never a panic,
    /// never a hang.
    #[test]
    fn analysis_is_total_on_random_programs(seed in 0u64..5000, cap in 1u32..32) {
        let (header, decls) = gen_behaviors(seed);
        let source = format!("{header}{}", decls.concat());
        let spec = parse(&source).expect("generated spec parses");
        let flow = FlowProgram::from_spec(&spec);
        let config = AnalysisConfig::new().with_max_fixpoint_visits(cap);
        match check_flow_bounded(&flow, &config) {
            Ok(()) | Err(AnalysisError::WideningCapExceeded { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
        let cd = CompiledDesign::compile(&Design::new("gen"));
        let a = analyze_compiled_with_flow(&cd, None, &config, &flow, None);
        let b = analyze_compiled_with_flow(&cd, None, &config, &flow, None);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn each_new_lint_is_silent_on_the_corpus() {
    for entry in corpus::all() {
        let rs = entry.load().expect("corpus specs resolve");
        let sources = SourceMap::from_spec(rs.spec());
        let flow = FlowProgram::from_spec(rs.spec());
        let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
        let arch = allocate_proc_asic(&mut design);
        let partition = all_software_partition(&design, arch);
        let cd = CompiledDesign::compile(&design);
        let report = analyze_compiled_with_flow(
            &cd,
            Some(&partition),
            &AnalysisConfig::new(),
            &flow,
            Some(&sources),
        );
        for lint in FLOW_LINTS {
            assert_eq!(
                report.of(lint).count(),
                0,
                "{}: {lint} fired on the shipped corpus\n{report}",
                entry.name
            );
        }
    }
}

#[test]
fn tight_visit_cap_refuses_typed_and_analysis_degrades_silently() {
    let source = "system T;\nvar x : int<8>;\nprocess Main { for i in 0 .. 9 { x = x + 1; } wait 1; }\n";
    let spec = parse(source).expect("spec parses");
    let flow = FlowProgram::from_spec(&spec);

    let tight = AnalysisConfig::new().with_max_fixpoint_visits(2);
    let err = check_flow_bounded(&flow, &tight).expect_err("cap 2 cannot settle a loop");
    assert!(
        matches!(&err, AnalysisError::WideningCapExceeded { cap: 2, .. }),
        "{err}"
    );
    // Analysis stays total: the capped behavior degrades to silence
    // (⊤ summary, no flow findings) instead of failing the run.
    let cd = CompiledDesign::compile(&Design::new("capped"));
    let report = analyze_compiled_with_flow(&cd, None, &tight, &flow, None);
    assert!(report.is_clean(), "{report}");

    // The default budget settles the same loop via widening.
    check_flow_bounded(&flow, &AnalysisConfig::new()).expect("default cap settles");
}

/// The A001 refinement: one variable with two *observed* writers stays a
/// proven deny-level race; one whose interleaving no observed execution
/// exercises demotes to warn-level A010. Deny findings strictly shrink
/// (1 < 2) while the union still reports every racy variable.
#[test]
fn race_refinement_reduces_denials_without_losing_races() {
    let mut d = Design::new("mixed-races");
    let a = d.graph_mut().add_node("A", NodeKind::process());
    let b = d.graph_mut().add_node("B", NodeKind::process());
    let v1 = d.graph_mut().add_node("v1", NodeKind::scalar(8));
    let v2 = d.graph_mut().add_node("v2", NodeKind::scalar(8));
    d.graph_mut()
        .add_channel(a, v1.into(), AccessKind::Write)
        .expect("channel");
    d.graph_mut()
        .add_channel(b, v1.into(), AccessKind::Write)
        .expect("channel");
    d.graph_mut()
        .add_channel(a, v2.into(), AccessKind::Write)
        .expect("channel");
    let quiet = d
        .graph_mut()
        .add_channel(b, v2.into(), AccessKind::Write)
        .expect("channel");
    *d.graph_mut().channel_mut(quiet).freq_mut() = AccessFreq::new(0.0, 0, 0);

    let report = slif::analyze::analyze(&d, None, &AnalysisConfig::new());
    let proven: Vec<_> = report.of(LintId::SharedVariableRace).collect();
    let unproven: Vec<_> = report.of(LintId::UnprovenInterleaving).collect();
    assert_eq!(proven.len(), 1, "{report}");
    assert_eq!(unproven.len(), 1, "{report}");
    assert!(proven[0].message.contains("v1"), "{}", proven[0].message);
    assert_eq!(proven[0].level, LintLevel::Deny);
    assert!(unproven[0].message.contains("v2"), "{}", unproven[0].message);
    assert_eq!(unproven[0].level, LintLevel::Warn);
    // Strictly fewer denials than the pre-refinement detector (which
    // denied both), zero lost true positives (both variables reported).
    assert_eq!(report.deny_count(), 1, "{report}");
    assert_eq!(proven.len() + unproven.len(), 2);
}

/// Cold reference pipeline for the incremental test: full parse →
/// resolve → build → allocate → partition → compile → flow analysis.
fn cold_analysis(source: &str, config: &AnalysisConfig) -> AnalysisReport {
    let spec = parse(source).expect("parse");
    let rs = resolve(spec).expect("resolve");
    let sources = SourceMap::from_spec(rs.spec());
    let flow = FlowProgram::from_spec(rs.spec());
    let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
    let arch = allocate_proc_asic(&mut design);
    let partition = all_software_partition(&design, arch);
    let cd = CompiledDesign::compile(&design);
    analyze_compiled_with_flow(&cd, Some(&partition), config, &flow, Some(&sources))
}

/// Byte ranges of the numeric operand of every `wait N;` statement.
fn wait_sites(src: &str) -> Vec<(usize, usize)> {
    let bytes = src.as_bytes();
    let mut sites = Vec::new();
    let mut i = 0;
    while let Some(pos) = src[i..].find("wait ") {
        let start = i + pos + 5;
        let mut end = start;
        while end < bytes.len() && bytes[end].is_ascii_digit() {
            end += 1;
        }
        if end > start && bytes.get(end) == Some(&b';') {
            sites.push((start, end));
        }
        i = start;
    }
    sites
}

/// 60 consecutive warm edits over the largest corpus spec: after every
/// single edit the session's (memoized, sliced) analysis report must be
/// bit-identical to a cold analysis of the same text — findings, spans,
/// rendering, everything.
#[test]
fn sixty_edit_session_stays_bit_identical_to_cold_analysis() {
    let config = SessionConfig::default();
    let analysis_config = config.analysis.clone();
    let (mut session, open) = EditSession::open(corpus::ETHER, config);
    assert!(open.clean, "{:?}", open.diagnostics);

    let mut patched = 0usize;
    for i in 0..60usize {
        let sites = wait_sites(session.source());
        assert!(!sites.is_empty(), "spec lost its wait statements");
        let (start, end) = sites[i % sites.len()];
        let value = 1 + (i * 7) % 97;
        let update = session
            .apply_edit(&EditDelta::new(start, end, value.to_string()))
            .expect("edit applies");
        assert!(update.clean, "edit {i}: {:?}", update.diagnostics);
        if update.tier == RecomputeTier::Patched {
            patched += 1;
        }
        let warm = session.analysis().expect("clean session has a report");
        let cold = cold_analysis(session.source(), &analysis_config);
        assert_eq!(warm, &cold, "edit {i}: incremental report diverged from cold");
        assert_eq!(warm.to_string(), cold.to_string(), "edit {i}: rendering diverged");
    }
    assert!(
        patched >= 54,
        "only {patched}/60 edits took the patched tier — the warm path regressed"
    );
}
