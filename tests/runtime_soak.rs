//! Soak test for the `slif-runtime` job service.
//!
//! The contract under test, end to end: a multi-worker service fed a
//! 500-job mixed stream — clean parse/compile/estimate/explore/analyze
//! jobs (including lint analyses of deliberately defect-injected
//! designs) interleaved with malformed specs, corrupted specs,
//! over-limit inputs, and seeded worker panics (over 30% of the stream
//! faulted) — must
//!
//! * never abort the process (every panic is caught and isolated),
//! * give **every** job exactly one terminal state: a typed rejection at
//!   admission or exactly one [`JobOutcome`],
//! * return results for clean jobs that are **bit-identical** to running
//!   the same job inline with [`Job::run_inline`] (the service adds
//!   policy, never semantics),
//! * keep its books: terminal-state counters must sum to the admitted
//!   job count, and the health snapshot must reflect the carnage.

use slif::analyze::AnalysisConfig;
use slif::core::faults::{FaultInjector, RuntimeFaultKind};
use slif::core::gen::DesignGenerator;
use slif::core::{ClassKind, Design, NodeKind, Partition};
use slif::estimate::EstimatorConfig;
use slif::explore::{Algorithm, Objectives};
use slif::runtime::{
    Job, JobError, JobOutcome, JobService, Rejected, RetryPolicy, RunLimits, ServiceConfig,
};
use slif::speclang::ParseLimits;
use std::time::Duration;

const GOOD_SPEC: &str = "system T;\nvar x : int<8>;\nprocess Main { x = x + 1; }\n";
const MALFORMED_SPEC: &str = "system ;\nprocess { x = ; }\nif not\n";
const JOBS: usize = 500;
const WORKERS: usize = 4;
const MAX_ATTEMPTS: u32 = 3;

/// A small design with complete annotations, so estimation and
/// exploration succeed deterministically.
fn healthy_design() -> (Design, Partition) {
    let mut d = Design::new("soak");
    let class = d.add_class("proc", ClassKind::StdProcessor);
    let asic = d.add_class("asic", ClassKind::CustomHw);
    let a = d.graph_mut().add_node("A", NodeKind::process());
    let b = d.graph_mut().add_node("B", NodeKind::procedure());
    let call = d
        .graph_mut()
        .add_channel(a, b.into(), slif::core::AccessKind::Call)
        .expect("valid channel");
    for (node, ict, size) in [(a, 40u64, 200u64), (b, 10, 80)] {
        for cls in [class, asic] {
            d.graph_mut().node_mut(node).ict_mut().set(cls, ict);
            d.graph_mut().node_mut(node).size_mut().set(cls, size);
        }
    }
    let cpu = d.add_processor("cpu0", class);
    let hw = d.add_processor("asic0", asic);
    let bus = d.add_bus(slif::core::Bus::new("bus0", 16, 1, 4));
    let mut p = Partition::new(&d);
    p.assign_node(a, cpu.into());
    p.assign_node(b, hw.into());
    p.assign_channel(call, bus);
    (d, p)
}

/// What the stream generator expects of each job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expectation {
    /// Clean: must complete, bit-identical to inline execution.
    Clean,
    /// Malformed input: must fail with a typed error, matching inline.
    Malformed,
    /// Over-limit input: must be shed at admission with `TooLarge`.
    OverLimit,
    /// Seeded panic: must exhaust retries and fail `Panicked`.
    Panic,
}

fn job_stream(limits: &RunLimits) -> Vec<(Job, Expectation)> {
    let (design, partition) = healthy_design();
    // Seeded fault plan: ~30% of slots carry a runtime fault (half of
    // them worker panics). `QueueFull` slots submit real work — queue
    // saturation is provoked by the submission burst itself and absorbed
    // by the bounded-retry submit loop in the test body.
    let plan = FaultInjector::new(0x50A).plan_runtime_faults(JOBS, 0.3);
    let mut spec_corruptor = FaultInjector::new(99);
    let mut defect_injector = FaultInjector::new(0xA11);
    let oversized = "-- padding\n".repeat(limits.parse.max_bytes / 8);
    (0..JOBS)
        .map(|i| {
            if plan[i] == Some(RuntimeFaultKind::WorkerPanic) {
                return (
                    Job::InjectedPanic {
                        message: format!("seeded panic #{i}"),
                    },
                    Expectation::Panic,
                );
            }
            match i % 10 {
                3 => (
                    Job::ParseSpec {
                        source: MALFORMED_SPEC.to_owned(),
                    },
                    Expectation::Malformed,
                ),
                5 => {
                    // Seeded corruption may or may not still parse:
                    // classify by the inline reference executor, which
                    // is the semantics the service must reproduce.
                    let (corrupted, _why) = spec_corruptor.corrupt_spec(GOOD_SPEC);
                    let job = Job::ParseSpec { source: corrupted };
                    let expectation = if job.run_inline(limits).is_err() {
                        Expectation::Malformed
                    } else {
                        Expectation::Clean
                    };
                    (job, expectation)
                }
                7 => (
                    Job::ParseSpec {
                        source: oversized.clone(),
                    },
                    Expectation::OverLimit,
                ),
                0 => (
                    Job::Estimate {
                        design: design.clone(),
                        partition: partition.clone(),
                        config: EstimatorConfig::default(),
                    },
                    Expectation::Clean,
                ),
                1 => (
                    Job::CompileDesign {
                        design: design.clone(),
                    },
                    Expectation::Clean,
                ),
                4 => (
                    Job::Analyze {
                        design: design.clone(),
                        partition: Some(partition.clone()),
                        config: AnalysisConfig::new(),
                        source: None,
                    },
                    Expectation::Clean,
                ),
                6 => {
                    // Analysis is total: planted defects come back as
                    // findings, not failures, so these jobs still complete
                    // (bit-identical to inline, like every clean job).
                    let (mut dd, mut dp) = DesignGenerator::new(i as u64)
                        .behaviors(6)
                        .variables(4)
                        .processors(2)
                        .buses(2)
                        .build();
                    let _ = defect_injector.corrupt_analyzable(&mut dd, &mut dp, 2);
                    (
                        Job::Analyze {
                            design: dd,
                            partition: Some(dp),
                            config: AnalysisConfig::new(),
                            source: None,
                        },
                        Expectation::Clean,
                    )
                }
                2 => (
                    Job::Explore {
                        design: design.clone(),
                        start: partition.clone(),
                        objectives: Objectives::default(),
                        algorithm: Algorithm::RandomSearch {
                            iterations: 20,
                            seed: i as u64,
                        },
                    },
                    Expectation::Clean,
                ),
                _ => (
                    Job::ParseSpec {
                        source: GOOD_SPEC.to_owned(),
                    },
                    Expectation::Clean,
                ),
            }
        })
        .collect()
}

#[test]
fn soak_500_mixed_jobs_with_faults() {
    let limits =
        RunLimits::default().with_parse(ParseLimits::default().with_max_bytes(4096));
    let svc = JobService::start(
        ServiceConfig::new()
            .with_workers(WORKERS)
            .with_queue_capacity(32)
            .with_limits(limits)
            .with_retry(
                RetryPolicy::new()
                    .with_max_attempts(MAX_ATTEMPTS)
                    .with_base_delay(Duration::from_micros(200))
                    .with_max_delay(Duration::from_millis(2)),
            )
            .with_watchdog_interval(Duration::from_millis(5))
            .with_seed(42),
    );

    let stream = job_stream(&limits);
    let faulted = stream
        .iter()
        .filter(|(_, e)| *e != Expectation::Clean)
        .count();
    assert!(
        faulted * 10 >= JOBS * 3,
        "only {faulted}/{JOBS} jobs faulted; the soak needs ≥30%"
    );
    let expected_over_limit = stream
        .iter()
        .filter(|(_, e)| *e == Expectation::OverLimit)
        .count();
    assert!(expected_over_limit > 0, "stream carries over-limit jobs");

    // Submit everything, with bounded patience for backpressure: a
    // QueueFull rejection is retried briefly; if the queue never opens
    // up, that rejection is the job's terminal state (shed).
    let mut handles = Vec::new();
    let mut queue_full_rejections = 0usize;
    let mut shed_full = 0usize;
    let mut shed_too_large = 0usize;
    for (job, expectation) in stream {
        let mut submitted = None;
        for _ in 0..500 {
            match svc.submit(job.clone()) {
                Ok(handle) => {
                    submitted = Some(handle);
                    break;
                }
                Err(Rejected::QueueFull { capacity }) => {
                    assert_eq!(capacity, 32);
                    queue_full_rejections += 1;
                    std::thread::sleep(Duration::from_micros(500));
                }
                Err(Rejected::TooLarge { .. }) => {
                    assert_eq!(
                        expectation,
                        Expectation::OverLimit,
                        "only over-limit jobs may be shed as too large"
                    );
                    shed_too_large += 1;
                    break;
                }
                Err(other) => panic!("unexpected rejection: {other}"),
            }
        }
        match (submitted, expectation) {
            (Some(handle), _) => handles.push((handle, job, expectation)),
            (None, Expectation::OverLimit) => {}
            (None, _) => shed_full += 1,
        }
    }
    assert_eq!(
        shed_too_large, expected_over_limit,
        "every over-limit job is shed at admission, none executes"
    );

    // Every admitted job reaches exactly one terminal state.
    let mut completed = 0usize;
    let mut failed = 0usize;
    for (handle, job, expectation) in &handles {
        let outcome = handle.wait();
        assert_eq!(
            handle.try_outcome().as_ref(),
            Some(&outcome),
            "job {} changed terminal state",
            handle.id()
        );
        match outcome {
            JobOutcome::Completed {
                output,
                attempts,
                degraded,
            } => {
                completed += 1;
                assert_ne!(
                    *expectation,
                    Expectation::Panic,
                    "a panic job cannot complete"
                );
                assert!(!degraded, "all estimate inputs are healthy");
                assert_eq!(attempts, 1, "clean jobs succeed first try");
                // Clean jobs are bit-identical to inline execution.
                let inline = job
                    .run_inline(&limits)
                    .unwrap_or_else(|e| panic!("{} diverged from inline: {e}", job.kind()));
                assert_eq!(output, inline, "{} diverged from inline", job.kind());
            }
            JobOutcome::Failed { error, attempts } => {
                failed += 1;
                match expectation {
                    Expectation::Panic => {
                        assert_eq!(attempts, MAX_ATTEMPTS, "panic jobs exhaust all attempts");
                        assert!(
                            matches!(error, JobError::Panicked { .. }),
                            "panic job failed with {error}"
                        );
                    }
                    Expectation::Malformed => {
                        assert_eq!(attempts, 1, "typed errors are not retried");
                        assert!(
                            job.run_inline(&limits).is_err(),
                            "{} failed in service but succeeds inline: {error}",
                            job.kind()
                        );
                    }
                    Expectation::Clean | Expectation::OverLimit => {
                        panic!("{:?} job must not fail: {error}", expectation)
                    }
                }
            }
            other => panic!("unexpected terminal state {other:?}"),
        }
    }

    // The books balance: admitted = completed + failed, and the health
    // snapshot agrees with what we observed.
    std::thread::sleep(Duration::from_millis(25)); // let the watchdog respawn stragglers
    let health = svc.health();
    assert_eq!(completed + failed, handles.len());
    assert_eq!(health.completed as usize, completed);
    assert_eq!(health.failed as usize, failed);
    assert_eq!(health.submitted as usize, handles.len());
    assert_eq!(
        health.shed as usize,
        shed_too_large + queue_full_rejections,
        "every admission rejection is counted as shed"
    );
    assert!(health.worker_panics > 0, "panic jobs were injected");
    assert!(health.retried > 0, "panics are retried");
    assert_eq!(health.in_flight, 0);
    assert_eq!(health.queue_depth, 0);
    assert!(health.latency.count() > 0);
    assert_eq!(health.workers_alive, WORKERS, "pool held at strength");
    assert_eq!(
        handles.len() + shed_full + shed_too_large,
        JOBS,
        "every job was admitted or shed — none vanished"
    );

    svc.shutdown();
    // Shutdown is clean and admissions are refused afterwards.
    assert!(matches!(
        svc.submit(Job::ParseSpec {
            source: GOOD_SPEC.to_owned()
        }),
        Err(Rejected::ShuttingDown)
    ));
}
