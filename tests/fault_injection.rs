//! Fault-injection suite: seeded corruption through the whole pipeline.
//!
//! The robustness contract of the workspace is that a corrupted design or
//! specification is *reported* — by `validate`, by a `CoreError`, or by
//! parser diagnostics — and never panics. This suite drives hundreds of
//! seeded mutations (well over the 200 the roadmap asks for) through
//! parse → resolve → build → validate → estimate and asserts exactly
//! that, plus the recovery half of the contract: estimator defaults turn
//! missing-weight errors into warnings.

use proptest::prelude::*;
use slif::core::faults::FaultInjector;
use slif::core::gen::DesignGenerator;
use slif::core::validate::validate;
use slif::core::CoreError;
use slif::estimate::{DesignReport, EstimatorConfig};
use slif::frontend::{all_software_partition, allocate_proc_asic, build_design};
use slif::speclang::corpus;
use slif::techlib::TechnologyLibrary;

/// Runs every estimator over a (possibly corrupted) design and insists on
/// a `Result`, never a panic. Returns whether estimation succeeded.
fn estimate_survives(
    design: &slif::core::Design,
    partition: &slif::core::Partition,
) -> Result<DesignReport, CoreError> {
    DesignReport::compute(design, partition)
}

#[test]
fn corrupted_designs_are_reported_not_panicked() {
    let mut total_mutations = 0usize;
    let mut detected = 0usize;
    for seed in 0..120u64 {
        let (mut design, mut partition) = DesignGenerator::new(seed)
            .behaviors(4 + (seed % 7) as usize)
            .variables(2 + (seed % 5) as usize)
            .processors(1 + (seed % 3) as usize)
            .memories((seed % 2) as usize)
            .buses(1 + (seed % 2) as usize)
            .build();
        let count = 1 + (seed % 4) as usize;
        let applied = FaultInjector::new(seed).corrupt(&mut design, &mut partition, count);
        assert_eq!(applied.len(), count, "seed {seed} applied too few faults");
        total_mutations += applied.len();

        // Validation sweeps the damage without panicking...
        let report = validate(&design, Some(&partition));
        if !report.is_clean() {
            detected += 1;
        }
        // ...and estimation returns a Result either way. A clean report is
        // a promise: estimation must then succeed.
        let estimated = estimate_survives(&design, &partition);
        if report.is_clean() {
            let faults: Vec<String> = applied.iter().map(ToString::to_string).collect();
            assert!(
                estimated.is_ok(),
                "seed {seed}: validate reported clean but estimation failed: {:?}\nfaults: {}",
                estimated.err(),
                faults.join(", ")
            );
        }
    }
    assert!(
        total_mutations >= 200,
        "suite applied only {total_mutations} mutations"
    );
    // Every fault class is individually detectable; combined faults must
    // not hide each other either.
    assert_eq!(detected, 120, "only {detected}/120 corruptions were flagged");
}

#[test]
fn corrupted_specs_are_reported_not_panicked() {
    let lib = TechnologyLibrary::proc_asic();
    let mut total_mutations = 0usize;
    for entry in corpus::all() {
        for seed in 0..30u64 {
            let mut inj = FaultInjector::new(seed);
            let (corrupted, damage) = inj.corrupt_spec(entry.source);
            total_mutations += 1;

            // Recovery parsing always yields a partial AST plus diagnostics.
            let (spec, diagnostics) = slif::speclang::parse_partial(&corrupted);
            // The strict entry points agree: either everything still parses
            // and resolves, or a SpecError aggregates the diagnostics.
            match slif::speclang::parse(&corrupted) {
                Ok(parsed) => match slif::speclang::resolve(parsed) {
                    Ok(rs) => {
                        // Corruption slipped past the language checks (for
                        // example a junk byte inside a comment): the rest of
                        // the pipeline must treat the result as any other
                        // valid spec.
                        let mut design = build_design(&rs, &lib);
                        let arch = allocate_proc_asic(&mut design);
                        let partition = all_software_partition(&design, arch);
                        let report = validate(&design, Some(&partition));
                        let estimated = estimate_survives(&design, &partition);
                        assert!(
                            !report.is_clean() || estimated.is_ok(),
                            "{}/{seed} ({damage}): clean validation but estimation failed: {:?}",
                            entry.name,
                            estimated.err()
                        );
                    }
                    Err(err) => {
                        assert!(
                            !err.diagnostics().is_empty(),
                            "{}/{seed} ({damage}): empty resolver error",
                            entry.name
                        );
                    }
                },
                Err(err) => {
                    assert!(
                        !err.diagnostics().is_empty(),
                        "{}/{seed} ({damage}): empty parser error",
                        entry.name
                    );
                    assert!(
                        !diagnostics.is_empty(),
                        "{}/{seed} ({damage}): strict parse failed but recovery saw no issue",
                        entry.name
                    );
                }
            }
            // Partial ASTs still resolve-or-report and never panic.
            let _ = slif::speclang::resolve(spec);
        }
    }
    assert_eq!(total_mutations, 120);
}

#[test]
fn dropped_weights_degrade_gracefully_with_defaults() {
    let entry = corpus::by_name("fuzzy").unwrap();
    let rs = entry.load().unwrap();
    let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
    let arch = allocate_proc_asic(&mut design);
    let partition = all_software_partition(&design, arch);

    // Strip the weights from a process — the one node every estimator
    // must visit.
    let process = design
        .graph()
        .node_ids()
        .find(|&n| design.graph().node(n).kind().is_process())
        .unwrap();
    design.graph_mut().node_mut(process).ict_mut().clear();
    design.graph_mut().node_mut(process).size_mut().clear();

    // Strict estimation reports the missing annotation as a hard error.
    let err = DesignReport::compute(&design, &partition).unwrap_err();
    assert!(
        matches!(err, CoreError::MissingWeight { .. }),
        "expected MissingWeight, got {err}"
    );

    // With defaults configured, the same design estimates to completion
    // and every substitution is surfaced as a warning.
    let config = EstimatorConfig::default()
        .with_default_ict(25)
        .with_default_size(80);
    let report = DesignReport::compute_with(&design, &partition, config).unwrap();
    assert!(!report.warnings.is_empty(), "no degradation warnings");
    let lists: Vec<&str> = report.warnings.iter().map(|w| w.list).collect();
    assert!(lists.contains(&"ict"), "no ict substitution in {lists:?}");
    assert!(lists.contains(&"size"), "no size substitution in {lists:?}");
    for w in &report.warnings {
        assert!(
            w.to_string().contains("assumed default"),
            "warning display lost the substitution: {w}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary seed, arbitrary damage intensity: validation and
    /// estimation stay panic-free and agree (clean implies estimable).
    #[test]
    fn any_corruption_is_survivable(seed in 0u64..1_000_000, count in 1usize..8) {
        let (mut design, mut partition) = DesignGenerator::new(seed).build();
        let applied = FaultInjector::new(seed ^ 0x5eed).corrupt(&mut design, &mut partition, count);
        let report = validate(&design, Some(&partition));
        let estimated = estimate_survives(&design, &partition);
        if report.is_clean() {
            prop_assert!(
                estimated.is_ok(),
                "seed {}: clean validation, estimation error {:?}, faults {:?}",
                seed,
                estimated.err(),
                applied
            );
        }
    }

    /// Spec-text corruption: the recovering parser always returns, and the
    /// strict parser's error always carries diagnostics.
    #[test]
    fn any_spec_corruption_is_survivable(seed in 0u64..1_000_000) {
        let entry = corpus::all()[(seed % 4) as usize];
        let (corrupted, _damage) = FaultInjector::new(seed).corrupt_spec(entry.source);
        let (spec, _diags) = slif::speclang::parse_partial(&corrupted);
        let _ = slif::speclang::resolve(spec);
        if let Err(err) = slif::speclang::parse(&corrupted) {
            prop_assert!(!err.diagnostics().is_empty());
        }
    }

    /// The single-fault acceptance property: one injected fault of any
    /// class is always detected by validation.
    #[test]
    fn every_single_fault_is_detected(seed in 0u64..10_000, kind_ix in 0usize..11) {
        let (mut design, mut partition) = DesignGenerator::new(seed)
            .behaviors(5)
            .variables(3)
            .processors(2)
            .memories(1)
            .buses(2)
            .build();
        let kind = slif::core::faults::ALL_FAULT_KINDS[kind_ix];
        let mut inj = FaultInjector::new(seed);
        if inj.apply(kind, &mut design, &mut partition).is_some() {
            let report = validate(&design, Some(&partition));
            prop_assert!(!report.is_clean(), "seed {} {} undetected", seed, kind);
        }
    }
}
