//! Fault-injection suite: seeded corruption through the whole pipeline.
//!
//! The robustness contract of the workspace is that a corrupted design or
//! specification is *reported* — by `validate`, by a `CoreError`, or by
//! parser diagnostics — and never panics. This suite drives hundreds of
//! seeded mutations (well over the 200 the roadmap asks for) through
//! parse → resolve → build → validate → estimate and asserts exactly
//! that, plus the recovery half of the contract: estimator defaults turn
//! missing-weight errors into warnings.

use proptest::prelude::*;
use slif::core::faults::{FaultInjector, RuntimeFaultKind, ALL_CHECKPOINT_FAULT_KINDS};
use slif::core::gen::DesignGenerator;
use slif::core::validate::validate;
use slif::core::{CoreError, Design, Partition};
use slif::estimate::{DesignReport, EstimatorConfig, IncrementalEstimator};
use slif::explore::{
    explore, resume, Algorithm, AnnealingConfig, CheckpointError, ExplorationCheckpoint,
    Objectives, StopReason, Supervisor,
};
use slif::frontend::{all_software_partition, allocate_proc_asic, build_design};
use slif::runtime::{Job, JobOutcome, JobService, RetryPolicy, ServiceConfig};
use slif::speclang::corpus;
use slif::techlib::TechnologyLibrary;
use std::path::PathBuf;

/// Runs every estimator over a (possibly corrupted) design and insists on
/// a `Result`, never a panic. Returns whether estimation succeeded.
fn estimate_survives(
    design: &slif::core::Design,
    partition: &slif::core::Partition,
) -> Result<DesignReport, CoreError> {
    DesignReport::compute(design, partition)
}

#[test]
fn corrupted_designs_are_reported_not_panicked() {
    let mut total_mutations = 0usize;
    let mut detected = 0usize;
    for seed in 0..120u64 {
        let (mut design, mut partition) = DesignGenerator::new(seed)
            .behaviors(4 + (seed % 7) as usize)
            .variables(2 + (seed % 5) as usize)
            .processors(1 + (seed % 3) as usize)
            .memories((seed % 2) as usize)
            .buses(1 + (seed % 2) as usize)
            .build();
        let count = 1 + (seed % 4) as usize;
        let applied = FaultInjector::new(seed).corrupt(&mut design, &mut partition, count);
        assert_eq!(applied.len(), count, "seed {seed} applied too few faults");
        total_mutations += applied.len();

        // Validation sweeps the damage without panicking...
        let report = validate(&design, Some(&partition));
        if !report.is_clean() {
            detected += 1;
        }
        // ...and estimation returns a Result either way. A clean report is
        // a promise: estimation must then succeed.
        let estimated = estimate_survives(&design, &partition);
        if report.is_clean() {
            let faults: Vec<String> = applied.iter().map(ToString::to_string).collect();
            assert!(
                estimated.is_ok(),
                "seed {seed}: validate reported clean but estimation failed: {:?}\nfaults: {}",
                estimated.err(),
                faults.join(", ")
            );
        }
    }
    assert!(
        total_mutations >= 200,
        "suite applied only {total_mutations} mutations"
    );
    // Every fault class is individually detectable; combined faults must
    // not hide each other either.
    assert_eq!(detected, 120, "only {detected}/120 corruptions were flagged");
}

#[test]
fn corrupted_specs_are_reported_not_panicked() {
    let lib = TechnologyLibrary::proc_asic();
    let mut total_mutations = 0usize;
    for entry in corpus::all() {
        for seed in 0..30u64 {
            let mut inj = FaultInjector::new(seed);
            let (corrupted, damage) = inj.corrupt_spec(entry.source);
            total_mutations += 1;

            // Recovery parsing always yields a partial AST plus diagnostics.
            let (spec, diagnostics) = slif::speclang::parse_partial(&corrupted);
            // The strict entry points agree: either everything still parses
            // and resolves, or a SpecError aggregates the diagnostics.
            match slif::speclang::parse(&corrupted) {
                Ok(parsed) => match slif::speclang::resolve(parsed) {
                    Ok(rs) => {
                        // Corruption slipped past the language checks (for
                        // example a junk byte inside a comment): the rest of
                        // the pipeline must treat the result as any other
                        // valid spec.
                        let mut design = build_design(&rs, &lib);
                        let arch = allocate_proc_asic(&mut design);
                        let partition = all_software_partition(&design, arch);
                        let report = validate(&design, Some(&partition));
                        let estimated = estimate_survives(&design, &partition);
                        assert!(
                            !report.is_clean() || estimated.is_ok(),
                            "{}/{seed} ({damage}): clean validation but estimation failed: {:?}",
                            entry.name,
                            estimated.err()
                        );
                    }
                    Err(err) => {
                        assert!(
                            !err.diagnostics().is_empty(),
                            "{}/{seed} ({damage}): empty resolver error",
                            entry.name
                        );
                    }
                },
                Err(err) => {
                    assert!(
                        !err.diagnostics().is_empty(),
                        "{}/{seed} ({damage}): empty parser error",
                        entry.name
                    );
                    assert!(
                        !diagnostics.is_empty(),
                        "{}/{seed} ({damage}): strict parse failed but recovery saw no issue",
                        entry.name
                    );
                }
            }
            // Partial ASTs still resolve-or-report and never panic.
            let _ = slif::speclang::resolve(spec);
        }
    }
    assert_eq!(total_mutations, 120);
}

#[test]
fn dropped_weights_degrade_gracefully_with_defaults() {
    let entry = corpus::by_name("fuzzy").unwrap();
    let rs = entry.load().unwrap();
    let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
    let arch = allocate_proc_asic(&mut design);
    let partition = all_software_partition(&design, arch);

    // Strip the weights from a process — the one node every estimator
    // must visit.
    let process = design
        .graph()
        .node_ids()
        .find(|&n| design.graph().node(n).kind().is_process())
        .unwrap();
    design.graph_mut().node_mut(process).ict_mut().clear();
    design.graph_mut().node_mut(process).size_mut().clear();

    // Strict estimation reports the missing annotation as a hard error.
    let err = DesignReport::compute(&design, &partition).unwrap_err();
    assert!(
        matches!(err, CoreError::MissingWeight { .. }),
        "expected MissingWeight, got {err}"
    );

    // With defaults configured, the same design estimates to completion
    // and every substitution is surfaced as a warning.
    let config = EstimatorConfig::default()
        .with_default_ict(25)
        .with_default_size(80);
    let report = DesignReport::compute_with(&design, &partition, config).unwrap();
    assert!(!report.warnings.is_empty(), "no degradation warnings");
    let lists: Vec<&str> = report.warnings.iter().filter_map(|w| w.list()).collect();
    assert!(lists.contains(&"ict"), "no ict substitution in {lists:?}");
    assert!(lists.contains(&"size"), "no size substitution in {lists:?}");
    for w in &report.warnings {
        assert!(
            w.to_string().contains("assumed default"),
            "warning display lost the substitution: {w}"
        );
    }
}

/// A small generated design plus its complete starting partition.
fn small_design(seed: u64) -> (Design, Partition) {
    DesignGenerator::new(seed)
        .behaviors(5)
        .variables(3)
        .processors(2)
        .memories(1)
        .buses(2)
        .build()
}

/// A unique scratch path for checkpoint files.
fn scratch_ckpt(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("slif-fi-{tag}-{}.ckpt", std::process::id()))
}

/// The four supervised algorithms with small, test-sized parameters.
fn algorithm(ix: usize, seed: u64) -> Algorithm {
    match ix % 4 {
        0 => Algorithm::RandomSearch {
            iterations: 40,
            seed,
        },
        1 => Algorithm::GreedyImprove { max_passes: 3 },
        2 => Algorithm::SimulatedAnnealing {
            config: AnnealingConfig {
                t0: 5.0,
                alpha: 0.7,
                moves_per_temp: 16,
                t_min: 0.5,
            },
            seed,
        },
        _ => Algorithm::GroupMigration { max_passes: 2 },
    }
}

/// Produces real checkpoint bytes by interrupting a supervised run.
fn sample_checkpoint_bytes(seed: u64, tag: &str) -> (Design, Vec<u8>) {
    let (design, start) = small_design(seed);
    let path = scratch_ckpt(tag);
    let mut sup = Supervisor::unlimited()
        .with_budget(5)
        .with_checkpoints(&path, 1);
    let r = explore(
        &design,
        start,
        &Objectives::new(),
        &Algorithm::RandomSearch {
            iterations: 50,
            seed,
        },
        &mut sup,
    )
    .unwrap();
    assert_eq!(r.stop, StopReason::BudgetExhausted);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    (design, bytes)
}

#[test]
fn kill_and_resume_reproduces_every_algorithm_exactly() {
    let (design, start) = small_design(33);
    let objectives = Objectives::new();
    for ix in 0..4 {
        let alg = algorithm(ix, 17);
        let full = explore(
            &design,
            start.clone(),
            &objectives,
            &alg,
            &mut Supervisor::unlimited(),
        )
        .unwrap();
        assert!(full.result.evaluations > 2, "algorithm {ix} too short");

        let budget = full.result.evaluations / 2;
        let path = scratch_ckpt(&format!("resume-{ix}"));
        let mut sup = Supervisor::unlimited()
            .with_budget(budget)
            .with_checkpoints(&path, 7);
        let partial = explore(&design, start.clone(), &objectives, &alg, &mut sup).unwrap();
        assert_eq!(partial.stop, StopReason::BudgetExhausted, "algorithm {ix}");
        assert!(partial.checkpoints_written > 0, "algorithm {ix}");

        let ckpt = ExplorationCheckpoint::load(&path, &design).unwrap();
        let resumed = resume(&design, &objectives, ckpt, &mut Supervisor::unlimited()).unwrap();
        assert_eq!(resumed.stop, StopReason::Completed, "algorithm {ix}");
        assert_eq!(
            resumed.result.partition, full.result.partition,
            "algorithm {ix} partition diverged after resume"
        );
        assert_eq!(
            resumed.result.cost.to_bits(),
            full.result.cost.to_bits(),
            "algorithm {ix} cost diverged after resume"
        );
        assert_eq!(
            resumed.result.evaluations, full.result.evaluations,
            "algorithm {ix} evaluation count diverged after resume"
        );
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn truncated_mid_write_checkpoint_is_rejected_never_half_loaded() {
    // The atomic-write regression: a file that only holds a prefix of a
    // checkpoint (what a crash mid-write would leave without the
    // temp+rename protocol) must be rejected with a typed error at every
    // possible cut point, and must never panic or yield a checkpoint.
    let (design, bytes) = sample_checkpoint_bytes(7, "truncate");
    let path = scratch_ckpt("truncate-partial");
    for cut in (0..bytes.len()).step_by(3).chain([bytes.len() - 1]) {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = ExplorationCheckpoint::load(&path, &design).unwrap_err();
        assert!(
            matches!(
                err,
                CheckpointError::Truncated { .. } | CheckpointError::ChecksumMismatch
            ),
            "cut at {cut} gave {err:?}"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn checkpoint_design_and_version_mismatches_are_typed() {
    let (_, bytes) = sample_checkpoint_bytes(9, "mismatch");
    // Same generator seed, one extra processor: a different design.
    let (other, _) = DesignGenerator::new(9)
        .behaviors(5)
        .variables(3)
        .processors(3)
        .memories(1)
        .buses(2)
        .build();
    let err = ExplorationCheckpoint::from_bytes(&bytes, &other).unwrap_err();
    assert!(
        matches!(err, CheckpointError::DesignMismatch { .. }),
        "got {err:?}"
    );

    let (design, mut bumped) = sample_checkpoint_bytes(10, "version");
    bumped[8..12].copy_from_slice(&2u32.to_le_bytes());
    assert_eq!(
        ExplorationCheckpoint::from_bytes(&bumped, &design),
        Err(CheckpointError::UnsupportedVersion { found: 2 })
    );
}

#[test]
fn incremental_self_audit_repairs_a_corrupted_cache_entry() {
    // The estimator's self-audit contract: an artificially corrupted
    // cache entry is detected on the audit cadence, repaired, and the
    // repair is recorded as a CacheDivergence warning.
    let (design, start) = small_design(21);
    let mut est = IncrementalEstimator::new(&design, start)
        .unwrap()
        .with_audit(1)
        .unwrap();
    // Warm the size cache, then poison every component entry so the
    // round-robin audit must hit a damaged slot on the next move.
    for pm in design.pm_refs() {
        let _warm = est.size(pm);
        est.debug_corrupt_size_cache(pm, 13);
    }
    let n = design.graph().node_ids().next().unwrap();
    let home = est.partition().node_component(n).unwrap();
    for p in design.processor_ids() {
        est.move_node(n, p.into()).unwrap();
    }
    est.move_node(n, home).unwrap();
    assert!(
        est.cache_divergences() > 0,
        "audit never caught the poisoned cache"
    );
    assert!(
        est.warnings().iter().any(|w| w.is_cache_divergence()),
        "no CacheDivergence warning recorded"
    );
    // After a full sweep the caches agree with from-scratch estimation.
    est.audit_now();
    assert_eq!(est.audit_now(), 0, "repair did not converge");
}

#[test]
fn corrupted_designs_submitted_as_jobs_resolve_typed_never_abort() {
    // The service-level half of the corruption contract: a corrupted
    // design submitted as an estimation job must resolve to exactly one
    // typed outcome that agrees with inline execution — the service
    // neither hides an error nor invents one, and never aborts. The
    // breaker is disabled here: a failure burst would legitimately flip
    // later jobs into degraded estimation, which is a different contract
    // (covered by the service's own breaker tests).
    let svc = JobService::start(
        ServiceConfig::new().with_workers(2).with_breaker(
            slif::runtime::BreakerConfig::new().with_failure_threshold(u32::MAX),
        ),
    );
    let limits = slif::runtime::RunLimits::default();
    let mut outcomes = Vec::new();
    for seed in 200..240u64 {
        let (mut design, mut partition) = small_design(seed);
        let count = 1 + (seed % 3) as usize;
        let _applied = FaultInjector::new(seed).corrupt(&mut design, &mut partition, count);
        let job = Job::Estimate {
            design,
            partition,
            config: EstimatorConfig::default(),
        };
        let handle = svc.submit(job.clone()).unwrap();
        outcomes.push((handle, job));
    }
    let mut failures = 0usize;
    for (handle, job) in outcomes {
        let inline = job.run_inline(&limits);
        match handle.wait() {
            JobOutcome::Completed { output, .. } => {
                assert_eq!(Ok(output), inline, "service diverged from inline");
            }
            JobOutcome::Failed { error, attempts } => {
                failures += 1;
                assert_eq!(attempts, 1, "typed errors must not be retried");
                assert_eq!(Err(error), inline, "service diverged from inline");
            }
            other => panic!("unexpected terminal state {other:?}"),
        }
    }
    assert!(failures > 0, "no corruption reached the estimator");
    svc.shutdown();
}

#[test]
fn service_survives_a_planned_runtime_fault_storm() {
    // Runtime fault plan driving a live service: every WorkerPanic slot
    // becomes an injected panic, every QueueFull slot lands in a burst
    // against a tiny queue. The service must absorb all of it — panics
    // isolated and retried to a typed failure, overload shed with a
    // typed rejection — and keep its books balanced.
    let svc = JobService::start(
        ServiceConfig::new()
            .with_workers(2)
            .with_queue_capacity(4)
            .with_retry(
                RetryPolicy::new()
                    .with_max_attempts(2)
                    .with_base_delay(std::time::Duration::from_micros(100)),
            )
            .with_watchdog_interval(std::time::Duration::from_millis(2))
            .with_seed(7),
    );
    let plan = FaultInjector::new(0xFA17).plan_runtime_faults(120, 0.5);
    let mut handles = Vec::new();
    let mut shed = 0usize;
    for (i, slot) in plan.iter().enumerate() {
        let job = match slot {
            Some(RuntimeFaultKind::WorkerPanic) => Job::InjectedPanic {
                message: format!("storm #{i}"),
            },
            // QueueFull slots submit real work into the burst; the tiny
            // queue turns some of them into typed rejections.
            _ => {
                let (design, partition) = small_design(i as u64);
                Job::Estimate {
                    design,
                    partition,
                    config: EstimatorConfig::default(),
                }
            }
        };
        match svc.submit(job) {
            Ok(h) => handles.push((h, matches!(slot, Some(RuntimeFaultKind::WorkerPanic)))),
            Err(slif::runtime::Rejected::QueueFull { .. }) => shed += 1,
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    for (handle, is_panic) in &handles {
        match handle.wait() {
            JobOutcome::Failed { error, attempts } if *is_panic => {
                assert!(
                    matches!(error, slif::runtime::JobError::Panicked { .. }),
                    "panic slot failed with {error}"
                );
                assert_eq!(attempts, 2, "panic slots exhaust both attempts");
            }
            JobOutcome::Completed { .. } | JobOutcome::Failed { .. } => {}
            other => panic!("unexpected terminal state {other:?}"),
        }
    }
    let health = svc.health();
    assert_eq!(health.submitted as usize, handles.len());
    assert_eq!(health.shed as usize, shed);
    assert_eq!(
        (health.completed + health.failed) as usize,
        handles.len(),
        "every admitted job reached a terminal state"
    );
    assert!(health.worker_panics > 0, "the storm never hit a worker");
    svc.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Seeded corruption of real checkpoint bytes — truncation, bit
    /// flips, zeroed spans, smashed headers — is always rejected with a
    /// typed error, never a panic, and an untouched blob still loads.
    #[test]
    fn any_checkpoint_corruption_is_rejected(seed in 0u64..10_000, kind_ix in 0usize..4) {
        let (design, original) = sample_checkpoint_bytes(seed % 17, "corrupt");
        let kind = ALL_CHECKPOINT_FAULT_KINDS[kind_ix];
        let mut bytes = original.clone();
        let _damage = FaultInjector::new(seed).corrupt_checkpoint(&mut bytes, kind);
        let decoded = ExplorationCheckpoint::from_bytes(&bytes, &design);
        if bytes == original {
            // A zeroed span can land on already-zero bytes; the blob is
            // intact and must still decode.
            prop_assert!(decoded.is_ok());
        } else {
            prop_assert!(decoded.is_err(), "{kind}: corrupted checkpoint decoded");
        }
    }

    /// Interrupting any algorithm at an arbitrary evaluation budget and
    /// resuming from the stop checkpoint reproduces the uninterrupted
    /// run's best partition, cost bits, and evaluation count exactly.
    #[test]
    fn kill_and_resume_is_exact_at_any_budget(
        seed in 0u64..1_000,
        alg_ix in 0usize..4,
        budget_pick in 1u64..10_000,
    ) {
        let (design, start) = small_design(seed % 23);
        let objectives = Objectives::new();
        let alg = algorithm(alg_ix, seed);
        let full = explore(
            &design,
            start.clone(),
            &objectives,
            &alg,
            &mut Supervisor::unlimited(),
        ).unwrap();
        if full.result.evaluations <= 1 {
            return Ok(()); // nothing to interrupt
        }
        let budget = 1 + budget_pick % (full.result.evaluations - 1).max(1);

        let path = scratch_ckpt(&format!("prop-resume-{seed}-{alg_ix}"));
        let mut sup = Supervisor::unlimited()
            .with_budget(budget)
            .with_checkpoints(&path, 5);
        let partial = explore(&design, start, &objectives, &alg, &mut sup).unwrap();
        prop_assert_eq!(partial.stop, StopReason::BudgetExhausted);
        let ckpt = ExplorationCheckpoint::load(&path, &design).unwrap();
        std::fs::remove_file(&path).unwrap();
        let resumed = resume(&design, &objectives, ckpt, &mut Supervisor::unlimited()).unwrap();
        prop_assert_eq!(resumed.stop, StopReason::Completed);
        prop_assert_eq!(&resumed.result.partition, &full.result.partition);
        prop_assert_eq!(resumed.result.cost.to_bits(), full.result.cost.to_bits());
        prop_assert_eq!(resumed.result.evaluations, full.result.evaluations);
    }

    /// Arbitrary seed, arbitrary damage intensity: validation and
    /// estimation stay panic-free and agree (clean implies estimable).
    #[test]
    fn any_corruption_is_survivable(seed in 0u64..1_000_000, count in 1usize..8) {
        let (mut design, mut partition) = DesignGenerator::new(seed).build();
        let applied = FaultInjector::new(seed ^ 0x5eed).corrupt(&mut design, &mut partition, count);
        let report = validate(&design, Some(&partition));
        let estimated = estimate_survives(&design, &partition);
        if report.is_clean() {
            prop_assert!(
                estimated.is_ok(),
                "seed {}: clean validation, estimation error {:?}, faults {:?}",
                seed,
                estimated.err(),
                applied
            );
        }
    }

    /// Spec-text corruption: the recovering parser always returns, and the
    /// strict parser's error always carries diagnostics.
    #[test]
    fn any_spec_corruption_is_survivable(seed in 0u64..1_000_000) {
        let entry = corpus::all()[(seed % 4) as usize];
        let (corrupted, _damage) = FaultInjector::new(seed).corrupt_spec(entry.source);
        let (spec, _diags) = slif::speclang::parse_partial(&corrupted);
        let _ = slif::speclang::resolve(spec);
        if let Err(err) = slif::speclang::parse(&corrupted) {
            prop_assert!(!err.diagnostics().is_empty());
        }
    }

    /// The single-fault acceptance property: one injected fault of any
    /// class is always detected by validation.
    #[test]
    fn every_single_fault_is_detected(seed in 0u64..10_000, kind_ix in 0usize..11) {
        let (mut design, mut partition) = DesignGenerator::new(seed)
            .behaviors(5)
            .variables(3)
            .processors(2)
            .memories(1)
            .buses(2)
            .build();
        let kind = slif::core::faults::ALL_FAULT_KINDS[kind_ix];
        let mut inj = FaultInjector::new(seed);
        if inj.apply(kind, &mut design, &mut partition).is_some() {
            let report = validate(&design, Some(&partition));
            prop_assert!(!report.is_clean(), "seed {} {} undetected", seed, kind);
        }
    }
}

#[test]
fn analyzer_is_total_and_deterministic_on_corrupted_designs() {
    use slif::analyze::{analyze, AnalysisConfig};
    // Lint analysis has no error path at all: any design, however
    // damaged, produces a report — and the same design produces the same
    // report, byte for byte.
    for seed in 0..60u64 {
        let (mut design, mut partition) = DesignGenerator::new(seed)
            .behaviors(4 + (seed % 6) as usize)
            .variables(2 + (seed % 4) as usize)
            .processors(1 + (seed % 3) as usize)
            .buses(1 + (seed % 2) as usize)
            .build();
        let mut inj = FaultInjector::new(seed);
        let _ = inj.corrupt(&mut design, &mut partition, 1 + (seed % 3) as usize);
        let _ = inj.corrupt_analyzable(&mut design, &mut partition, 1 + (seed % 2) as usize);
        let config = AnalysisConfig::new();
        let a = analyze(&design, Some(&partition), &config);
        let b = analyze(&design, Some(&partition), &config);
        assert_eq!(a, b, "seed {seed}: report not deterministic");
        assert_eq!(
            a.to_string(),
            b.to_string(),
            "seed {seed}: rendering not deterministic"
        );
        let c = analyze(&design, None, &config);
        assert_eq!(c, analyze(&design, None, &config), "seed {seed}: no-partition run");
    }
}

#[test]
fn orphaned_variables_are_reported_as_dead_code() {
    use slif::analyze::{analyze, AnalysisConfig, LintId};
    use slif::core::faults::AnalyzableFaultKind;
    let mut hits = 0usize;
    for seed in 0..40u64 {
        let (mut design, mut partition) = DesignGenerator::new(seed)
            .behaviors(6)
            .variables(4)
            .processors(2)
            .buses(2)
            .build();
        let Some(fault) = FaultInjector::new(seed).apply_analyzable(
            AnalyzableFaultKind::OrphanVariable,
            &mut design,
            &mut partition,
        ) else {
            continue;
        };
        let report = analyze(&design, Some(&partition), &AnalysisConfig::new());
        assert!(
            report
                .of(LintId::DeadCode)
                .any(|f| f.message.contains(&format!("variable {} (", fault.target))),
            "seed {seed}: {fault} not reported\n{report}"
        );
        hits += 1;
    }
    assert!(hits >= 30, "only {hits}/40 seeds had an orphan target");
}

#[test]
fn dangling_bus_mappings_are_reported_by_the_bitwidth_lint() {
    use slif::analyze::{analyze, AnalysisConfig, LintId};
    use slif::core::faults::AnalyzableFaultKind;
    for seed in 0..40u64 {
        let (mut design, mut partition) = DesignGenerator::new(seed)
            .behaviors(5)
            .variables(3)
            .processors(2)
            .buses(2)
            .build();
        let fault = FaultInjector::new(seed)
            .apply_analyzable(
                AnalyzableFaultKind::DanglingBusMapping,
                &mut design,
                &mut partition,
            )
            .expect("generator designs always carry channels");
        let report = analyze(&design, Some(&partition), &AnalysisConfig::new());
        assert!(
            report.of(LintId::BitwidthMismatch).any(|f| {
                f.message.contains("does not exist")
                    && f.message.contains(&format!("channel {} ", fault.target))
            }),
            "seed {seed}: {fault} not reported\n{report}"
        );
    }
}

#[test]
fn injected_concurrency_tag_conflicts_race() {
    use slif::analyze::{analyze, AnalysisConfig, LintId};
    use slif::core::faults::AnalyzableFaultKind;
    use slif::core::{AccessKind, NodeKind};

    // Two processes reading one variable: clean. The injected conflict
    // turns both accesses into writes claiming the same concurrency
    // group, which is exactly what the race lint exists to catch.
    let mut d = Design::new("tag-conflict");
    let m1 = d.graph_mut().add_node("Main1", NodeKind::process());
    let m2 = d.graph_mut().add_node("Main2", NodeKind::process());
    let v = d.graph_mut().add_node("v", NodeKind::scalar(8));
    d.graph_mut()
        .add_channel(m1, v.into(), AccessKind::Read)
        .expect("fixture channel");
    d.graph_mut()
        .add_channel(m2, v.into(), AccessKind::Read)
        .expect("fixture channel");
    let mut p = Partition::new(&d);

    let config = AnalysisConfig::new();
    let baseline = analyze(&d, None, &config);
    assert_eq!(
        baseline.of(LintId::SharedVariableRace).count(),
        0,
        "{baseline}"
    );

    FaultInjector::new(5)
        .apply_analyzable(AnalyzableFaultKind::ConcurrencyTagConflict, &mut d, &mut p)
        .expect("fixture has a doubly-accessed variable");
    let report = analyze(&d, None, &config);
    assert_eq!(report.of(LintId::SharedVariableRace).count(), 1, "{report}");
}

#[test]
fn planted_dataflow_defects_fire_their_lints() {
    use slif::analyze::{analyze_compiled_with_flow, AnalysisConfig, LintId};
    use slif::core::faults::ALL_DATAFLOW_DEFECT_KINDS;
    use slif::core::CompiledDesign;
    use slif::speclang::FlowProgram;

    let lib = TechnologyLibrary::proc_asic();
    let config = AnalysisConfig::new();
    let flow_lints = [
        LintId::ValueRangeOverflow,
        LintId::UninitializedRead,
        LintId::DeadStore,
        LintId::ConstantCondition,
    ];
    for entry in corpus::all() {
        for seed in 0..5u64 {
            let mut inj = FaultInjector::new(seed);
            let (mutated, names) =
                inj.plant_dataflow_defects(entry.source, &ALL_DATAFLOW_DEFECT_KINDS);
            assert_eq!(names.len(), ALL_DATAFLOW_DEFECT_KINDS.len());

            // The defects are semantic: the poisoned spec still parses,
            // resolves, and builds like any healthy one.
            let parsed = slif::speclang::parse(&mutated)
                .unwrap_or_else(|e| panic!("{}/{seed}: planted spec must parse: {e}", entry.name));
            let flow = FlowProgram::from_spec(&parsed);
            let rs = slif::speclang::resolve(parsed)
                .unwrap_or_else(|e| panic!("{}/{seed}: planted spec must resolve: {e}", entry.name));
            let mut design = build_design(&rs, &lib);
            let arch = allocate_proc_asic(&mut design);
            let partition = all_software_partition(&design, arch);
            let cd = CompiledDesign::compile(&design);
            let report = analyze_compiled_with_flow(&cd, Some(&partition), &config, &flow, None);

            // The corpus itself is lint-silent (analyze_props holds that
            // line), so each planted kind accounts for exactly one
            // finding of exactly its lint.
            for (kind, lint) in ALL_DATAFLOW_DEFECT_KINDS.iter().zip(flow_lints) {
                assert_eq!(
                    report.of(lint).count(),
                    1,
                    "{}/{seed}: planted {kind} must fire {lint} exactly once\n{report}",
                    entry.name
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Durable-store fault suites: each `StoreFaultKind` must land on its
// documented recovery outcome — never a panic, never a replayed or
// served corrupt record.
// ---------------------------------------------------------------------

/// Builds a journal fixture with a known record mix and returns its
/// clean on-disk bytes: 3 accepted, 2 completed, 1 cancelled.
fn journal_fixture(path: &std::path::Path) -> Vec<u8> {
    use slif::store::{JobRecord, Journal};
    let _ = std::fs::remove_file(path);
    let (mut journal, report) = Journal::open(path).expect("fresh journal");
    assert_eq!(report.records_replayed, 0);
    for id in 1u64..=3 {
        journal
            .append(&JobRecord::Accepted {
                id,
                payload: vec![0x41; 40 + id as usize],
            })
            .expect("append accepted");
    }
    for id in 1u64..=2 {
        journal
            .append(&JobRecord::Completed {
                id,
                status: 200,
                body: vec![0x42; 64],
            })
            .expect("append completed");
    }
    journal
        .append(&JobRecord::Cancelled { id: 3 })
        .expect("append cancelled");
    drop(journal);
    std::fs::read(path).expect("read fixture bytes")
}

#[test]
fn every_journal_store_fault_recovers_to_its_documented_outcome() {
    use slif::core::faults::{StoreFaultKind, ALL_STORE_FAULT_KINDS};
    use slif::store::{JobRecord, Journal};

    let dir = std::env::temp_dir().join(format!("slif-fi-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("journal.wal");
    let clean = journal_fixture(&path);
    const RECORDS: u64 = 6;

    for &kind in &ALL_STORE_FAULT_KINDS {
        for seed in 0..40u64 {
            let mut bytes = clean.clone();
            let desc = FaultInjector::new(seed ^ 0x51F0)
                .corrupt_store_file(&mut bytes, kind);
            std::fs::write(&path, &bytes).expect("write corrupted image");
            let sidecar = dir.join("journal.wal.corrupt");
            let _ = std::fs::remove_file(&sidecar);

            // Recovery is total: typed report, no panic.
            let (mut journal, report) =
                Journal::open(&path).unwrap_or_else(|e| panic!("{kind}/{seed} ({desc}): {e}"));
            let ctx = format!("{kind}/{seed} ({desc}): {report:?}");

            match kind {
                StoreFaultKind::StaleVersionHeader => {
                    // A header this build cannot read poisons the whole
                    // file: quarantined wholesale, zero records trusted.
                    assert!(report.header_quarantined, "{ctx}");
                    assert_eq!(report.records_replayed, 0, "{ctx}");
                    assert_eq!(report.quarantined_bytes, clean.len() as u64, "{ctx}");
                    assert!(sidecar.exists(), "{ctx}");
                }
                StoreFaultKind::TornFinalRecord => {
                    // A tear of <=16 bytes can only damage the final
                    // (21-byte) record: everything acknowledged before
                    // it replays, the tail is quarantined.
                    assert_eq!(report.records_replayed, RECORDS - 1, "{ctx}");
                    assert!(report.truncated_at.is_some(), "{ctx}");
                    assert!(report.quarantined_bytes > 0, "{ctx}");
                    assert!(sidecar.exists(), "{ctx}");
                }
                StoreFaultKind::MidFileBitFlip => {
                    // The CRC catches the flip at some record: a clean
                    // prefix replays, nothing at or past the damage does.
                    assert!(report.truncated_at.is_some(), "{ctx}");
                    assert!(report.records_replayed < RECORDS, "{ctx}");
                    assert!(report.quarantined_bytes > 0, "{ctx}");
                }
                StoreFaultKind::TruncatedSegment => {
                    // An arbitrary cut never panics and never invents
                    // records; a cut inside the header quarantines the
                    // file, a cut on a record boundary is a clean short
                    // journal, anything else truncates at the damage.
                    assert!(report.records_replayed < RECORDS, "{ctx}");
                    if !report.header_quarantined && report.truncated_at.is_none() {
                        assert_eq!(report.quarantined_bytes, 0, "{ctx}");
                    }
                }
                _ => unreachable!("unknown store fault kind"),
            }
            // Replayed terminal records are intact, never half-decoded.
            for (id, status, body) in &report.done {
                assert!((1..=2).contains(id), "{ctx}");
                assert_eq!(*status, 200, "{ctx}");
                assert_eq!(body.len(), 64, "{ctx}");
            }

            // Whatever was lost, the recovered journal must still be a
            // working journal: append, reopen, replay.
            journal
                .append(&JobRecord::Accepted {
                    id: 99,
                    payload: vec![0x43; 8],
                })
                .expect("post-recovery append");
            drop(journal);
            let (_, after) = Journal::open(&path).expect("post-recovery reopen");
            assert!(
                after.pending.iter().any(|p| p.id == 99),
                "{ctx}: post-recovery record lost"
            );
            // Restore the clean fixture for the next iteration.
            std::fs::write(&path, &clean).expect("restore fixture");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_cache_store_fault_is_a_quarantined_miss_never_a_corrupt_hit() {
    use slif::core::faults::ALL_STORE_FAULT_KINDS;
    use slif::store::DesignCache;

    let (design, _) = DesignGenerator::new(7)
        .behaviors(6)
        .variables(4)
        .processors(2)
        .memories(1)
        .buses(1)
        .build();
    let source = b"spec bytes keyed by content, not by name";

    for &kind in &ALL_STORE_FAULT_KINDS {
        for seed in 0..25u64 {
            let dir = std::env::temp_dir().join(format!(
                "slif-fi-cache-{kind}-{seed}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let cache = DesignCache::open(&dir).expect("open cache");
            cache.put(source, &design).expect("seed the cache");
            assert_eq!(cache.get(source).as_ref(), Some(&design), "clean hit");

            // Corrupt one of the two files backing the entry — the ref
            // on even seeds, the object on odd ones.
            let sub = if seed % 2 == 0 { "refs" } else { "objects" };
            let file = std::fs::read_dir(dir.join(sub))
                .expect("cache subdir")
                .filter_map(Result::ok)
                .map(|e| e.path())
                .find(|p| p.extension().is_none())
                .expect("one cache file");
            let mut bytes = std::fs::read(&file).expect("read cache file");
            let desc = FaultInjector::new(seed ^ 0xCACE).corrupt_store_file(&mut bytes, kind);
            std::fs::write(&file, &bytes).expect("write corrupted file");

            // Never a corrupt design, never a panic: a verified miss.
            let got = cache.get(source);
            let stats = cache.stats();
            let ctx = format!("{kind}/{seed} on {sub} ({desc}): {stats:?}");
            match got {
                None => assert!(stats.quarantined > 0 || stats.misses > 0, "{ctx}"),
                // A truncation that keeps the whole file is a no-op;
                // any served hit must still verify bit-identical.
                Some(back) => assert_eq!(back, design, "{ctx}"),
            }

            // The miss is self-healing: re-put, then a verified hit.
            cache.put(source, &design).expect("re-put after quarantine");
            assert_eq!(
                cache.get(source).as_ref(),
                Some(&design),
                "{ctx}: cache did not heal"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
