//! Integration test: the full SpecSyn flow across all crates.
//!
//! spec text → parse/resolve → CDFG → pre-compile/pre-synthesize → SLIF →
//! allocate → partition (several algorithms) → estimate → serialize →
//! reload → identical estimates.

use slif::core::{text, PmRef};
use slif::estimate::{DesignReport, EstimatorConfig, ExecTimeEstimator};
use slif::explore::{greedy_improve, simulated_annealing, AnnealingConfig, Objectives};
use slif::frontend::{all_software_partition, allocate_proc_asic, build_design};
use slif::speclang::corpus;
use slif::techlib::TechnologyLibrary;

#[test]
fn partitioners_improve_the_answering_machine() {
    let rs = corpus::by_name("ans").unwrap().load().unwrap();
    let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
    let arch = allocate_proc_asic(&mut design);
    let start = all_software_partition(&design, arch);

    let main = design.graph().node_by_name("AnsMain").unwrap();
    let t_start = ExecTimeEstimator::new(&design, &start)
        .exec_time(main)
        .unwrap();
    let objectives = Objectives::new()
        .try_with_deadline(main, t_start / 2.0)
        .unwrap();

    let greedy = greedy_improve(&design, start.clone(), &objectives, 30).unwrap();
    let sa = simulated_annealing(
        &design,
        start.clone(),
        &objectives,
        AnnealingConfig::default(),
        9,
    )
    .unwrap();
    for (name, r) in [("greedy", &greedy), ("sa", &sa)] {
        r.partition.validate(&design).unwrap();
        let t = ExecTimeEstimator::new(&design, &r.partition)
            .exec_time(main)
            .unwrap();
        assert!(
            t < t_start,
            "{name}: partitioning should beat all-software ({t} vs {t_start})"
        );
    }
}

#[test]
fn hardware_offload_speeds_up_every_corpus_system() {
    // Moving the heaviest procedure (and everything else fixed) to the
    // ASIC must never slow the system down when the ASIC class is faster,
    // unless communication dominates — greedy search should find *some*
    // improvement for every corpus entry.
    for entry in corpus::all() {
        let rs = entry.load().unwrap();
        let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
        let arch = allocate_proc_asic(&mut design);
        let start = all_software_partition(&design, arch);
        let r = greedy_improve(&design, start.clone(), &Objectives::new(), 15).unwrap();
        let mut est0 = slif::estimate::IncrementalEstimator::new(&design, start).unwrap();
        let c0 = slif::explore::cost(&mut est0, &Objectives::new()).unwrap();
        assert!(
            r.cost <= c0 + 1e-12,
            "{}: greedy worsened cost {c0} -> {}",
            entry.name,
            r.cost
        );
    }
}

#[test]
fn serialized_designs_estimate_identically() {
    for entry in corpus::all() {
        let rs = entry.load().unwrap();
        let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
        let arch = allocate_proc_asic(&mut design);
        let part = all_software_partition(&design, arch);

        let design_text = text::write_design(&design);
        let part_text = text::write_partition(&design, &part);
        let design2 = text::parse_design(&design_text).unwrap();
        let part2 = text::parse_partition(&design2, &part_text).unwrap();
        assert_eq!(design, design2, "{}: design roundtrip", entry.name);
        assert_eq!(part, part2, "{}: partition roundtrip", entry.name);

        let r1 = DesignReport::compute(&design, &part).unwrap();
        let r2 = DesignReport::compute(&design2, &part2).unwrap();
        assert_eq!(r1, r2, "{}: reports diverge after reload", entry.name);
    }
}

#[test]
fn estimation_modes_bracket_each_other_on_the_corpus() {
    use slif::core::FreqMode;
    for entry in corpus::all() {
        let rs = entry.load().unwrap();
        let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
        let arch = allocate_proc_asic(&mut design);
        let part = all_software_partition(&design, arch);
        for n in design.graph().node_ids() {
            if !design.graph().node(n).kind().is_process() {
                continue;
            }
            let t = |mode: FreqMode| {
                ExecTimeEstimator::with_config(
                    &design,
                    &part,
                    EstimatorConfig::default().with_mode(mode),
                )
                .exec_time(n)
                .unwrap()
            };
            let (min, avg, max) = (t(FreqMode::Min), t(FreqMode::Average), t(FreqMode::Max));
            assert!(
                min <= avg + 1e-6 && avg <= max + 1e-6,
                "{}: {} min {min} avg {avg} max {max}",
                entry.name,
                design.graph().node(n).name()
            );
        }
    }
}

#[test]
fn concurrency_aware_estimates_never_exceed_sequential() {
    for entry in corpus::all() {
        let rs = entry.load().unwrap();
        let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
        let arch = allocate_proc_asic(&mut design);
        let part = all_software_partition(&design, arch);
        for n in design.graph().node_ids() {
            if !design.graph().node(n).kind().is_behavior() {
                continue;
            }
            let seq = ExecTimeEstimator::new(&design, &part).exec_time(n).unwrap();
            let conc = ExecTimeEstimator::with_config(
                &design,
                &part,
                EstimatorConfig::default().with_concurrency_aware(true),
            )
            .exec_time(n)
            .unwrap();
            assert!(conc <= seq + 1e-6, "{}: {conc} > {seq}", entry.name);
        }
    }
}

#[test]
fn sharing_aware_hw_size_is_bounded_by_plain_sum() {
    let rs = corpus::by_name("fuzzy").unwrap().load().unwrap();
    let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
    let arch = allocate_proc_asic(&mut design);
    // All behaviors on the ASIC.
    let mut part = all_software_partition(&design, arch);
    for n in design.graph().node_ids() {
        if design.graph().node(n).kind().is_behavior() {
            part.assign_node(n, PmRef::Processor(arch.asic));
        }
    }
    let asic = PmRef::Processor(arch.asic);
    let plain = slif::estimate::size(&design, &part, asic).unwrap();
    let shared0 = slif::estimate::size_shared(&design, &part, asic, 0.0).unwrap();
    let shared1 = slif::estimate::size_shared(&design, &part, asic, 1.0).unwrap();
    assert!(shared0 < plain, "perfect sharing must shrink the estimate");
    assert_eq!(shared1, plain, "no sharing degenerates to Equation 4");
}
