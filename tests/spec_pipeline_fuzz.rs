//! Pipeline fuzzing: random specifications through the whole flow.
//!
//! A seeded generator emits structurally valid specifications; every one
//! must parse, resolve, pretty-print to a fixed point, lower to CDFGs,
//! build into a SLIF design whose every channel annotation is consistent,
//! estimate without error, and simulate within its guards.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slif::estimate::DesignReport;
use slif::frontend::{all_software_partition, allocate_proc_asic, build_design};
use slif::sim::{simulate, PortStimulus, SimConfig, Stimulus};
use slif::techlib::TechnologyLibrary;
use std::fmt::Write as _;

/// Generates a random, valid specification as source text.
fn gen_spec(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    let _ = writeln!(out, "system Gen{seed};");

    let n_in = rng.gen_range(1..=3);
    let n_out = rng.gen_range(1..=2);
    for i in 0..n_in {
        let _ = writeln!(out, "port pin{i} : in int<8>;");
    }
    for i in 0..n_out {
        let _ = writeln!(out, "port pout{i} : out int<16>;");
    }

    let n_scalars = rng.gen_range(2..=6);
    let n_arrays = rng.gen_range(1..=3);
    for i in 0..n_scalars {
        let _ = writeln!(out, "var v{i} : int<16>;");
    }
    for i in 0..n_arrays {
        let len = [8, 16, 32][rng.gen_range(0usize..3)];
        let _ = writeln!(out, "var a{i} : int<8>[{len}];");
    }

    // Integer expression over the declared names (depth-limited).
    fn expr(rng: &mut StdRng, scalars: usize, arrays: usize, ins: usize, depth: u32) -> String {
        if depth == 0 || rng.gen_bool(0.4) {
            return match rng.gen_range(0..4) {
                0 => format!("{}", rng.gen_range(0..100)),
                1 => format!("v{}", rng.gen_range(0..scalars)),
                2 if arrays > 0 => {
                    format!("a{}[{}]", rng.gen_range(0..arrays), rng.gen_range(0..8))
                }
                _ => format!("pin{}", rng.gen_range(0..ins)),
            };
        }
        let op = ["+", "-", "*"][rng.gen_range(0usize..3)];
        let l = expr(rng, scalars, arrays, ins, depth - 1);
        let r = expr(rng, scalars, arrays, ins, depth - 1);
        match rng.gen_range(0..4) {
            0 => format!("min({l}, {r})"),
            1 => format!("abs({l})"),
            _ => format!("({l} {op} {r})"),
        }
    }

    fn cond(rng: &mut StdRng, scalars: usize, arrays: usize, ins: usize) -> String {
        let op = ["==", "!=", "<", ">", "<=", ">="][rng.gen_range(0usize..6)];
        format!(
            "{} {op} {}",
            expr(rng, scalars, arrays, ins, 1),
            expr(rng, scalars, arrays, ins, 0)
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn stmts(
        rng: &mut StdRng,
        scalars: usize,
        arrays: usize,
        ins: usize,
        outs: usize,
        callables: usize,
        depth: u32,
        loop_level: u32,
        out: &mut String,
        pad: &str,
    ) {
        let n = rng.gen_range(1..=3);
        for _ in 0..n {
            match rng.gen_range(0..8) {
                0..=2 => {
                    let v = rng.gen_range(0..scalars);
                    let e = expr(rng, scalars, arrays, ins, 2);
                    let _ = writeln!(out, "{pad}v{v} = {e};");
                }
                3 if arrays > 0 => {
                    let a = rng.gen_range(0..arrays);
                    let idx = rng.gen_range(0..8);
                    let e = expr(rng, scalars, arrays, ins, 1);
                    let _ = writeln!(out, "{pad}a{a}[{idx}] = {e};");
                }
                4 if depth > 0 => {
                    let c = cond(rng, scalars, arrays, ins);
                    let p = rng.gen_range(1..=9);
                    let _ = writeln!(out, "{pad}if {c} prob 0.{p} {{");
                    stmts(
                        rng,
                        scalars,
                        arrays,
                        ins,
                        outs,
                        callables,
                        depth - 1,
                        loop_level,
                        out,
                        &format!("{pad}  "),
                    );
                    let _ = writeln!(out, "{pad}}}");
                }
                5 if depth > 0 && loop_level < 2 => {
                    let hi = rng.gen_range(1..8);
                    let lv = format!("i{loop_level}");
                    let _ = writeln!(out, "{pad}for {lv} in 0 .. {hi} {{");
                    stmts(
                        rng,
                        scalars,
                        arrays,
                        ins,
                        outs,
                        callables,
                        depth - 1,
                        loop_level + 1,
                        out,
                        &format!("{pad}  "),
                    );
                    let _ = writeln!(out, "{pad}}}");
                }
                6 if callables > 0 => {
                    let b = rng.gen_range(0..callables);
                    let e = expr(rng, scalars, arrays, ins, 1);
                    let _ = writeln!(out, "{pad}call b{b}({e});");
                }
                _ => {
                    let o = rng.gen_range(0..outs);
                    let e = expr(rng, scalars, arrays, ins, 1);
                    let _ = writeln!(out, "{pad}pout{o} = {e};");
                }
            }
        }
    }

    // Procedures: b0..bK, each only calling lower-numbered ones.
    let n_procs = rng.gen_range(1..=4);
    for b in 0..n_procs {
        let _ = writeln!(out, "proc b{b}(x : int<8>) {{");
        let _ = writeln!(out, "  v0 = v0 + x;");
        stmts(
            &mut rng, n_scalars, n_arrays, n_in, n_out, b, 2, 0, &mut out, "  ",
        );
        let _ = writeln!(out, "}}");
    }

    // One process driving everything.
    let _ = writeln!(out, "process Main {{");
    stmts(
        &mut rng, n_scalars, n_arrays, n_in, n_out, n_procs, 3, 0, &mut out, "  ",
    );
    let _ = writeln!(out, "  wait {};", rng.gen_range(1..100));
    let _ = writeln!(out, "}}");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_specs_survive_the_whole_pipeline(seed in 0u64..100_000) {
        let source = gen_spec(seed);

        // Parse and resolve.
        let rs = slif::speclang::parse_and_resolve(&source)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{source}"));

        // Pretty-printing is a fixed point through the parser.
        let printed = slif::speclang::pretty(rs.spec());
        let reparsed = slif::speclang::parse(&printed)
            .unwrap_or_else(|e| panic!("seed {seed} reparse: {e}\n{printed}"));
        prop_assert_eq!(slif::speclang::pretty(&reparsed), printed);

        // Build and validate SLIF.
        let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
        let arch = allocate_proc_asic(&mut design);
        let part = all_software_partition(&design, arch);
        part.validate(&design)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{source}"));

        // Channel annotations are internally consistent.
        for c in design.graph().channel_ids() {
            let ch = design.graph().channel(c);
            prop_assert!(ch.freq().is_consistent(), "seed {}: {}", seed, ch);
            prop_assert!(ch.bits() > 0);
        }

        // Full estimate suite runs.
        let report = DesignReport::compute(&design, &part)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{source}"));
        prop_assert_eq!(report.processes.len(), 1);

        // And the specification executes.
        let mut stim = Stimulus::new();
        for p in &rs.spec().ports {
            stim = stim.with_port(&p.name, PortStimulus::Ramp { start: 1, step: 3 });
        }
        let sim = simulate(
            &rs,
            &stim,
            SimConfig { rounds: 4, ..SimConfig::default() },
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{source}"));
        prop_assert_eq!(sim.executions.get("Main"), Some(&4));
    }

    /// Dynamic access rates of random specs always respect the static
    /// [min, max] envelope.
    #[test]
    fn random_specs_respect_the_access_envelope(seed in 0u64..100_000) {
        let source = gen_spec(seed);
        let rs = slif::speclang::parse_and_resolve(&source).expect("valid by construction");
        let design = build_design(&rs, &TechnologyLibrary::proc_asic());
        let mut stim = Stimulus::new();
        for p in &rs.spec().ports {
            stim = stim.with_port(&p.name, PortStimulus::Sequence(vec![0, 7, 200, 3]));
        }
        let sim = simulate(&rs, &stim, SimConfig { rounds: 8, ..SimConfig::default() })
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{source}"));
        let g = design.graph();
        for c in g.channel_ids() {
            let ch = g.channel(c);
            let src = g.node(ch.src()).name();
            let dst = match ch.dst() {
                slif::core::AccessTarget::Node(n) => g.node(n).name().to_owned(),
                slif::core::AccessTarget::Port(p) => g.port(p).name().to_owned(),
            };
            if let Some(rate) = sim.accesses_per_execution(src, &dst) {
                let f = ch.freq();
                prop_assert!(
                    rate >= f.min as f64 - 1e-9 && rate <= f.max as f64 + 1e-9,
                    "seed {}: {}->{} dynamic {} outside [{}, {}]\n{}",
                    seed, src, dst, rate, f.min, f.max, source
                );
            }
        }
    }
}
