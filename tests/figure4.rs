//! Integration test: the paper's Figure 4 table reproduces.
//!
//! For each benchmark system the built SLIF must match the published
//! object and channel counts exactly, build in interactive time, and
//! estimate in a small fraction of the build time.

use slif::estimate::DesignReport;
use slif::frontend::{all_software_partition, allocate_proc_asic, build_design};
use slif::speclang::corpus;
use slif::techlib::TechnologyLibrary;
use std::time::Instant;

#[test]
fn bv_and_channel_counts_match_figure4_exactly() {
    for entry in corpus::all() {
        let rs = entry.load().unwrap();
        let design = build_design(&rs, &TechnologyLibrary::proc_asic());
        assert_eq!(
            design.graph().node_count() as u32,
            entry.paper.bv,
            "{}: BV",
            entry.name
        );
        assert_eq!(
            design.graph().channel_count() as u32,
            entry.paper.channels,
            "{}: C",
            entry.name
        );
    }
}

#[test]
fn build_time_is_interactive_and_estimation_is_far_faster() {
    for entry in corpus::all() {
        let rs = entry.load().unwrap();
        let t0 = Instant::now();
        let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
        let t_slif = t0.elapsed();
        // "The SLIF, with all its annotations, can be built in just a few
        // seconds for even large examples" — on modern hardware, well
        // under one second even unoptimized.
        assert!(
            t_slif.as_secs_f64() < 5.0,
            "{}: T-slif {:?}",
            entry.name,
            t_slif
        );

        let arch = allocate_proc_asic(&mut design);
        let part = all_software_partition(&design, arch);
        // Warm up, then measure the estimate suite.
        DesignReport::compute(&design, &part).unwrap();
        let t0 = Instant::now();
        let report = DesignReport::compute(&design, &part).unwrap();
        let t_est = t0.elapsed();
        assert!(!report.processes.is_empty());
        // "size and performance estimates can be computed in less than a
        // hundredth of a second".
        assert!(
            t_est.as_secs_f64() < 0.01,
            "{}: T-est {:?}",
            entry.name,
            t_est
        );
        // And estimation is at least an order of magnitude below build.
        assert!(
            t_est.as_secs_f64() * 10.0 < t_slif.as_secs_f64(),
            "{}: T-est {:?} not ≪ T-slif {:?}",
            entry.name,
            t_est,
            t_slif
        );
    }
}

#[test]
fn every_corpus_design_validates_and_estimates() {
    for entry in corpus::all() {
        let rs = entry.load().unwrap();
        let mut design = build_design(&rs, &TechnologyLibrary::standard());
        let arch = allocate_proc_asic(&mut design);
        let part = all_software_partition(&design, arch);
        part.validate(&design)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let report = DesignReport::compute(&design, &part).unwrap();
        for p in &report.processes {
            assert!(
                p.exec_time.is_finite() && p.exec_time > 0.0,
                "{}: process {} has degenerate time {}",
                entry.name,
                p.name,
                p.exec_time
            );
        }
        for b in &report.buses {
            assert!(b.bitrate.is_finite() && b.bitrate >= 0.0);
        }
    }
}

#[test]
fn relative_build_times_follow_system_size() {
    // The paper's ordering is by spec size: ether dominates everything.
    // Measure with a couple of repetitions to damp noise.
    let time_for = |name: &str| {
        let rs = corpus::by_name(name).unwrap().load().unwrap();
        let t0 = Instant::now();
        for _ in 0..3 {
            let _ = build_design(&rs, &TechnologyLibrary::proc_asic());
        }
        t0.elapsed()
    };
    let ether = time_for("ether");
    let vol = time_for("vol");
    assert!(ether > vol, "ether ({ether:?}) must out-cost vol ({vol:?})");
}
