//! Integration test: dynamic simulation validates the static profile.
//!
//! SLIF's access frequencies come from a branch-probability profile; the
//! paper says that profile "may be obtained manually or through
//! profiling". Here we close the loop: simulate the specification,
//! measure accesses per behavior execution dynamically, and check they
//! land on the statically profiled `accfreq` annotations wherever the
//! stimulus realizes the annotated probabilities.

use slif::core::AccessKind;
use slif::frontend::build_design;
use slif::sim::{simulate, PortStimulus, SimConfig, Stimulus};
use slif::speclang::corpus;
use slif::techlib::TechnologyLibrary;

/// Static accfreq of the (src, dst) channel in the built fuzzy design.
fn static_freq(design: &slif::core::Design, src: &str, dst: &str) -> f64 {
    let g = design.graph();
    let s = g.node_by_name(src).unwrap();
    let d = g.node_by_name(dst).unwrap();
    let c = [
        AccessKind::Read,
        AccessKind::Write,
        AccessKind::Call,
        AccessKind::Message,
    ]
    .into_iter()
    .find_map(|k| g.find_channel(s, d.into(), k))
    .unwrap_or_else(|| panic!("no channel {src} -> {dst}"));
    g.channel(c).freq().avg
}

#[test]
fn fuzzy_dynamic_access_rates_match_figure3() {
    let entry = corpus::by_name("fuzzy").unwrap();
    let rs = entry.load().unwrap();
    let design = build_design(&rs, &TechnologyLibrary::proc_asic());

    // EvaluateRule is called with num = 1 and num = 2 each round, so its
    // `prob 0.5` branches are realized at exactly 0.5 dynamically.
    let stim = Stimulus::new()
        .with_port("in1", PortStimulus::Sequence(vec![10, 60, 110]))
        .with_port("in2", PortStimulus::Sequence(vec![20, 80]));
    let result = simulate(
        &rs,
        &stim,
        SimConfig {
            rounds: 100,
            ..SimConfig::default()
        },
    )
    .unwrap();

    // The paper's Figure 3 numbers, both statically and dynamically.
    for (src, dst, expected) in [
        ("EvaluateRule", "mr1", 65.0),
        ("EvaluateRule", "mr2", 65.0),
        ("EvaluateRule", "in1val", 1.0),
        ("EvaluateRule", "in2val", 1.0),
        ("FuzzyMain", "EvaluateRule", 2.0),
        ("FuzzyMain", "Convolve", 1.0),
        ("Convolve", "conv", 128.0),
    ] {
        let s = static_freq(&design, src, dst);
        assert!(
            (s - expected).abs() < 1e-9,
            "static {src}->{dst}: {s} != {expected}"
        );
        let d = result
            .accesses_per_execution(src, dst)
            .unwrap_or_else(|| panic!("no dynamic accesses {src}->{dst}"));
        assert!(
            (d - expected).abs() < 1e-9,
            "dynamic {src}->{dst}: {d} != {expected}"
        );
    }
}

#[test]
fn fuzzy_rarely_taken_branch_realizes_its_probability() {
    // FuzzyMain's InitRules call is annotated `prob 0.01`; dynamically it
    // happens exactly once (the first round, while `initialized` is
    // false). Over 100 rounds the dynamic rate is exactly 0.01.
    let rs = corpus::by_name("fuzzy").unwrap().load().unwrap();
    let result = simulate(
        &rs,
        &Stimulus::new(),
        SimConfig {
            rounds: 100,
            ..SimConfig::default()
        },
    )
    .unwrap();
    assert_eq!(
        result.accesses_per_execution("FuzzyMain", "InitRules"),
        Some(0.01)
    );
}

#[test]
fn all_corpus_systems_simulate_without_faults() {
    for entry in corpus::all() {
        let rs = entry.load().unwrap();
        // Mild, deterministic stimulus on every input port.
        let mut stim = Stimulus::new();
        for port in &rs.spec().ports {
            if port.direction != slif::speclang::ast::Direction::Out {
                stim = stim.with_port(
                    &port.name,
                    PortStimulus::Sequence(vec![0, 1, 3, 7, 2, 90, 201]),
                );
            }
        }
        let result = simulate(
            &rs,
            &stim,
            SimConfig {
                rounds: 25,
                ..SimConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        // Every process executed every round.
        for b in &rs.spec().behaviors {
            if b.kind == slif::speclang::ast::BehaviorKind::Process {
                assert_eq!(
                    result.executions.get(&b.name),
                    Some(&25),
                    "{}: process {} executions",
                    entry.name,
                    b.name
                );
            }
        }
    }
}

#[test]
fn dynamic_counts_stay_within_static_min_max_envelope() {
    // For every channel whose source actually executed, the measured
    // accesses per execution must lie within [min, max] — the envelope
    // the annotations promise.
    let entry = corpus::by_name("fuzzy").unwrap();
    let rs = entry.load().unwrap();
    let design = build_design(&rs, &TechnologyLibrary::proc_asic());
    let stim = Stimulus::new()
        .with_port("in1", PortStimulus::Ramp { start: 0, step: 11 })
        .with_port("in2", PortStimulus::Ramp { start: 5, step: 7 });
    let result = simulate(
        &rs,
        &stim,
        SimConfig {
            rounds: 50,
            ..SimConfig::default()
        },
    )
    .unwrap();

    let g = design.graph();
    for c in g.channel_ids() {
        let ch = g.channel(c);
        let src = g.node(ch.src()).name();
        let dst = match ch.dst() {
            slif::core::AccessTarget::Node(n) => g.node(n).name().to_owned(),
            slif::core::AccessTarget::Port(p) => g.port(p).name().to_owned(),
        };
        let Some(rate) = result.accesses_per_execution(src, &dst) else {
            continue; // never accessed under this stimulus
        };
        let f = ch.freq();
        assert!(
            rate >= f.min as f64 - 1e-9 && rate <= f.max as f64 + 1e-9,
            "{src}->{dst}: dynamic {rate} outside [{}, {}]",
            f.min,
            f.max
        );
    }
}

#[test]
fn golden_simulation_outputs_are_stable() {
    // Deterministic end-to-end regression values: any change to the
    // interpreter, the corpus, or the language semantics that alters
    // functional behaviour shows up here.
    use slif::sim::PortStimulus::{Constant, Ramp, Sequence};

    // Volume meter: ramping transducer, metric units.
    let rs = corpus::by_name("vol").unwrap().load().unwrap();
    let stim = Stimulus::new()
        .with_port(
            "transducer",
            Ramp {
                start: 100,
                step: 37,
            },
        )
        .with_port("mode_sel", Constant(1));
    let r = simulate(
        &rs,
        &stim,
        SimConfig {
            rounds: 40,
            ..SimConfig::default()
        },
    )
    .unwrap();
    let display = &r.port_writes["display"];
    assert_eq!(display.len(), 40);
    assert_eq!(display[display.len() - 1], 85555);
    assert_eq!(r.finals["volume"], 86958);
    assert_eq!(r.finals["avg_area"], 2717);
    assert_eq!(r.sim_time, 4800);

    // Answering machine: continuous ringing, a DTMF-ish line.
    let rs = corpus::by_name("ans").unwrap().load().unwrap();
    let stim = Stimulus::new()
        .with_port("ring_detect", Constant(1))
        .with_port("line_sample", Sequence(vec![128, 130, 220, 90]))
        .with_port("buttons", Sequence(vec![0, 1, 2, 0]));
    let r = simulate(
        &rs,
        &stim,
        SimConfig {
            rounds: 12,
            ..SimConfig::default()
        },
    )
    .unwrap();
    assert_eq!(
        r.port_writes["hook_ctl"].len(),
        24,
        "answer + hangup per ring"
    );
    assert_eq!(r.finals["msg_count"], 1);
    assert_eq!(r.finals["ring_count"], 0);

    // Ethernet coprocessor: host enables rx+tx, carrier pulses.
    let rs = corpus::by_name("ether").unwrap().load().unwrap();
    let stim = Stimulus::new()
        .with_port("host_wr", Sequence(vec![1, 0]))
        .with_port("host_addr", Sequence(vec![0, 1]))
        .with_port("host_data", Constant(3))
        .with_port("phy_crs", Sequence(vec![1, 0, 0]))
        .with_port("phy_rx", Ramp { start: 1, step: 5 })
        .with_port("mdio_in", Sequence(vec![1, 0]));
    let r = simulate(
        &rs,
        &stim,
        SimConfig {
            rounds: 10,
            ..SimConfig::default()
        },
    )
    .unwrap();
    assert_eq!(r.executions["TxMain"], 10);
    assert_eq!(
        r.port_writes["host_out"].len(),
        5,
        "every other round reads a CSR"
    );
}
