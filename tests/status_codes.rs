//! Every refusal the serving stack can issue maps to its own wire
//! status code — exercised end to end over real sockets.
//!
//! The `Rejected` admission taxonomy in particular must stay distinct
//! on the wire:
//!
//! * `Rejected::QueueFull`    → 503 + `Retry-After`
//! * `Rejected::TooLarge`     → 413
//! * `Rejected::ShuttingDown` / server drain → 410
//! * tenant quota exhaustion  → 429 + `Retry-After` (mid-burst)
//!
//! plus the HTTP-layer refusals (400/401/404/405/408/413) and the job
//! failure codes (422/500 → here 422).

use slif::runtime::{RunLimits, ServiceConfig};
use slif::serve::http::read_response;
use slif::serve::server::{Server, ServerConfig};
use slif::serve::tenant::TenantSpec;
use slif::speclang::ParseLimits;
use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

const GOOD_SPEC: &str = "system T;\nvar x : int<8>;\nprocess Main { x = x + 1; }\n";

fn post(path: &str, body: &str, headers: &[(&str, &str)]) -> Vec<u8> {
    let mut head = format!("POST {path} HTTP/1.1\r\ncontent-length: {}\r\n", body.len());
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    let mut raw = head.into_bytes();
    raw.extend_from_slice(body.as_bytes());
    raw
}

fn roundtrip(server: &Server, raw: &[u8]) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut s = TcpStream::connect(server.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(20))).expect("timeout");
    s.write_all(raw).expect("send");
    read_response(&mut s).expect("response")
}

/// `Rejected::QueueFull` over the wire: a single runtime worker pinned
/// by a long exploration, a queue of capacity 1 holding another, and a
/// third submission refused with 503 + `Retry-After`.
#[test]
fn queue_full_is_503_with_retry_after() {
    let server = Server::bind(
        ServerConfig::new()
            .with_conn_workers(6)
            .with_request_deadline(Duration::from_secs(2))
            .with_max_explore_iterations(2_000_000_000)
            .with_runtime(ServiceConfig::new().with_workers(1).with_queue_capacity(1)),
    )
    .expect("bind");

    // Two long explorations: the first occupies the only runtime worker,
    // the second occupies the whole queue. Their connections are held
    // open (each pins one connection worker in its wait) but never read.
    // The iteration budget is far beyond what either build profile can
    // finish inside the 2 s job deadline, so the worker stays pinned
    // until the deadline cuts the job — an optimized build cannot race
    // through the exploration before the 503 probe below runs.
    let explore = post(
        "/v1/explore",
        GOOD_SPEC,
        &[("x-slif-iterations", "2000000000"), ("x-slif-seed", "9")],
    );
    let mut pinned = Vec::new();
    for _ in 0..2 {
        let mut s = TcpStream::connect(server.addr()).expect("connect");
        s.write_all(&explore).expect("send explore");
        pinned.push(s);
        std::thread::sleep(Duration::from_millis(200));
    }

    // Third submission: the queue has no room. Retry with patience in
    // case a scheduling hiccup delayed the first two.
    let mut saw_503 = false;
    for _ in 0..10 {
        let (status, headers, _body) = roundtrip(&server, &post("/v1/parse", GOOD_SPEC, &[]));
        if status == 503 {
            assert!(
                headers.iter().any(|(n, _)| n == "retry-after"),
                "503 must carry Retry-After: {headers:?}"
            );
            saw_503 = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(saw_503, "never saw Rejected::QueueFull surface as 503");
    drop(pinned);
    server.shutdown();
}

/// `Rejected::TooLarge` over the wire: a spec under the HTTP body cap
/// but over the runtime's parse byte guard is refused at admission with
/// 413, and the body names the guard.
#[test]
fn runtime_size_guard_is_413() {
    let server = Server::bind(
        ServerConfig::new()
            .with_runtime(
                ServiceConfig::new().with_workers(1).with_limits(
                    RunLimits::default()
                        .with_parse(ParseLimits::default().with_max_bytes(64)),
                ),
            ),
    )
    .expect("bind");
    let big = format!("system T;\n// {}\n", "x".repeat(200));
    let (status, _, body) = roundtrip(&server, &post("/v1/parse", &big, &[]));
    assert_eq!(status, 413, "{}", String::from_utf8_lossy(&body));
    let text = String::from_utf8_lossy(&body);
    assert!(text.contains("spec bytes"), "{text}");

    // The HTTP-layer guard answers 413 too, from a declared length the
    // server never reads.
    let mut s = TcpStream::connect(server.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(20))).expect("timeout");
    s.write_all(b"POST /v1/parse HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n")
        .expect("send");
    let (status, _, _) = read_response(&mut s).expect("response");
    assert_eq!(status, 413);
    server.shutdown();
}

/// Drain (the wire face of `Rejected::ShuttingDown`): once a drain
/// begins, job endpoints answer 410 while `/health` and `/metrics`
/// still serve — and requests admitted before the drain still complete.
#[test]
fn shutting_down_during_drain_is_410() {
    let server = Server::bind(
        ServerConfig::new().with_runtime(ServiceConfig::new().with_workers(2)),
    )
    .expect("bind");
    // A request before the drain completes normally.
    let (status, _, _) = roundtrip(&server, &post("/v1/parse", GOOD_SPEC, &[]));
    assert_eq!(status, 200);

    server.begin_drain();
    let (status, _, body) = roundtrip(&server, &post("/v1/parse", GOOD_SPEC, &[]));
    assert_eq!(status, 410, "{}", String::from_utf8_lossy(&body));
    assert!(String::from_utf8_lossy(&body).contains("draining"));
    // Observability stays up through the drain.
    let mut s = TcpStream::connect(server.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(20))).expect("timeout");
    s.write_all(b"GET /health HTTP/1.1\r\n\r\n").expect("send");
    let (status, _, _) = read_response(&mut s).expect("response");
    assert_eq!(status, 200);
    server.shutdown();
}

/// Quota exhaustion mid-burst: a burst-of-3 tenant gets three 200s and
/// then a 429 with `Retry-After`, all on one keep-alive connection.
#[test]
fn quota_exhaustion_mid_burst_is_429() {
    let server = Server::bind(
        ServerConfig::new()
            .with_runtime(ServiceConfig::new().with_workers(2))
            .with_tenant(TenantSpec::new("bursty", "kb").with_quota(0.1, 3.0)),
    )
    .expect("bind");
    let raw = post("/v1/parse", GOOD_SPEC, &[("x-api-key", "kb")]);
    let mut s = TcpStream::connect(server.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(20))).expect("timeout");
    for i in 0..3 {
        s.write_all(&raw).expect("send");
        let (status, _, body) = read_response(&mut s).expect("response");
        assert_eq!(status, 200, "burst request {i}: {}", String::from_utf8_lossy(&body));
    }
    s.write_all(&raw).expect("send");
    let (status, headers, _) = read_response(&mut s).expect("response");
    assert_eq!(status, 429);
    let retry_after: u64 = headers
        .iter()
        .find(|(n, _)| n == "retry-after")
        .and_then(|(_, v)| v.parse().ok())
        .expect("429 must carry a numeric Retry-After");
    assert!(retry_after >= 1, "retry_after {retry_after}");
    server.shutdown();
}

/// The full refusal taxonomy stays distinct over one server: each guard
/// answers its own code.
#[test]
fn refusal_codes_are_distinct() {
    let server = Server::bind(
        ServerConfig::new()
            .with_io_timeouts(Duration::from_millis(300), Duration::from_secs(2))
            .with_runtime(ServiceConfig::new().with_workers(2))
            .with_tenant(TenantSpec::new("only", "ko")),
    )
    .expect("bind");
    let key = [("x-api-key", "ko")];

    let mut seen = Vec::new();
    // 400: truncated body.
    {
        let mut s = TcpStream::connect(server.addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(20))).expect("timeout");
        s.write_all(b"POST /v1/parse HTTP/1.1\r\ncontent-length: 64\r\n\r\nshort")
            .expect("send");
        s.shutdown(std::net::Shutdown::Write).expect("half-close");
        let (status, _, _) = read_response(&mut s).expect("response");
        seen.push(("truncated body", status, 400));
    }
    // 401: no key.
    let (status, _, _) = roundtrip(&server, &post("/v1/parse", GOOD_SPEC, &[]));
    seen.push(("missing key", status, 401));
    // 404 / 405.
    let (status, _, _) = roundtrip(&server, &post("/v1/unknown", GOOD_SPEC, &key));
    seen.push(("unknown path", status, 404));
    let mut s = TcpStream::connect(server.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(20))).expect("timeout");
    s.write_all(b"GET /v1/parse HTTP/1.1\r\n\r\n").expect("send");
    let (status, _, _) = read_response(&mut s).expect("response");
    seen.push(("wrong method", status, 405));
    // 408: slow loris.
    {
        let mut s = TcpStream::connect(server.addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(20))).expect("timeout");
        s.write_all(b"POST /v1/par").expect("send");
        let (status, _, _) = read_response(&mut s).expect("response");
        seen.push(("slow loris", status, 408));
    }
    // 422: a spec the pipeline refuses.
    let (status, _, _) = roundtrip(&server, &post("/v1/parse", "system ; nope", &key));
    seen.push(("malformed spec", status, 422));

    for (what, got, want) in &seen {
        assert_eq!(got, want, "{what}");
    }
    let mut codes: Vec<u16> = seen.iter().map(|(_, got, _)| *got).collect();
    codes.sort_unstable();
    codes.dedup();
    assert_eq!(codes.len(), seen.len(), "refusal codes must be distinct");
    server.shutdown();
}
