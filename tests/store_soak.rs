//! Crash-restart soak for the durable store: kill/restart cycles with
//! seeded on-disk corruption between them.
//!
//! The durability contract under test, end to end over real sockets:
//!
//! * **Zero acknowledged jobs lost.** Every response the server ever
//!   acknowledged with a durable id must keep answering
//!   `GET /jobs/{id}` — across *every* later restart — with the same
//!   status and a byte-identical body, even when the store files were
//!   corrupted in between. (A torn journal tail may cost the Completed
//!   record, but never the fsynced Accepted record before it: the job
//!   re-runs deterministically and converges on the identical body.)
//! * **Zero corrupt cache entries served.** Every clean 200 body must
//!   be byte-identical to running the same job inline, whether it was
//!   compiled cold or served from the content-addressed cache — and the
//!   cache is under seeded bit-flip/truncation/stale-header attack, so
//!   a served corruption would show up as a body mismatch.
//! * The fault plan injects store corruption into **well over 30 %** of
//!   the restart cycles, and the run performs at least 20 cycles.

use slif::core::faults::{FaultInjector, StoreFaultKind};
use slif::runtime::{RunLimits, ServiceConfig};
use slif::serve::http::read_response;
use slif::serve::server::{Server, ServerConfig};
use slif::serve::wire::{job_for, render_output, Endpoint, WireParams};
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const CYCLES: usize = 24;
const FAULT_RATIO: f64 = 0.6;
const JOBS_PER_CYCLE: usize = 4;

const SPEC_A: &str = "system A;\nvar x : int<8>;\nprocess Main { x = x + 1; }\n";
const SPEC_B: &str = "system B;\nvar a : int<16>;\nvar b : int<16>;\n\
                      process P { a = a + b; }\nprocess Q { b = b + 1; }\n";

/// The per-cycle request mix: repeat specs across cycles so later
/// cycles exercise the warm cache path.
const MIX: [(Endpoint, &str); JOBS_PER_CYCLE] = [
    (Endpoint::Estimate, SPEC_A),
    (Endpoint::Analyze, SPEC_A),
    (Endpoint::Estimate, SPEC_B),
    (Endpoint::Analyze, SPEC_B),
];

fn durable_server(dir: &Path) -> Server {
    Server::bind(
        ServerConfig::new()
            .with_conn_workers(2)
            .with_io_timeouts(Duration::from_millis(500), Duration::from_secs(2))
            .with_runtime(ServiceConfig::new().with_workers(2))
            .with_store_dir(dir),
    )
    .expect("bind durable soak server")
}

fn roundtrip(addr: SocketAddr, raw: &[u8]) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(raw).expect("write request");
    read_response(&mut s).expect("read response")
}

fn post(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn get(addr: SocketAddr, path: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    roundtrip(addr, format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// Polls `GET /jobs/{id}` until it leaves 202 (a recovered job may
/// still be re-running just after a restart).
fn settled_job(addr: SocketAddr, id: u64) -> (u16, Vec<u8>) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let (status, _, body) = get(addr, &format!("/jobs/{id}"));
        if status != 202 {
            return (status, body);
        }
        assert!(
            Instant::now() < deadline,
            "job {id} still pending 20 s after restart"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The oracle body: the same job the server builds, run inline.
fn oracle_body(endpoint: Endpoint, source: &str) -> String {
    let limits = RunLimits::default();
    let job = job_for(endpoint, source, &WireParams::default(), &limits, 10_000)
        .expect("soak specs compile");
    render_output(&job.run_inline(&limits).expect("soak jobs run"))
}

/// Applies one planned fault to the store directory, returning a
/// description. Torn tails go to the journal (the crash shape a WAL
/// must absorb); rot-shaped faults go to cache files, where the
/// documented outcome is a quarantined miss.
fn apply_fault(
    injector: &mut FaultInjector,
    dir: &Path,
    kind: StoreFaultKind,
    cycle: usize,
) -> Option<String> {
    let target: PathBuf = if kind == StoreFaultKind::TornFinalRecord {
        dir.join("journal.wal")
    } else {
        let mut files: Vec<PathBuf> = ["objects", "refs"]
            .iter()
            .filter_map(|sub| std::fs::read_dir(dir.join("cache").join(sub)).ok())
            .flatten()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_none())
            .collect();
        files.sort();
        if files.is_empty() {
            return None;
        }
        files.swap_remove(cycle % files.len())
    };
    let mut bytes = std::fs::read(&target).ok()?;
    let desc = injector.corrupt_store_file(&mut bytes, kind);
    std::fs::write(&target, &bytes).ok()?;
    Some(format!("{kind} on {}: {desc}", target.display()))
}

#[test]
fn kill_restart_cycles_with_store_corruption_lose_nothing_acknowledged() {
    let dir = std::env::temp_dir().join(format!("slif-store-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Precompute the bit-identity oracle per (endpoint, spec).
    let oracles: Vec<String> = MIX
        .iter()
        .map(|&(ep, src)| oracle_body(ep, src))
        .collect();

    let mut injector = FaultInjector::new(20260807);
    let plan = injector.plan_store_faults(CYCLES, FAULT_RATIO);
    let injected_cycles = plan.iter().flatten().count();
    assert!(
        injected_cycles * 10 > CYCLES * 3,
        "fault plan too tame: {injected_cycles}/{CYCLES} cycles"
    );

    // Everything the servers ever acknowledged: (id, status, body).
    let mut acked: Vec<(u64, u16, Vec<u8>)> = Vec::new();
    let mut faults_applied = Vec::new();

    for (cycle, fault) in plan.iter().enumerate() {
        let server = durable_server(&dir);
        let addr = server.addr();

        // Every previously acknowledged job must still replay exactly —
        // this is the zero-loss assertion, re-checked after every
        // restart (and every corruption).
        for (id, status, body) in &acked {
            let (got_status, got_body) = settled_job(addr, *id);
            assert_eq!(
                (got_status, &got_body),
                (*status, body),
                "cycle {cycle}: job {id} diverged after restart (faults so far: {faults_applied:?})"
            );
        }

        // New load, with repeat specs so later cycles hit the cache.
        for (slot, &(ep, src)) in MIX.iter().enumerate() {
            let path = match ep {
                Endpoint::Estimate => "/v1/estimate",
                Endpoint::Analyze => "/v1/analyze",
                _ => unreachable!("soak mix uses compiling endpoints"),
            };
            let (status, headers, body) = roundtrip(addr, &post(path, src));
            assert_eq!(
                status,
                200,
                "cycle {cycle} slot {slot}: {}",
                String::from_utf8_lossy(&body)
            );
            // Warm or cold, the body must match the inline oracle.
            assert_eq!(
                String::from_utf8_lossy(&body),
                oracles[slot],
                "cycle {cycle} slot {slot}: served body diverged from inline run"
            );
            let id: u64 = header(&headers, "x-slif-job-id")
                .expect("durable server tags responses")
                .parse()
                .expect("numeric job id");
            acked.push((id, status, body));
        }

        if cycle == CYCLES - 1 {
            // Keep the last server up a moment longer for the metrics
            // assertions below.
            let (status, _, metrics) = get(addr, "/metrics");
            assert_eq!(status, 200);
            let text = String::from_utf8_lossy(&metrics).into_owned();
            let metric = |name: &str| -> u64 {
                text.lines()
                    .find_map(|l| l.strip_prefix(name))
                    .and_then(|v| v.trim().parse().ok())
                    .unwrap_or_else(|| panic!("metrics lack {name}:\n{text}"))
            };
            assert!(
                metric("slif_store_cache_hits_total ") > 0,
                "repeat specs never hit the cache:\n{text}"
            );
            assert!(
                metric("slif_store_journal_records_replayed ") > 0,
                "final restart replayed nothing:\n{text}"
            );
        }

        server.shutdown();

        // Corrupt the store between cycles, per the seeded plan.
        if let Some(kind) = fault {
            if let Some(desc) = apply_fault(&mut injector, &dir, *kind, cycle) {
                faults_applied.push(desc);
            }
        }
    }

    assert!(acked.len() >= CYCLES * JOBS_PER_CYCLE - JOBS_PER_CYCLE);
    assert!(
        faults_applied.len() * 10 > CYCLES * 3,
        "too few faults actually applied: {}/{CYCLES}",
        faults_applied.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
