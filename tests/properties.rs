//! Property-based tests on the core invariants, across crates.

use proptest::prelude::*;
use slif::core::gen::DesignGenerator;
use slif::core::{text, AccessKind, AccessTarget, Design, FreqMode, NodeId, Partition, PmRef};
use slif::estimate::{
    io_pins, size, BitrateEstimator, EstimatorConfig, ExecTimeEstimator, IncrementalEstimator,
};

/// A deliberately naive, non-memoized transcription of the paper's
/// Equation 1, used as an oracle against the production estimator.
///
/// `Exectime(b) = GetBvIct(b, p) + Σ_c freq × (TransferTime(c, p) + Exectime(c.dst))`
/// with the default policies: message destinations contribute transfer
/// time only, variables contribute their access-time ict.
fn naive_exec_time(design: &Design, part: &Partition, n: NodeId) -> f64 {
    let comp = part.node_component(n).expect("complete partition");
    let class = design.component_class(comp);
    let ict = design.graph().node(n).ict().get(class).expect("weight") as f64;
    if design.graph().node(n).kind().is_variable() {
        return ict;
    }
    let mut comm = 0.0;
    for c in design.graph().channels_of(n) {
        let ch = design.graph().channel(c);
        let freq = ch.freq().avg;
        if freq == 0.0 {
            continue;
        }
        let bus = design.bus(part.channel_bus(c).expect("mapped"));
        let (same, dst_time) = match ch.dst() {
            AccessTarget::Port(_) => (false, 0.0),
            AccessTarget::Node(dst) => {
                let dst_comp = part.node_component(dst).expect("complete");
                let t = if ch.kind() == AccessKind::Message {
                    0.0
                } else {
                    naive_exec_time(design, part, dst)
                };
                (dst_comp == comp, t)
            }
        };
        comm += freq * (bus.access_time(ch.bits(), same) as f64 + dst_time);
    }
    ict + comm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated designs always produce proper partitions and acyclic
    /// call structures.
    #[test]
    fn generated_designs_are_valid(seed in 0u64..5000) {
        let (design, part) = DesignGenerator::new(seed).build();
        prop_assert!(part.validate(&design).is_ok());
        prop_assert!(design.graph().find_recursion().is_none());
    }

    /// The textual format round-trips any generated design exactly.
    #[test]
    fn text_roundtrip(seed in 0u64..5000) {
        let (design, part) = DesignGenerator::new(seed).build();
        let d2 = text::parse_design(&text::write_design(&design)).unwrap();
        prop_assert_eq!(&design, &d2);
        let p2 = text::parse_partition(&d2, &text::write_partition(&design, &part)).unwrap();
        prop_assert_eq!(part, p2);
    }

    /// min ≤ avg ≤ max execution times for every node.
    #[test]
    fn exec_time_modes_are_ordered(seed in 0u64..5000) {
        let (design, part) = DesignGenerator::new(seed).build();
        for n in design.graph().node_ids() {
            let t = |mode: FreqMode| {
                ExecTimeEstimator::with_config(
                    &design,
                    &part,
                    EstimatorConfig::default().with_mode(mode),
                )
                .exec_time(n)
                .unwrap()
            };
            let (lo, avg, hi) = (t(FreqMode::Min), t(FreqMode::Average), t(FreqMode::Max));
            prop_assert!(lo <= avg + 1e-6, "node {n}: {lo} > {avg}");
            prop_assert!(avg <= hi + 1e-6, "node {n}: {avg} > {hi}");
        }
    }

    /// Concurrency-aware communication time never exceeds sequential.
    #[test]
    fn concurrency_extension_is_a_lower_bound(seed in 0u64..5000) {
        let (design, part) = DesignGenerator::new(seed).build();
        for n in design.graph().behavior_ids() {
            let seq = ExecTimeEstimator::new(&design, &part).exec_time(n).unwrap();
            let conc = ExecTimeEstimator::with_config(
                &design,
                &part,
                EstimatorConfig::default().with_concurrency_aware(true),
            )
            .exec_time(n)
            .unwrap();
            prop_assert!(conc <= seq + 1e-6);
        }
    }

    /// Equation 3 is exactly the sum of Equation 2 over the bus's channels.
    #[test]
    fn bus_bitrate_is_channel_sum(seed in 0u64..5000) {
        let (design, part) = DesignGenerator::new(seed).build();
        for bus in design.bus_ids() {
            let mut est = BitrateEstimator::new(&design, &part);
            let total = est.bus_bitrate(bus).unwrap();
            let mut sum = 0.0;
            for c in part.channels_on(bus) {
                sum += est.channel_bitrate(c).unwrap();
            }
            prop_assert!((total - sum).abs() <= 1e-9 * total.abs().max(1.0));
        }
    }

    /// Component sizes sum to the whole design's weight total: every node
    /// contributes its weight to exactly one component.
    #[test]
    fn sizes_partition_the_total(seed in 0u64..5000) {
        let (design, part) = DesignGenerator::new(seed).build();
        let total: u64 = design.pm_refs().map(|pm| size(&design, &part, pm).unwrap()).sum();
        let expected: u64 = design
            .graph()
            .node_ids()
            .map(|n| {
                let pm = part.node_component(n).unwrap();
                let class = design.component_class(pm);
                design.graph().node(n).size().get(class).unwrap()
            })
            .sum();
        prop_assert_eq!(total, expected);
    }

    /// Incremental estimation agrees with full recomputation after an
    /// arbitrary sequence of moves.
    #[test]
    fn incremental_matches_full(seed in 0u64..2000, moves in 1usize..12) {
        let (design, part) = DesignGenerator::new(seed).build();
        let mut inc = IncrementalEstimator::new(&design, part).unwrap();
        let procs: Vec<_> = design.processor_ids().collect();
        let n_nodes = design.graph().node_count();
        for k in 0..moves {
            let n = NodeId::from_raw(((seed as usize + k * 7) % n_nodes) as u32);
            let target: PmRef = procs[(k + seed as usize) % procs.len()].into();
            inc.move_node(n, target).unwrap();
        }
        let fresh_part = inc.partition().clone();
        let mut fresh = ExecTimeEstimator::new(&design, &fresh_part);
        for n in design.graph().node_ids() {
            let a = inc.exec_time(n).unwrap();
            let b = fresh.exec_time(n).unwrap();
            prop_assert!((a - b).abs() < 1e-9, "node {}: {} vs {}", n, a, b);
        }
        for pm in design.pm_refs() {
            prop_assert_eq!(inc.size(pm), size(&design, &fresh_part, pm).unwrap());
        }
        for p in design.processor_ids() {
            prop_assert_eq!(inc.pins(p).unwrap(), io_pins(&design, &fresh_part, p).unwrap());
        }
    }

    /// The memoized estimator computes exactly the paper's Equation 1:
    /// it agrees with a naive exponential-time transcription on every
    /// node of every generated design.
    #[test]
    fn estimator_matches_naive_equation1_oracle(seed in 0u64..2000) {
        let (design, part) = DesignGenerator::new(seed)
            .behaviors(8) // keep the exponential oracle tractable
            .variables(8)
            .build();
        let mut est = ExecTimeEstimator::new(&design, &part);
        for n in design.graph().node_ids() {
            let fast = est.exec_time(n).unwrap();
            let slow = naive_exec_time(&design, &part, n);
            prop_assert!(
                (fast - slow).abs() <= 1e-9 * slow.abs().max(1.0),
                "node {}: {} vs oracle {}",
                n, fast, slow
            );
        }
    }

    /// Raising a channel's frequency or width never decreases its source's
    /// execution time (estimator monotonicity).
    #[test]
    fn exec_time_is_monotone_in_traffic(seed in 0u64..2000) {
        let (mut design, part) = DesignGenerator::new(seed).build();
        let Some(c) = design.graph().channel_ids().next() else {
            return Ok(());
        };
        let src = design.graph().channel(c).src();
        let before = ExecTimeEstimator::new(&design, &part).exec_time(src).unwrap();
        {
            let ch = design.graph_mut().channel_mut(c);
            let f = ch.freq();
            *ch.freq_mut() = slif::core::AccessFreq::new(f.avg * 2.0 + 1.0, f.min, f.max * 2 + 1);
            ch.set_bits(ch.bits() * 2);
        }
        let after = ExecTimeEstimator::new(&design, &part).exec_time(src).unwrap();
        prop_assert!(after >= before);
    }

    /// Cut channels are symmetric: a channel crossing p's boundary appears
    /// in the cut of the component on its other end too (when that end is
    /// a processor).
    #[test]
    fn cut_channels_are_symmetric(seed in 0u64..2000) {
        let (design, part) = DesignGenerator::new(seed).processors(3).build();
        for p in design.processor_ids() {
            for c in part.cut_channels(&design, p) {
                let ch = design.graph().channel(c);
                let src_comp = part.node_component(ch.src()).unwrap();
                let dst_comp = match ch.dst() {
                    AccessTarget::Node(n) => part.node_component(n),
                    AccessTarget::Port(_) => None,
                };
                // The channel's endpoints are on different components (or a
                // port), one of which is p.
                let on_p = |pm: PmRef| pm == PmRef::Processor(p);
                prop_assert!(on_p(src_comp) || dst_comp.map(on_p).unwrap_or(false));
                if let Some(dc) = dst_comp {
                    prop_assert_ne!(src_comp, dc);
                    if let (PmRef::Processor(q), false) = (dc, on_p(dc)) {
                        let other_cut: Vec<_> = part.cut_channels(&design, q).collect();
                        prop_assert!(other_cut.contains(&c));
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Inlining any non-recursive procedure is sound: one node disappears,
    /// the result validates under a rebuilt mapping, and (on a single
    /// component) process execution times never increase — removing call
    /// transfers can only help.
    #[test]
    fn inlining_is_sound_on_random_designs(seed in 0u64..3000) {
        let (design, _) = DesignGenerator::new(seed)
            .behaviors(10)
            .variables(8)
            .processors(1)
            .memories(0)
            .buses(1)
            .build();
        let g = design.graph();
        // Pick the first procedure with at least one caller.
        let Some(proc_node) = g.node_ids().find(|&n| {
            let k = g.node(n).kind();
            k.is_behavior() && !k.is_process() && g.accessors_of(n).next().is_some()
        }) else {
            return Ok(()); // nothing inlinable in this design
        };

        let single_component_partition = |d: &slif::core::Design| {
            let cpu = d.processor_ids().next().unwrap();
            let bus = d.bus_ids().next().unwrap();
            let mut p = Partition::new(d);
            for n in d.graph().node_ids() {
                p.assign_node(n, PmRef::Processor(cpu));
            }
            for c in d.graph().channel_ids() {
                p.assign_channel(c, bus);
            }
            p
        };

        let before_part = single_component_partition(&design);
        let mut before_est = ExecTimeEstimator::new(&design, &before_part);
        let before_times: Vec<(String, f64)> = design
            .graph()
            .node_ids()
            .filter(|&n| design.graph().node(n).kind().is_process())
            .map(|n| {
                (
                    design.graph().node(n).name().to_owned(),
                    before_est.exec_time(n).unwrap(),
                )
            })
            .collect();

        let result = slif::explore::inline_procedure(&design, proc_node).unwrap();
        let out = &result.design;
        prop_assert_eq!(out.graph().node_count(), design.graph().node_count() - 1);
        let after_part = single_component_partition(out);
        after_part.validate(out).unwrap();
        let mut after_est = ExecTimeEstimator::new(out, &after_part);
        for (name, t_before) in before_times {
            let n = out.graph().node_by_name(&name).unwrap();
            let t_after = after_est.exec_time(n).unwrap();
            // Folded ict weights are rounded to whole nanoseconds and the
            // rounding amplifies through caller frequencies, so allow a
            // 1 % envelope — real soundness bugs (like folding message
            // traffic) blow past it by orders of magnitude.
            prop_assert!(
                t_after <= t_before * 1.01 + 1.0,
                "seed {}: {} got slower: {} -> {}",
                seed, name, t_before, t_after
            );
        }
    }
}
