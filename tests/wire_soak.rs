//! Wire-level soak: a hostile mixed request stream against a live
//! `slif-serve` instance over real sockets.
//!
//! The contract under test, end to end: a server fed **10 000+** mixed
//! parse/estimate/explore/analyze requests — over 30 % of them injected
//! client faults (slow writers, truncated bodies, bad API keys,
//! oversized declarations, tenant floods against a quota-capped key) —
//! must
//!
//! * never panic or abort (health reports zero worker panics, and the
//!   server keeps answering to the end),
//! * give **every** request exactly one well-formed response or typed
//!   refusal (the load generator records anything else as a violation;
//!   there must be none),
//! * return clean-response bodies **byte-identical** to running the
//!   same job inline with `Job::run_inline` (the load generator
//!   precomputes each oracle body with the same pure wire functions the
//!   server uses),
//! * keep tenancy honest: the quota-capped flood tenant sees 429s while
//!   healthy tenants' clean traffic still completes.

use slif::runtime::{RunLimits, ServiceConfig};
use slif::serve::loadgen::{run, LoadgenConfig};
use slif::serve::server::{Server, ServerConfig};
use slif::serve::tenant::TenantSpec;
use std::time::Duration;

const REQUESTS: usize = 10_000;
const FAULT_RATE: f64 = 0.35;
const EXPLORE_CAP: u64 = 48;
/// Short read deadline so the plan's slow-writer faults cost little
/// wall-clock while still proving the 408 path.
const READ_TIMEOUT: Duration = Duration::from_millis(250);

#[test]
fn ten_thousand_mixed_requests_with_faults_leave_the_server_clean() {
    let limits = RunLimits::default();
    let config = ServerConfig::new()
        .with_conn_workers(8)
        .with_io_timeouts(READ_TIMEOUT, Duration::from_secs(2))
        .with_max_explore_iterations(EXPLORE_CAP)
        .with_runtime(
            ServiceConfig::new()
                .with_workers(4)
                .with_queue_capacity(256)
                .with_limits(limits),
        )
        .with_tenant(TenantSpec::new("alpha", "key-alpha").with_weight(3))
        .with_tenant(TenantSpec::new("beta", "key-beta"))
        .with_tenant(
            TenantSpec::new("flood", "key-flood")
                .with_weight(1)
                .with_quota(2.0, 4.0),
        );
    let server = Server::bind(config).expect("bind soak server");

    let mut lg = LoadgenConfig::new(server.addr());
    lg.requests = REQUESTS;
    lg.clients = 10;
    lg.fault_rate = FAULT_RATE;
    lg.seed = 20260807;
    lg.keys = vec!["key-alpha".to_owned(), "key-beta".to_owned()];
    lg.flood_key = Some("key-flood".to_owned());
    lg.limits = limits;
    lg.explore_cap = EXPLORE_CAP;
    lg.server_read_timeout = READ_TIMEOUT;

    let report = run(&lg);

    // Every request was sent, and every response honoured the contract:
    // expected status, and for clean 200s/422s a body byte-identical to
    // the inline run of the same job.
    assert_eq!(report.total, REQUESTS as u64);
    assert!(
        report.violations.is_empty(),
        "wire contract violations ({} total), first few:\n{}",
        report.violations.len(),
        report.violations[..report.violations.len().min(5)].join("\n")
    );

    // The stream really was hostile: >30 % faults, all kinds present.
    let fault_count: u64 = report
        .kinds
        .iter()
        .filter(|(kind, _)| {
            matches!(
                kind.as_str(),
                "bad-key" | "oversized" | "truncated" | "slow-writer" | "flood"
            )
        })
        .map(|(_, stats)| stats.count)
        .sum();
    assert!(
        fault_count as f64 >= 0.30 * REQUESTS as f64,
        "fault share too low: {fault_count}/{REQUESTS}"
    );
    for kind in ["bad-key", "oversized", "truncated", "slow-writer", "flood"] {
        assert!(
            report.kinds.get(kind).is_some_and(|s| s.count > 0),
            "fault kind {kind} never ran"
        );
    }

    // Each fault class surfaced as its typed refusal at least once.
    for (status, why) in [
        (200u16, "clean traffic must succeed"),
        (400, "truncated bodies must be refused as malformed"),
        (401, "bad keys must be refused as unauthorized"),
        (408, "slow writers must hit the read deadline"),
        (413, "oversized declarations must be refused by size"),
        (422, "the malformed spec must be refused by the pipeline"),
        (429, "the flood tenant must exhaust its quota"),
    ] {
        assert!(report.status(status) > 0, "{why} (no {status} seen)");
    }

    // The server survived untouched: no worker panics, nothing stranded,
    // and it still answers.
    let health = server.health();
    assert_eq!(health.worker_panics, 0, "{health}");
    assert_eq!(health.queue_depth, 0, "{health}");
    assert_eq!(health.in_flight, 0, "{health}");
    assert!(health.workers_alive > 0, "{health}");
    assert!(
        health.completed > 0 && health.submitted >= health.completed,
        "{health}"
    );

    // Latency accounting is live for every job kind that ran cleanly.
    for kind in ["parse-spec", "estimate", "explore", "analyze"] {
        let stats = report.kinds.get(kind).unwrap_or_else(|| panic!("no {kind} stats"));
        assert!(stats.count > 0, "{kind} never ran");
        assert!(
            stats.latency.p99_micros().is_some(),
            "{kind} recorded no latency"
        );
    }

    server.shutdown();
}
