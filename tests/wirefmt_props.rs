//! Property tests for the `.slif`/`.slifb` interchange encodings: for
//! every design in the `specs/` corpus and across generated design
//! families, `write → read → write` is byte-stable in both encodings
//! and `read(write(d))` is structurally identical to `d` as judged by
//! the store's canonical codec — plus the bounded-memory guarantee:
//! a >50 MB streamed text design parses with O(section) parser
//! allocation.

use proptest::prelude::*;
use slif::core::gen::DesignGenerator;
use slif::core::{Design, Partition};
use slif::formats::wirefmt::{
    read_bytes, text::read_text_from, write_bytes, Encoding, FormatLimits, Strictness,
};
use slif::frontend::{allocate_proc_asic, all_software_partition, build_design};
use slif::speclang::corpus;
use slif::store::encode_design;
use slif::techlib::TechnologyLibrary;

/// One full round-trip audit for a (design, partition) pair in one
/// encoding: strict read accepts, the result is canonically identical,
/// the partition survives, and a second write is byte-identical.
fn audit_round_trip(design: &Design, partition: Option<&Partition>, encoding: Encoding) {
    let bytes = write_bytes(design, partition, encoding).unwrap();
    let out = read_bytes(&bytes, Strictness::Strict, &FormatLimits::default())
        .unwrap_or_else(|e| panic!("{encoding}: strict read refused its own writer: {e}"));
    assert!(out.verified, "{encoding}: round trip unverified");
    assert_eq!(
        encode_design(&out.design),
        encode_design(design),
        "{encoding}: canonical identity broken"
    );
    assert_eq!(&out.design, design, "{encoding}: structural identity broken");
    assert_eq!(out.partition.as_ref(), partition, "{encoding}: partition lost");
    let again = write_bytes(&out.design, out.partition.as_ref(), encoding).unwrap();
    assert_eq!(again, bytes, "{encoding}: second write not byte-stable");
}

/// Every corpus spec round-trips in both encodings, with and without
/// its allocated partition.
#[test]
fn corpus_designs_round_trip_byte_stably() {
    for entry in corpus::all() {
        let rs = entry.load().unwrap();
        let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
        let arch = allocate_proc_asic(&mut design);
        let partition = all_software_partition(&design, arch);
        for encoding in [Encoding::Text, Encoding::Binary] {
            audit_round_trip(&design, None, encoding);
            audit_round_trip(&design, Some(&partition), encoding);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated design families round-trip byte-stably in both
    /// encodings across varied shapes (fanout, components, ports).
    #[test]
    fn generated_designs_round_trip_byte_stably(seed in 0u64..5000) {
        let (design, partition) = DesignGenerator::new(seed).build();
        for encoding in [Encoding::Text, Encoding::Binary] {
            audit_round_trip(&design, Some(&partition), encoding);
        }
    }

    /// Wider generated shapes: more behaviors, variables, and buses.
    #[test]
    fn wide_generated_designs_round_trip(seed in 0u64..500) {
        let (design, partition) = DesignGenerator::new(seed)
            .behaviors(12 + (seed as usize % 9))
            .variables(6)
            .ports(5)
            .avg_fanout(2.5)
            .processors(3)
            .memories(2)
            .buses(2)
            .build();
        for encoding in [Encoding::Text, Encoding::Binary] {
            audit_round_trip(&design, Some(&partition), encoding);
        }
    }
}

/// A `Read` impl that streams a >50 MB `.slif` text design without ever
/// materializing it: a header, then `nodes` procedure records with
/// fat (but legal) names, generated on demand.
struct HugeTextDesign {
    next: usize,
    nodes: usize,
    pending: Vec<u8>,
    pos: usize,
    bytes_out: usize,
}

impl HugeTextDesign {
    fn new(nodes: usize) -> Self {
        Self {
            next: 0,
            nodes,
            pending: b"slif-wire 1\n[design]\ndesign huge\n".to_vec(),
            pos: 0,
            bytes_out: 0,
        }
    }
}

impl std::io::Read for HugeTextDesign {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.pending.len() {
            if self.next >= self.nodes {
                return Ok(0);
            }
            // ~1 KiB per record: a procedure with a long-but-legal name.
            self.pending = format!(
                "node n{:07}_{} procedure\n",
                self.next,
                "x".repeat(1000)
            )
            .into_bytes();
            self.pos = 0;
            self.next += 1;
        }
        let n = (self.pending.len() - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.pending[self.pos..self.pos + n]);
        self.pos += n;
        self.bytes_out += n;
        Ok(n)
    }
}

/// The bounded-memory guarantee: a 55 MB streamed design parses while
/// the parser's peak buffer stays O(one line/section), four orders of
/// magnitude below the input size. (The stream has no `[end]` trailer —
/// a partner tool cannot know the content key mid-stream — so this runs
/// lenient, which notes the missing trailer as a diagnostic.)
#[test]
fn parser_memory_stays_bounded_on_a_50mb_stream() {
    const NODES: usize = 54_000; // ~55 MB at ~1 KiB per record
    let mut src = HugeTextDesign::new(NODES);
    let out = read_text_from(&mut src, Strictness::Lenient, &FormatLimits::default()).unwrap();
    assert!(
        src.bytes_out > 50 * 1024 * 1024,
        "stream too small: {} bytes",
        src.bytes_out
    );
    assert_eq!(out.design.graph().node_count(), NODES);
    assert!(!out.verified, "no trailer, must not claim verification");
    assert!(
        out.peak_alloc_bytes < 1 << 21,
        "parser peak {} bytes is not O(section) against a {} byte stream",
        out.peak_alloc_bytes,
        src.bytes_out
    );
}
