//! Property tests for the `slif-analyze` lint engine.
//!
//! Two contracts ride on these: the analyzer is a *pure function* of its
//! input (equal inputs give byte-identical reports, with or without
//! seeded corruption in the input), and the lint registry is *honest* —
//! every registered lint can actually fire on a minimal crafted design,
//! and none of them fires on the shipped specification corpus.

use proptest::prelude::*;
use slif::analyze::{
    analyze, analyze_compiled_with_flow, AnalysisConfig, AnalysisReport, LintId, SourceMap,
};
use slif::core::faults::FaultInjector;
use slif::core::gen::DesignGenerator;
use slif::core::{
    AccessFreq, AccessKind, ClassKind, CompiledDesign, Design, NodeKind, Partition,
};
use slif::frontend::{all_software_partition, allocate_proc_asic, build_design};
use slif::speclang::{corpus, parse, FlowProgram};
use slif::techlib::TechnologyLibrary;

/// A minimal design on which `lint` is guaranteed to fire, plus the
/// partition to analyze it under (if the lint needs one).
fn firing_fixture(lint: LintId) -> (Design, Option<Partition>) {
    match lint {
        LintId::SharedVariableRace => {
            let mut d = Design::new("race");
            let a = d.graph_mut().add_node("A", NodeKind::process());
            let b = d.graph_mut().add_node("B", NodeKind::process());
            let v = d.graph_mut().add_node("v", NodeKind::scalar(8));
            d.graph_mut()
                .add_channel(a, v.into(), AccessKind::Write)
                .expect("fixture channel");
            d.graph_mut()
                .add_channel(b, v.into(), AccessKind::Write)
                .expect("fixture channel");
            (d, None)
        }
        LintId::DeadCode => {
            let mut d = Design::new("dead");
            d.graph_mut().add_node("Main", NodeKind::process());
            d.graph_mut().add_node("orphan", NodeKind::procedure());
            (d, None)
        }
        LintId::RecursionCycle => {
            let mut d = Design::new("cycle");
            let main = d.graph_mut().add_node("Main", NodeKind::process());
            let f = d.graph_mut().add_node("f", NodeKind::procedure());
            d.graph_mut()
                .add_channel(main, f.into(), AccessKind::Call)
                .expect("fixture channel");
            d.graph_mut()
                .add_channel(f, f.into(), AccessKind::Call)
                .expect("fixture channel");
            (d, None)
        }
        LintId::BitwidthMismatch => {
            let mut d = Design::new("narrow");
            let main = d.graph_mut().add_node("Main", NodeKind::process());
            let v = d.graph_mut().add_node("v", NodeKind::scalar(8));
            let c = d
                .graph_mut()
                .add_channel(main, v.into(), AccessKind::Write)
                .expect("fixture channel");
            d.graph_mut().channel_mut(c).set_bits(32);
            (d, None)
        }
        LintId::MissingAnnotation => {
            let mut d = Design::new("bare");
            let pc = d.add_class("proc", ClassKind::StdProcessor);
            d.add_processor("cpu0", pc);
            d.graph_mut().add_node("Main", NodeKind::process());
            (d, None)
        }
        LintId::UnprovenInterleaving => {
            // The race fixture, but one access was never observed
            // executing: topologically racy, unproven in practice.
            let mut d = Design::new("maybe-race");
            let a = d.graph_mut().add_node("A", NodeKind::process());
            let b = d.graph_mut().add_node("B", NodeKind::process());
            let v = d.graph_mut().add_node("v", NodeKind::scalar(8));
            d.graph_mut()
                .add_channel(a, v.into(), AccessKind::Write)
                .expect("fixture channel");
            let c = d
                .graph_mut()
                .add_channel(b, v.into(), AccessKind::Write)
                .expect("fixture channel");
            *d.graph_mut().channel_mut(c).freq_mut() = AccessFreq::new(0.0, 0, 0);
            (d, None)
        }
        other => panic!("no fixture for unknown lint {other}"),
    }
}

/// A minimal specification on which each flow lint (`A006`–`A009`) is
/// guaranteed to fire.
fn firing_spec(lint: LintId) -> &'static str {
    match lint {
        LintId::ValueRangeOverflow => "system T;\nvar x : int<8>;\nproc P() { x = 300; }\n",
        LintId::UninitializedRead => {
            "system T;\nvar x : int<8>;\nproc P() { var t : int<8>; x = t; }\n"
        }
        LintId::DeadStore => "system T;\nproc P() { var t : int<8>; t = 1; }\n",
        LintId::ConstantCondition => {
            "system T;\nvar x : int<8>;\nproc P() { if 1 > 0 { x = 1; } else { x = 2; } }\n"
        }
        other => panic!("{other} is not a flow lint"),
    }
}

fn is_flow_lint(lint: LintId) -> bool {
    matches!(
        lint,
        LintId::ValueRangeOverflow
            | LintId::UninitializedRead
            | LintId::DeadStore
            | LintId::ConstantCondition
    )
}

#[test]
fn every_registered_lint_can_fire() {
    for lint in LintId::ALL {
        let report: AnalysisReport = if is_flow_lint(lint) {
            let spec = parse(firing_spec(lint)).expect("fixture spec parses");
            let flow = FlowProgram::from_spec(&spec);
            let cd = CompiledDesign::compile(&Design::new("flow-fixture"));
            analyze_compiled_with_flow(&cd, None, &AnalysisConfig::new(), &flow, None)
        } else {
            let (design, partition) = firing_fixture(lint);
            analyze(&design, partition.as_ref(), &AnalysisConfig::new())
        };
        assert!(
            report.of(lint).count() >= 1,
            "{lint} stayed silent on its own fixture\n{report}"
        );
    }
}

#[test]
fn every_registered_lint_is_silent_on_the_corpus() {
    // Not just "no denials": each of the ten lints individually reports
    // nothing on the shipped specifications under the standard proc+ASIC
    // front half — with the flow-sensitive passes enabled.
    for entry in corpus::all() {
        let rs = entry.load().expect("corpus specs resolve");
        let sources = SourceMap::from_spec(rs.spec());
        assert!(!sources.is_empty(), "{}: empty source map", entry.name);
        let flow = FlowProgram::from_spec(rs.spec());
        let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
        let arch = allocate_proc_asic(&mut design);
        let partition = all_software_partition(&design, arch);
        let cd = CompiledDesign::compile(&design);
        let report = analyze_compiled_with_flow(
            &cd,
            Some(&partition),
            &AnalysisConfig::new(),
            &flow,
            Some(&sources),
        );
        for lint in LintId::ALL {
            assert_eq!(
                report.of(lint).count(),
                0,
                "{}: {lint} fired on the shipped corpus\n{report}",
                entry.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Analysis is a pure function: equal (design, partition, config)
    /// inputs give equal reports, and equal reports render to identical
    /// bytes. Holds for healthy and corrupted inputs alike.
    #[test]
    fn analysis_is_deterministic(seed in 0u64..5000, faults in 0usize..4) {
        let (mut design, mut partition) = DesignGenerator::new(seed)
            .behaviors(4 + (seed % 8) as usize)
            .variables(2 + (seed % 5) as usize)
            .processors(1 + (seed % 3) as usize)
            .buses(1 + (seed % 2) as usize)
            .build();
        let mut inj = FaultInjector::new(seed);
        let _ = inj.corrupt(&mut design, &mut partition, faults);
        let _ = inj.corrupt_analyzable(&mut design, &mut partition, faults / 2);
        let config = AnalysisConfig::new().with_deny_warnings(seed % 2 == 0);
        let a = analyze(&design, Some(&partition), &config);
        let b = analyze(&design, Some(&partition), &config);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.to_string(), b.to_string());
        let c = analyze(&design, None, &config);
        let d2 = analyze(&design, None, &config);
        prop_assert_eq!(&c, &d2);
    }

    /// Per-lint levels do what they say: Allow suppresses (the finding is
    /// counted, not listed), Deny promotes, and the finding total is
    /// conserved across level changes.
    #[test]
    fn levels_route_findings_without_losing_them(seed in 0u64..2000) {
        use slif::analyze::LintLevel;
        let (mut design, mut partition) = DesignGenerator::new(seed)
            .behaviors(6)
            .variables(4)
            .processors(2)
            .buses(2)
            .build();
        let _ = FaultInjector::new(seed).corrupt_analyzable(&mut design, &mut partition, 2);
        let base = analyze(&design, Some(&partition), &AnalysisConfig::new());
        let mut all_allowed = AnalysisConfig::new();
        let mut all_denied = AnalysisConfig::new();
        for lint in LintId::ALL {
            all_allowed = all_allowed.with_level(lint, LintLevel::Allow);
            all_denied = all_denied.with_level(lint, LintLevel::Deny);
        }
        let allowed = analyze(&design, Some(&partition), &all_allowed);
        let denied = analyze(&design, Some(&partition), &all_denied);
        prop_assert_eq!(allowed.len(), 0);
        prop_assert_eq!(allowed.suppressed(), base.len());
        prop_assert_eq!(denied.len(), base.len());
        prop_assert_eq!(denied.deny_count(), base.len());
        prop_assert_eq!(denied.warn_count(), 0);
    }
}
