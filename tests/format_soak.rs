//! The interchange-format fault soak (PR 9 acceptance): ≥500 corrupted,
//! truncated, or hostile-cap inputs through the strict parser AND
//! `POST /designs`, with zero panics, zero wrong answers (every
//! accepted design bit-identical to its uncorrupted oracle), and every
//! rejection a typed [`FormatError`] or a distinct wire status.

use slif::core::faults::FaultInjector;
use slif::core::gen::DesignGenerator;
use slif::core::{Design, Partition};
use slif::formats::wirefmt::{read_bytes, write_bytes, Encoding, FormatLimits, Strictness};
use slif::serve::http::read_response;
use slif::serve::server::{Server, ServerConfig};
use slif::store::{encode_design, ContentKey};
use slif_runtime::ServiceConfig;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

/// A small corpus of oracle designs with varied shapes, each rendered
/// in both encodings.
fn oracle_corpus() -> Vec<(Design, Option<Partition>, Encoding, Vec<u8>)> {
    let mut corpus = Vec::new();
    for seed in [3u64, 17, 40] {
        let (design, partition) = DesignGenerator::new(seed)
            .behaviors(6 + seed as usize % 5)
            .variables(4)
            .ports(3)
            .processors(2)
            .memories(1)
            .buses(1)
            .build();
        for encoding in [Encoding::Text, Encoding::Binary] {
            let bytes = write_bytes(&design, Some(&partition), encoding).unwrap();
            corpus.push((design.clone(), Some(partition.clone()), encoding, bytes));
        }
    }
    corpus
}

/// The parser half: every faulted input is parsed strictly and
/// leniently; acceptance in either mode with `verified` set must be
/// bit-identical to the oracle, and every refusal is a typed error.
#[test]
fn faulted_inputs_never_panic_or_yield_a_wrong_answer() {
    let corpus = oracle_corpus();
    let limits = FormatLimits::default();
    let mut injector = FaultInjector::new(20260807);
    const INPUTS: usize = 600;
    let plan = injector.plan_format_faults(INPUTS, 0.85);
    let mut accepted = 0usize;
    let mut refused: BTreeMap<String, usize> = BTreeMap::new();
    let mut salvaged = 0usize;
    for (i, slot) in plan.iter().enumerate() {
        let (design, partition, _, clean) = &corpus[i % corpus.len()];
        let mut bytes = clean.clone();
        let damage = match slot {
            Some(kind) => injector.corrupt_wire_bytes(&mut bytes, *kind),
            None => "clean".to_owned(),
        };
        // Strict: accepted ⇒ identical to the oracle, bit for bit.
        match read_bytes(&bytes, Strictness::Strict, &limits) {
            Ok(out) => {
                accepted += 1;
                assert!(out.verified, "input {i} ({damage}): strict accept unverified");
                assert_eq!(
                    encode_design(&out.design),
                    encode_design(design),
                    "input {i} ({damage}): accepted design differs from oracle"
                );
                assert_eq!(
                    &out.partition, partition,
                    "input {i} ({damage}): accepted partition differs"
                );
            }
            Err(e) => {
                // The refusal is typed: its variant renders a stable
                // diagnostic. Group by variant for the mix audit below.
                let variant = format!("{e:?}");
                let variant = variant.split([' ', '(', '{']).next().unwrap().to_owned();
                *refused.entry(variant).or_insert(0) += 1;
            }
        }
        // Lenient: never panics; whatever it salvages is only called
        // verified when it IS the oracle.
        if let Ok(out) = read_bytes(&bytes, Strictness::Lenient, &limits) {
            salvaged += 1;
            assert!(
                out.peak_alloc_bytes <= limits.max_segment_bytes + (1 << 20),
                "input {i} ({damage}): parser peak {} escaped the segment bound",
                out.peak_alloc_bytes
            );
            if out.verified {
                assert_eq!(
                    encode_design(&out.design),
                    encode_design(design),
                    "input {i} ({damage}): verified salvage differs from oracle"
                );
            }
        }
    }
    // Mix audit: the plan really exercised both sides.
    assert!(accepted >= 50, "only {accepted} accepted of {INPUTS}");
    let total_refused: usize = refused.values().sum();
    assert!(
        total_refused >= 300,
        "only {total_refused} refused of {INPUTS}: {refused:?}"
    );
    assert!(
        refused.len() >= 3,
        "refusals collapsed into too few variants: {refused:?}"
    );
    assert!(salvaged > 0, "lenient mode never salvaged anything");
}

fn post_design(addr: std::net::SocketAddr, body: &[u8]) -> (u16, Vec<u8>) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut raw = format!("POST /designs HTTP/1.1\r\ncontent-length: {}\r\n\r\n", body.len())
        .into_bytes();
    raw.extend_from_slice(body);
    s.write_all(&raw).unwrap();
    let (status, _, body) = read_response(&mut s).unwrap();
    (status, body)
}

fn get_design(addr: std::net::SocketAddr, hash: &str) -> (u16, Vec<u8>) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(format!("GET /designs/{hash} HTTP/1.1\r\n\r\n").as_bytes())
        .unwrap();
    let (status, _, body) = read_response(&mut s).unwrap();
    (status, body)
}

/// The wire half: the same fault families hit `POST /designs` on a live
/// durable server. The server must answer every request with a distinct
/// wire status (201 stored / 422 refused / 413 oversized), never panic,
/// and never store a design that differs from the uncorrupted oracle.
#[test]
fn design_endpoint_survives_the_format_fault_soak() {
    let dir = std::env::temp_dir().join(format!("slif-format-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::bind(
        ServerConfig::new()
            .with_conn_workers(2)
            .with_io_timeouts(Duration::from_secs(2), Duration::from_secs(2))
            .with_runtime(ServiceConfig::new().with_workers(2))
            .with_store_dir(&dir),
    )
    .unwrap();
    let addr = server.addr();
    let corpus = oracle_corpus();
    let mut injector = FaultInjector::new(40951995);
    const INPUTS: usize = 520;
    let plan = injector.plan_format_faults(INPUTS, 0.8);
    let mut stored = 0usize;
    let mut statuses: BTreeMap<u16, usize> = BTreeMap::new();
    for (i, slot) in plan.iter().enumerate() {
        let (design, _, _, clean) = &corpus[i % corpus.len()];
        let mut bytes = clean.clone();
        let damage = match slot {
            Some(kind) => injector.corrupt_wire_bytes(&mut bytes, *kind),
            None => "clean".to_owned(),
        };
        // Hostile-size text faults can outgrow the HTTP body cap; that
        // refusal (413, by declaration) is part of the taxonomy.
        let (status, body) = post_design(addr, &bytes);
        *statuses.entry(status).or_insert(0) += 1;
        let text = String::from_utf8_lossy(&body).into_owned();
        assert!(
            matches!(status, 201 | 413 | 422),
            "input {i} ({damage}): unexpected status {status}: {text}"
        );
        assert!(!body.is_empty(), "input {i}: empty response body");
        if status == 201 {
            stored += 1;
            // Zero wrong answers: the stored hash IS the oracle's hash.
            let oracle_hex = ContentKey::of(&encode_design(design)).to_hex();
            let hash = text
                .lines()
                .find_map(|l| l.strip_prefix("design "))
                .unwrap_or_else(|| panic!("input {i}: no hash in {text}"));
            assert_eq!(
                hash, oracle_hex,
                "input {i} ({damage}): stored design differs from oracle"
            );
        }
    }
    // Mix audit: acceptances and refusals both happened, with the
    // refusals on their own statuses.
    assert!(stored >= 50, "only {stored} stored of {INPUTS}: {statuses:?}");
    assert!(
        statuses.get(&422).copied().unwrap_or(0) >= 200,
        "format refusals missing: {statuses:?}"
    );
    // One stored design round-trips back out bit-compatibly.
    let (design, _, _, clean) = &corpus[0];
    let (status, body) = post_design(addr, clean);
    assert_eq!(status, 201);
    let hash = String::from_utf8_lossy(&body)
        .lines()
        .find_map(|l| l.strip_prefix("design ").map(str::to_owned))
        .unwrap();
    let (status, exported) = get_design(addr, &hash);
    assert_eq!(status, 200);
    let out = read_bytes(&exported, Strictness::Strict, &FormatLimits::default()).unwrap();
    assert_eq!(encode_design(&out.design), encode_design(design));
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}
