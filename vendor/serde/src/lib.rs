//! Offline stub of `serde`.
//!
//! Provides the two trait names and re-exports the no-op derive macros so
//! `use serde::{Serialize, Deserialize};` + `#[derive(Serialize, Deserialize)]`
//! compile without crates.io access. No serialization actually happens in
//! this workspace; swap in the real crate to get it.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::ser::Serialize` (no methods in the stub).
pub trait SerializeMarker {}

/// Marker trait mirroring `serde::de::Deserialize` (no methods in the stub).
pub trait DeserializeMarker {}
