//! Offline stub of `serde_derive`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a no-op derive: `#[derive(Serialize, Deserialize)]` (including `#[serde]`
//! attributes) parses and expands to nothing. Nothing in this repository
//! performs actual serialization; the derives exist so downstream users can
//! swap in real serde without touching the type definitions.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
