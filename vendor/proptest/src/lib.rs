//! Offline stub of `proptest`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of the API its tests use: the [`proptest!`] macro with a
//! `#![proptest_config(...)]` header, integer-range strategies, and the
//! `prop_assert*` macros. Cases are sampled deterministically (seeded per
//! case index), so failures reproduce without a persistence file. There is
//! no shrinking: a failing case reports its inputs via the panic message.

pub mod strategy {
    //! Strategies: value generators a [`crate::proptest!`] binder samples from.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// Generates values of type `Value` from a seeded rng.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// `Just`: a strategy producing one fixed (cloneable) value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod test_runner {
    //! Runner configuration.

    /// Mirror of `proptest::test_runner::Config` (`cases` only).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// How many cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// Builds the deterministic per-case rng the [`proptest!`] expansion uses.
/// Public so the macro works without `rand` at the call site; not part of
/// the real proptest API.
#[doc(hidden)]
pub fn rng_for_case(case: u32) -> rand::rngs::StdRng {
    <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0x5EED_0000_u64 ^ u64::from(case))
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Each `fn name(x in strategy, ...)` item expands
/// to a `#[test]` that samples its binders deterministically per case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                for __case in 0..__cfg.cases {
                    // Fixed per-case seeds: failures reproduce across runs.
                    let mut __rng = $crate::rng_for_case(__case);
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )*
                    // Bodies written for real proptest may `return Ok(())`
                    // to skip a case, so run them inside a Result closure.
                    let __outcome: ::core::result::Result<
                        (),
                        ::std::boxed::Box<dyn ::std::error::Error>,
                    > = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    __outcome.expect("property returned an error");
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($rest)*
        }
    };
}

/// `assert!` under a name test bodies written for real proptest expect.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a name test bodies written for real proptest expect.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a name test bodies written for real proptest expect.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn binders_sample_in_range(x in 0u64..100, y in 1usize..=4) {
            prop_assert!(x < 100);
            prop_assert!((1..=4).contains(&y));
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        use rand::{rngs::StdRng, SeedableRng};
        let s = 0u64..1000;
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
