//! Offline stub of `criterion` 0.5.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of the API its benches use. Instead of statistical sampling,
//! each benchmark runs a short warm-up plus a fixed measurement loop and
//! prints the mean wall time per iteration — enough to eyeball relative
//! costs and to keep `cargo bench` compiling and running.

use std::time::{Duration, Instant};

/// How many measured iterations each benchmark runs.
const MEASURE_ITERS: u32 = 30;
/// How many warm-up iterations precede measurement.
const WARMUP_ITERS: u32 = 3;

/// Re-export matching `criterion::black_box` (deprecated upstream in favor
/// of `std::hint::black_box`, which the benches already use).
pub use std::hint::black_box;

/// Mirror of `criterion::BatchSize`; the stub ignores the distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// Setup output consumed once per batch.
    PerIteration,
}

/// Mirror of `criterion::Throughput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Mirror of `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter display.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of a parameter display only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(value: &str) -> Self {
        Self { id: value.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(value: String) -> Self {
        Self { id: value }
    }
}

/// The per-benchmark timing driver handed to `bench_function` closures.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    fn new() -> Self {
        Self {
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times `routine` over the stub's fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += MEASURE_ITERS;
    }

    /// Times `routine` with a fresh `setup` output per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        for _ in 0..MEASURE_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

fn report(name: &str, bencher: &Bencher) {
    let mean = if bencher.iters == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / bencher.iters
    };
    println!("bench {name:<50} {mean:>12.2?}/iter ({} iters)", bencher.iters);
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the work per iteration; the stub records and ignores it.
    pub fn throughput(&mut self, _throughput: Throughput) {}

    /// Sets the sample count; the stub's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement window; the stub's iteration count is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new();
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id.id), &bencher);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<F, I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new();
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.id), &bencher);
        self
    }

    /// Ends the group (prints nothing in the stub).
    pub fn finish(self) {}
}

/// Mirror of `criterion::Criterion`, the top-level driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new();
        f(&mut bencher);
        report(name, &bencher);
        self
    }
}

/// Mirror of `criterion_group!`: bundles bench functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion_main!`: the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
