//! Offline stub of `rand` 0.8.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of the API it uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and [`Rng`]'s `gen`, `gen_bool`, and `gen_range` over integer and float
//! ranges. The generator is xoshiro256** seeded through SplitMix64 — fast,
//! deterministic, and statistically solid for test/benchmark generation
//! (not cryptographic, exactly like the real `StdRng` contract minus the
//! CSPRNG guarantee).

/// Types that can be drawn uniformly from the generator's raw output.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a uniform value can be sampled from.
pub trait SampleRange<T> {
    /// Samples one value; panics on an empty range (as the real crate does).
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::draw(self) < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Rngs constructible from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the stub's stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// Snapshots the generator's internal xoshiro256** state, so a
        /// checkpointed computation can later resume from the exact same
        /// stream position via [`from_state`](Self::from_state).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a snapshot taken by
        /// [`state`](Self::state). An all-zero snapshot (which xoshiro
        /// cannot escape and [`state`] never produces) is coerced to the
        /// seed-0 state instead of yielding a degenerate constant stream.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return <Self as SeedableRng>::seed_from_u64(0);
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u64..=64);
            assert!((1..=64).contains(&w));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(123);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let snapshot = a.state();
        let tail: Vec<u64> = (0..50).map(|_| a.gen::<u64>()).collect();
        let mut b = StdRng::from_state(snapshot);
        let replay: Vec<u64> = (0..50).map(|_| b.gen::<u64>()).collect();
        assert_eq!(tail, replay);
    }

    #[test]
    fn all_zero_state_is_not_degenerate() {
        let mut z = StdRng::from_state([0; 4]);
        let vals: Vec<u64> = (0..8).map(|_| z.gen::<u64>()).collect();
        assert!(vals.iter().any(|&v| v != vals[0]), "constant stream {vals:?}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
