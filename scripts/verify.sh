#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md).
#
# 1. Release build + full test suite — the seed contract.
# 2. Lint gate: clippy with warnings denied, plus `unwrap_used` on
#    non-test code (without --all-targets, #[cfg(test)] code is not
#    linted, which is exactly the carve-out we want: tests may unwrap,
#    library paths must return typed errors).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings -W clippy::unwrap_used
