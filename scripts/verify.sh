#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md).
#
# 1. Release build + full test suite — the seed contract.
# 2. Fault-injection suite, run explicitly: checkpoint corruption
#    (truncation/bit-flips/header smashing), kill-and-resume exactness
#    for all four partitioners, and the incremental-estimator self-audit
#    must hold on every run, not only when the root suite happens to
#    include them.
# 3. Checkpoint round-trip smoke: the resume_run example interrupts a
#    supervised annealing run on a budget, reloads the checkpoint file,
#    and asserts the resumed run is bit-identical to an uninterrupted
#    one. It exits nonzero on any mismatch.
# 4. Runtime soak: 500 mixed jobs (>30% injected faults — worker
#    panics, malformed/corrupted/oversized inputs) through a 4-worker
#    JobService; asserts exactly-one-terminal-state per job, bit-identity
#    with inline execution for clean jobs, and balanced health books.
#    The serve_batch example smoke-tests the same service end to end.
# 5. Spec-level lint gate: the analyze_spec example runs the
#    slif-analyze engine — the graph passes (races, dead code,
#    recursion cycles, bitwidth hazards, annotation gaps) plus the
#    flow-sensitive passes (value ranges, uninitialized reads, dead
#    stores, constant conditions) — over every corpus spec in
#    deny-warnings mode and exits nonzero on any finding; the shipped
#    corpus must lint clean. It runs twice: once for the human-readable
#    rendering and once in `--format json` (the stable machine schema).
#    The analyzer's own property suites (determinism, per-lint firing
#    fixtures, fixpoint determinism, incremental bit-identity) run with
#    it.
# 6. Bench smoke: the pr3_bench binary re-measures baseline vs
#    compiled candidate evaluation and rewrites BENCH_pr3.json, so the
#    committed speedup record always matches the code being verified.
# 7. Wire smoke: loadgen binds a slif-serve instance in-process on an
#    ephemeral port (--self-serve, so no port coordination) and drives
#    500 mixed requests with >30% injected client faults — slow
#    writers, truncated bodies, bad API keys, oversized declarations,
#    tenant floods. It exits nonzero on any contract violation (wrong
#    status, clean body not byte-identical to the inline run, a caught
#    worker panic) and rewrites BENCH_serve.json so the committed
#    throughput/p99 record always matches the code being verified. The
#    full 10k-request soak runs as tests/wire_soak.rs in step 1.
# 8. Durability soak: tests/store_soak.rs drives 24 restart cycles of a
#    durable slif-serve over one store directory, corrupting the journal
#    and the design cache between cycles (>30% of cycles, all four
#    StoreFaultKind classes) — every acknowledged job must keep
#    replaying its exact status and body, and every served body (cold or
#    warm-cache) must stay byte-identical to the inline run. The
#    restart_smoke binary then proves the same contract cross-process:
#    it SIGKILLs a real slif-serve child mid-flight and requires the
#    journalled result and a warm cache hit from its successor.
# 9. Store bench smoke: pr7_store re-measures the durability ledger —
#    cold spec-compile vs verified warm cache read, and the fsynced
#    journal append pair every durable job pays — and rewrites
#    BENCH_store.json so the committed record matches the code.
# 10. Edit-session smoke: the edit_session example opens a session,
#    walks all three recompute tiers (patched / recompiled / deferred)
#    locally, then drives the same protocol across the wire (POST
#    /sessions, POST /sessions/{id}/edit, GET /sessions/{id}) against an
#    in-process server, asserting tier and cleanliness on each hop. The
#    pr8_edit bench then re-measures warm-edit vs cold-open latency at
#    ~120 and ~1200 nodes — asserting every edit stays clean on the
#    patch tier — and rewrites BENCH_edit.json so the committed speedup
#    record always matches the code being verified.
# 11. Interchange-format gate: the format fault soak (tests/format_soak.rs,
#    also in step 1) drives ≥500 corrupted/truncated/hostile-cap inputs
#    through the strict parser and POST /designs — zero panics, zero
#    wrong answers, every rejection typed. The slif_conv example then
#    proves every corpus spec survives text → binary → text with the
#    final text byte-identical to the first, and the pr9_wirefmt bench
#    re-measures interchange write/parse throughput at 1k/10k/100k nodes
#    plus the compiled-cache ladder — asserting the warm CompiledDesign
#    hit beats both the cold parse+compile path and the PR 7 design-only
#    cache — and rewrites BENCH_wirefmt.json so the committed record
#    matches the code.
# 12. Analysis bench smoke: pr10_analyze re-measures flow-sensitive
#    analysis throughput at ~1k/10k/100k design nodes and the memoized
#    one-procedure re-analysis on the largest corpus spec — asserting
#    the warm pass beats the cold full analysis by ≥5x and returns a
#    bit-identical report — and rewrites BENCH_analyze.json so the
#    committed record matches the code.
# 13. Lint gate: clippy with warnings denied (the workspace sweep covers
#    crates/analyze like every other crate), plus `unwrap_used` on
#    non-test code (without --all-targets, #[cfg(test)] code is not
#    linted, which is exactly the carve-out we want: tests may unwrap,
#    library paths must return typed errors). slif-explore and
#    slif-estimate carry `#![warn(clippy::expect_used)]` at crate level
#    — `-D warnings` promotes it, so the checkpoint and self-audit paths
#    can never panic on bad input. slif-runtime warns on expect_used too:
#    serving code must degrade, not die.
set -euo pipefail
cd "$(dirname "$0")/.."

# --workspace: a bare root build covers only the facade package, which
# can leave member binaries (notably the slif-serve the restart_smoke
# step spawns from target/release/) stale.
cargo build --release --workspace
cargo test -q
cargo test -q --test fault_injection
cargo test -q --test runtime_soak
cargo run --release --quiet --example resume_run
cargo run --release --quiet --example serve_batch
cargo test -q --test analyze_props
cargo test -q --test dataflow_props
cargo run --release --quiet --example analyze_spec -- --deny-warnings
cargo run --release --quiet --example analyze_spec -- --deny-warnings --format json
cargo run --release --quiet -p slif-bench --bin pr3_bench BENCH_pr3.json
cargo run --release --quiet -p slif-serve --bin loadgen -- --self-serve --requests 500 --out BENCH_serve.json
cargo test -q --test store_soak
cargo run --release --quiet -p slif-serve --bin restart_smoke
cargo run --release --quiet -p slif-bench --bin pr7_store BENCH_store.json
cargo run --release --quiet --example edit_session
cargo run --release --quiet -p slif-bench --bin pr8_edit
cargo test -q --test format_soak
cargo run --release --quiet --example slif_conv
cargo run --release --quiet -p slif-bench --bin pr9_wirefmt
cargo run --release --quiet -p slif-bench --bin pr10_analyze
cargo clippy --workspace -- -D warnings -W clippy::unwrap_used
