//! The paper's Figure 3 walk-through: annotated SLIF and hardware/software
//! trade-off on the fuzzy-logic controller.
//!
//! Shows the channel annotations the paper highlights (EvaluateRule's
//! accesses to `in1val` and `mr1`), the per-class ict lists, and how
//! moving the loop-heavy procedures to the ASIC changes the estimated
//! process period — the decision SpecSyn exists to support.
//!
//! Run with: `cargo run --example fuzzy_controller`

use slif::core::{AccessKind, PmRef};
use slif::estimate::ExecTimeEstimator;
use slif::frontend::{all_software_partition, allocate_proc_asic, build_design};
use slif::speclang::corpus;
use slif::techlib::TechnologyLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rs = corpus::by_name("fuzzy").unwrap().load()?;
    let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
    let g = design.graph();

    // --- Figure 3: channel annotations ---
    let eval = g.node_by_name("EvaluateRule").unwrap();
    let in1val = g.node_by_name("in1val").unwrap();
    let mr1 = g.node_by_name("mr1").unwrap();
    let c1 = g
        .find_channel(eval, in1val.into(), AccessKind::Read)
        .unwrap();
    let c2 = g.find_channel(eval, mr1.into(), AccessKind::Read).unwrap();
    println!("Figure 3 annotations:");
    println!(
        "  EvaluateRule -> in1val : accfreq {} bits {}   (paper: 1, 8)",
        g.channel(c1).freq().avg,
        g.channel(c1).bits()
    );
    println!(
        "  EvaluateRule -> mr1    : accfreq {} bits {}  (paper: 65, 15*)",
        g.channel(c2).freq().avg,
        g.channel(c2).bits()
    );
    println!("  (* the paper's figure uses 7 address bits; mr1 has 384");
    println!("     entries, so the strict rule gives 9 + 8 = 17)\n");

    // --- Figure 3: per-class ict lists ---
    println!("ict lists (ns per start-to-finish execution):");
    for name in ["EvaluateRule", "Convolve", "ComputeCentroid"] {
        let n = g.node_by_name(name).unwrap();
        let entries: Vec<String> = g
            .node(n)
            .ict()
            .iter()
            .map(|e| format!("{}={}", design.class(e.class).name(), e.val))
            .collect();
        println!("  {:<16} {}", name, entries.join("  "));
    }

    // --- The trade-off: software vs hardware mapping ---
    let arch = allocate_proc_asic(&mut design);
    let sw = all_software_partition(&design, arch);
    let main = design.graph().node_by_name("FuzzyMain").unwrap();
    let t_sw = ExecTimeEstimator::new(&design, &sw).exec_time(main)?;

    let mut hw = sw.clone();
    for name in [
        "EvaluateRule",
        "Convolve",
        "mr1",
        "mr2",
        "tmr1",
        "tmr2",
        "conv",
        "in1val",
        "in2val",
    ] {
        let n = design.graph().node_by_name(name).unwrap();
        hw.assign_node(n, PmRef::Processor(arch.asic));
    }
    let t_hw = ExecTimeEstimator::new(&design, &hw).exec_time(main)?;

    println!("\nFuzzyMain period estimate:");
    println!("  all on {:<22}: {:>12.0} ns", "processor (mcu8)", t_sw);
    println!(
        "  hot loops on {:<15}: {:>12.0} ns  ({:.1}x faster)",
        "ASIC (asic_ga)",
        t_hw,
        t_sw / t_hw
    );

    let pins = slif::estimate::io_pins(&design, &hw, arch.asic)?;
    let gates = slif::estimate::size(&design, &hw, PmRef::Processor(arch.asic))?;
    println!("  the ASIC costs {gates} gates and {pins} pins");
    Ok(())
}
