//! Specification transformations on SLIF: inlining and process merging.
//!
//! The paper names transformation as the third system-design task and
//! sketches how SLIF supports it: "a transformation, such as procedure
//! inlining or process merging, would require modification of certain
//! nodes and edges, along with recomputation of certain annotations"
//! (Section 3). This example performs both on the benchmark systems and
//! shows the annotation recomputation at work.
//!
//! Run with: `cargo run --example transformations`

use slif::core::PmRef;
use slif::estimate::ExecTimeEstimator;
use slif::explore::{inline_procedure, merge_processes};
use slif::frontend::{all_software_partition, allocate_proc_asic, build_design};
use slif::speclang::corpus;
use slif::techlib::TechnologyLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    inline_demo()?;
    merge_demo()?;
    Ok(())
}

/// Inline the fuzzy controller's RuleStrength function into its caller.
fn inline_demo() -> Result<(), Box<dyn std::error::Error>> {
    let rs = corpus::by_name("fuzzy").unwrap().load()?;
    let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
    let arch = allocate_proc_asic(&mut design);
    let part = all_software_partition(&design, arch);

    let main = design.graph().node_by_name("FuzzyMain").unwrap();
    let target = design.graph().node_by_name("RuleStrength").unwrap();
    let before_nodes = design.graph().node_count();
    let before_chans = design.graph().channel_count();
    let t_before = ExecTimeEstimator::new(&design, &part).exec_time(main)?;

    let result = inline_procedure(&design, target)?;
    let new_design = &result.design;
    println!("== inlining RuleStrength into the fuzzy controller ==");
    println!(
        "  nodes {} -> {}, channels {} -> {}",
        before_nodes,
        new_design.graph().node_count(),
        before_chans,
        new_design.graph().channel_count()
    );

    // Rebuild the equivalent partition on the transformed design.
    let mut design2 = result.design;
    let arch2 = allocate_proc_asic(&mut design2);
    let part2 = all_software_partition(&design2, arch2);
    let new_main = design2.graph().node_by_name("FuzzyMain").unwrap();
    let t_after = ExecTimeEstimator::new(&design2, &part2).exec_time(new_main)?;
    println!(
        "  FuzzyMain period {t_before:.0} -> {t_after:.0} ns \
         (call transfers folded away; weights recomputed)\n"
    );
    Ok(())
}

/// Merge the volume meter's two processes into a single controller.
fn merge_demo() -> Result<(), Box<dyn std::error::Error>> {
    let rs = corpus::by_name("vol").unwrap().load()?;
    let design = build_design(&rs, &TechnologyLibrary::proc_asic());
    let a = design.graph().node_by_name("VolMain").unwrap();
    let b = design.graph().node_by_name("DisplayMain").unwrap();
    let pc = design.class_by_name("mcu8").unwrap();
    let ict_a = design.graph().node(a).ict().get(pc).unwrap();
    let ict_b = design.graph().node(b).ict().get(pc).unwrap();

    let result = merge_processes(&design, a, b)?;
    let merged = result.node_map[a.index()].unwrap();
    let g = result.design.graph();
    println!("== merging VolMain + DisplayMain in the volume meter ==");
    println!(
        "  processes {} -> {}",
        design
            .graph()
            .node_ids()
            .filter(|&n| design.graph().node(n).kind().is_process())
            .count(),
        g.node_ids()
            .filter(|&n| g.node(n).kind().is_process())
            .count()
    );
    println!(
        "  merged ict on mcu8: {} + {} = {} ns",
        ict_a,
        ict_b,
        g.node(merged).ict().get(pc).unwrap()
    );
    println!(
        "  channels {} -> {} (the inter-process message became internal)",
        design.graph().channel_count(),
        g.channel_count()
    );

    // The merged design still estimates end to end.
    let mut design2 = result.design;
    let arch = allocate_proc_asic(&mut design2);
    let part = all_software_partition(&design2, arch);
    let t = ExecTimeEstimator::new(&design2, &part)
        .exec_time(design2.graph().node_by_name("VolMain").unwrap())?;
    println!("  merged controller period on the processor: {t:.0} ns");
    let _ = PmRef::Processor(arch.cpu);
    Ok(())
}
