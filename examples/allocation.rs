//! Allocation exploration: which architecture should this system use?
//!
//! The paper's first system-design task is "the allocation of system
//! components, such as processors, ASICs, memories and buses". Because
//! allocation and partitioning are interdependent, each candidate
//! architecture is scored by the best partition a budgeted search finds
//! inside it. Run against the volume meter under a deadline that software
//! alone cannot meet, the cheap cpu-only option loses to the
//! hardware-assisted ones.
//!
//! Run with: `cargo run --release --example allocation`

use slif::core::Bus;
use slif::explore::{
    explore_allocations, AllocOption, AnnealingConfig, Objectives, ProcessorAlloc,
};
use slif::frontend::build_design;
use slif::speclang::corpus;
use slif::techlib::TechnologyLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rs = corpus::by_name("vol").unwrap().load()?;
    // A component-less base: build_design annotates weights for every
    // class but allocates nothing.
    let base = build_design(&rs, &TechnologyLibrary::standard());

    let mcu8 = base.class_by_name("mcu8").unwrap();
    let cpu32 = base.class_by_name("cpu32").unwrap();
    let asic = base.class_by_name("asic_ga").unwrap();
    let fpga = base.class_by_name("fpga").unwrap();
    let sram = base.class_by_name("sram").unwrap();
    let bus = || Bus::new("sysbus", 16, 20, 100);

    let options = vec![
        AllocOption {
            name: "mcu8-only".into(),
            processors: vec![ProcessorAlloc::new(mcu8)],
            memories: vec![],
            buses: vec![bus()],
            component_cost: 3.0,
        },
        AllocOption {
            name: "cpu32-only".into(),
            processors: vec![ProcessorAlloc::new(cpu32)],
            memories: vec![],
            buses: vec![bus()],
            component_cost: 12.0,
        },
        AllocOption {
            name: "mcu8+fpga".into(),
            processors: vec![ProcessorAlloc::new(mcu8), ProcessorAlloc::new(fpga)],
            memories: vec![sram],
            buses: vec![bus()],
            component_cost: 22.0,
        },
        AllocOption {
            name: "mcu8+asic".into(),
            processors: vec![ProcessorAlloc::new(mcu8), ProcessorAlloc::new(asic)],
            memories: vec![sram],
            buses: vec![bus()],
            component_cost: 40.0,
        },
    ];

    // Deadline: 60 µs per VolMain round (software alone needs more).
    let main = base.graph().node_by_name("VolMain").unwrap();
    let objectives = Objectives::new().try_with_deadline(main, 60_000.0)?;

    let results = explore_allocations(
        &base,
        &options,
        &objectives,
        AnnealingConfig::default(),
        2026,
    )?;

    println!("allocation ranking for the volume meter (deadline 60 us):\n");
    for (rank, r) in results.iter().enumerate() {
        println!("  {}. {r}", rank + 1);
    }
    println!("\nbest architecture: {}", results[0].name);
    Ok(())
}
