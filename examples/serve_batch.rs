//! Serve a batch of mixed evaluation jobs through the runtime service.
//!
//! The paper's point is that SLIF makes design evaluation cheap enough
//! to be interactive. This example treats that as a serving problem: a
//! 4-worker `JobService` receives a batch of parse, estimate, and
//! exploration jobs with some hostile inputs mixed in — a malformed
//! spec, an oversized spec, and an injected worker panic — and keeps
//! serving while each of them fails in its own typed way.
//!
//! Run with: `cargo run --release --example serve_batch`

use slif::estimate::EstimatorConfig;
use slif::explore::{Algorithm, Objectives};
use slif::frontend::{all_software_partition, allocate_proc_asic, build_design};
use slif::runtime::{Job, JobOutcome, JobService, RunLimits, ServiceConfig};
use slif::speclang::{corpus, ParseLimits};
use slif::techlib::TechnologyLibrary;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Worker panics are caught and reported through `JobOutcome`, so the
    // default hook's backtrace on stderr is just noise here. Embedders
    // that want panic logs can keep (or replace) the hook instead.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if std::thread::current().name() != Some("slif-worker") {
            default_hook(info);
        }
    }));

    // A real design for the estimation and exploration jobs.
    let rs = corpus::by_name("fuzzy").expect("fuzzy is in the corpus").load()?;
    let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
    let arch = allocate_proc_asic(&mut design);
    let partition = all_software_partition(&design, arch);

    // A service with a tight parser byte cap, so the oversized job is
    // shed at admission, and a short default deadline for everything.
    let limits = RunLimits::default().with_parse(ParseLimits::default().with_max_bytes(16_384));
    let svc = JobService::start(
        ServiceConfig::new()
            .with_workers(4)
            .with_queue_capacity(64)
            .with_limits(limits)
            .with_default_deadline(Duration::from_secs(10)),
    );

    let batch: Vec<(&str, Job)> = vec![
        (
            "parse every corpus spec",
            Job::ParseSpec {
                source: corpus::by_name("ans").expect("ans exists").source.to_owned(),
            },
        ),
        (
            "estimate the fuzzy controller",
            Job::Estimate {
                design: design.clone(),
                partition: partition.clone(),
                config: EstimatorConfig::default(),
            },
        ),
        (
            "explore 200 random partitions",
            Job::Explore {
                design: design.clone(),
                start: partition.clone(),
                objectives: Objectives::new(),
                algorithm: Algorithm::RandomSearch {
                    iterations: 200,
                    seed: 7,
                },
            },
        ),
        (
            "malformed spec",
            Job::ParseSpec {
                source: "system ;\nprocess { x = ; }\n".to_owned(),
            },
        ),
        (
            "injected worker panic",
            Job::InjectedPanic {
                message: "demo panic".to_owned(),
            },
        ),
    ];

    let mut handles = Vec::new();
    for (label, job) in batch {
        match svc.submit(job) {
            Ok(handle) => handles.push((label, handle)),
            Err(rejected) => println!("{label:32} rejected at admission: {rejected}"),
        }
    }

    // The oversized spec never reaches a worker: admission refuses it.
    let oversized = "-- padding\n".repeat(4096);
    if let Err(rejected) = svc.submit(Job::ParseSpec { source: oversized }) {
        println!("{:32} rejected at admission: {rejected}", "oversized spec");
    }

    for (label, handle) in handles {
        match handle.wait() {
            JobOutcome::Completed {
                output,
                attempts,
                degraded,
            } => println!(
                "{label:32} completed (attempt {attempts}, degraded={degraded}): {}",
                summarize(&output)
            ),
            JobOutcome::Failed { error, attempts } => {
                println!("{label:32} failed after {attempts} attempt(s): {error}");
            }
            other => println!("{label:32} ended: {other:?}"),
        }
    }

    // The service absorbed the panic (caught, retried, reported) and the
    // health snapshot shows the whole story.
    println!("\n{}", svc.health());
    svc.shutdown();
    Ok(())
}

fn summarize(output: &slif::runtime::JobOutput) -> String {
    match output {
        slif::runtime::JobOutput::Parsed { behaviors, .. } => {
            format!("parsed, {behaviors} behaviors")
        }
        slif::runtime::JobOutput::Compiled { nodes, channels, .. } => {
            format!("compiled, {nodes} nodes / {channels} channels")
        }
        slif::runtime::JobOutput::Estimated(report) => {
            format!("{} process estimates", report.processes.len())
        }
        slif::runtime::JobOutput::Explored(result) => format!(
            "best cost {:.3} after {} evaluations ({})",
            result.result.cost, result.result.evaluations, result.stop
        ),
        other => format!("{other:?}"),
    }
}
