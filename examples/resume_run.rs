//! Interrupt and resume a supervised exploration run.
//!
//! Long partitioning runs ("algorithms that explore thousands of possible
//! designs", Section 5) need to survive budget limits, cancellation, and
//! crashes. This example runs simulated annealing on the answering
//! machine under a `Supervisor` with an evaluation budget and crash-safe
//! checkpoints, then resumes from the checkpoint file and shows that the
//! resumed run reproduces the uninterrupted run bit for bit.
//!
//! Run with: `cargo run --release --example resume_run`

use slif::explore::{
    explore, resume, Algorithm, AnnealingConfig, ExplorationCheckpoint, Objectives, StopReason,
    Supervisor,
};
use slif::frontend::{all_software_partition, allocate_proc_asic, build_design};
use slif::speclang::corpus;
use slif::techlib::TechnologyLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rs = corpus::by_name("ans").expect("ans is in the corpus").load()?;
    let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
    let arch = allocate_proc_asic(&mut design);
    let start = all_software_partition(&design, arch);
    let main = design.graph().node_by_name("AnsMain").expect("AnsMain exists");
    let objectives = Objectives::new().try_with_deadline(main, 2.0e6)?;
    let algorithm = Algorithm::SimulatedAnnealing {
        config: AnnealingConfig {
            t0: 20.0,
            alpha: 0.85,
            moves_per_temp: 48,
            t_min: 0.2,
        },
        seed: 42,
    };

    // Reference: the same run with no limits.
    let full = explore(
        &design,
        start.clone(),
        &objectives,
        &algorithm,
        &mut Supervisor::unlimited(),
    )?;
    println!(
        "uninterrupted: cost {:.3} after {} evaluations ({})",
        full.result.cost, full.result.evaluations, full.stop
    );

    // The same run, killed by an evaluation budget. The supervisor writes
    // a checkpoint every 100 boundaries and once more at the stop, so the
    // file always holds the exact stop state.
    let ckpt_path = std::env::temp_dir().join("slif-resume-run-example.ckpt");
    let mut sup = Supervisor::unlimited()
        .with_budget(400)
        .with_checkpoints(&ckpt_path, 100)
        .with_progress(200, |p| {
            println!(
                "  ... progress: {} evaluations, best {:.3}",
                p.evaluations, p.best_cost
            );
        });
    let partial = explore(&design, start, &objectives, &algorithm, &mut sup)?;
    println!(
        "interrupted:   cost {:.3} after {} evaluations ({}), {} checkpoints",
        partial.result.cost, partial.result.evaluations, partial.stop, partial.checkpoints_written
    );
    assert_eq!(partial.stop, StopReason::BudgetExhausted);

    // Resume from the file: load validates magic, version, checksum, and
    // the design fingerprint before a single field is trusted.
    let ckpt = ExplorationCheckpoint::load(&ckpt_path, &design)?;
    println!(
        "checkpoint:    {} evaluations banked, best {:.3}",
        ckpt.evaluations(),
        ckpt.best_cost()
    );
    let resumed = resume(&design, &objectives, ckpt, &mut Supervisor::unlimited())?;
    println!(
        "resumed:       cost {:.3} after {} evaluations ({})",
        resumed.result.cost, resumed.result.evaluations, resumed.stop
    );

    assert_eq!(resumed.result.partition, full.result.partition);
    assert_eq!(resumed.result.cost.to_bits(), full.result.cost.to_bits());
    assert_eq!(resumed.result.evaluations, full.result.evaluations);
    println!("resume matches the uninterrupted run bit for bit");

    std::fs::remove_file(&ckpt_path)?;
    Ok(())
}
