//! Quickstart: specification → SLIF access graph → estimates.
//!
//! Reproduces the paper's Figures 1 and 2: the fuzzy-logic controller
//! specification is read into a SLIF access graph (bold process nodes,
//! procedure and variable nodes, access edges), then the basic design
//! metrics are estimated for an all-software mapping.
//!
//! Run with: `cargo run --example quickstart`

use slif::estimate::DesignReport;
use slif::frontend::{all_software_partition, allocate_proc_asic, build_design};
use slif::speclang::corpus;
use slif::techlib::TechnologyLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example (its Figure 1 shows the VHDL original).
    let entry = corpus::by_name("fuzzy").expect("fuzzy is in the corpus");
    println!("== {} ({}) ==\n", entry.name, entry.description);

    let rs = entry.load()?;
    let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());

    // Figure 2: the basic SLIF access graph.
    println!(
        "SLIF-AG: {} behavior/variable nodes, {} channels, {} ports",
        design.graph().node_count(),
        design.graph().channel_count(),
        design.graph().port_count(),
    );
    println!(
        "(paper's Figure 4 row: {} objects, {} channels)\n",
        entry.paper.bv, entry.paper.channels
    );

    println!("nodes (processes in CAPS-marked kind):");
    for n in design.graph().node_ids() {
        let node = design.graph().node(n);
        println!("  {:<16} {}", node.name(), node.kind());
    }
    println!("\nchannels (src -> dst, kind, accfreq, bits):");
    for c in design.graph().channel_ids() {
        println!("  {}", display_channel(&design, c));
    }

    // Allocate the paper's processor–ASIC architecture and estimate.
    let arch = allocate_proc_asic(&mut design);
    let partition = all_software_partition(&design, arch);
    let report = DesignReport::compute(&design, &partition)?;
    println!("\nall-software estimates:\n{report}");
    Ok(())
}

fn display_channel(design: &slif::core::Design, c: slif::core::ChannelId) -> String {
    let g = design.graph();
    let ch = g.channel(c);
    let dst = match ch.dst() {
        slif::core::AccessTarget::Node(n) => g.node(n).name().to_owned(),
        slif::core::AccessTarget::Port(p) => format!("port {}", g.port(p).name()),
    };
    format!(
        "{:<16} -> {:<16} {:<8} x{:<8.2} {:>3} bits",
        g.node(ch.src()).name(),
        dst,
        ch.kind().to_string(),
        ch.freq().avg,
        ch.bits()
    )
}
