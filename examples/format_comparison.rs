//! Section 5's format-size comparison for the whole corpus.
//!
//! The paper compares SLIF against the ADD and CDFG formats on the fuzzy
//! example (35/56 vs 450+/400+ vs 1100+/900+ nodes/edges) and shows what
//! that does to an `n²` partitioning algorithm (1 225 vs 202 500 vs
//! 1 210 000 computations). This example regenerates the table for all
//! four benchmark systems.
//!
//! Run with: `cargo run --example format_comparison`

use slif::formats::FormatComparison;
use slif::frontend::build_design;
use slif::speclang::corpus;
use slif::techlib::TechnologyLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for entry in corpus::all() {
        let rs = entry.load()?;
        let design = build_design(&rs, &TechnologyLibrary::proc_asic());
        let cmp = FormatComparison::measure(&rs, design.graph().channel_count());
        println!("{cmp}");
        let slif = cmp.slif();
        let add = cmp.add();
        let cdfg = cmp.cdfg();
        println!(
            "  -> SLIF is {:.1}x smaller than ADD and {:.1}x smaller than CDFG;",
            add.nodes as f64 / slif.nodes as f64,
            cdfg.nodes as f64 / slif.nodes as f64
        );
        println!(
            "     an n^2 algorithm does {:.0}x / {:.0}x less work on SLIF\n",
            add.n_squared() as f64 / slif.n_squared() as f64,
            cdfg.n_squared() as f64 / slif.n_squared() as f64
        );
    }
    println!(
        "(paper, fuzzy only: SLIF 35/56, ADD 450+/400+, CDFG 1100+/900+;\n\
         n^2 work 1225 vs 202500 vs 1210000)"
    );
    Ok(())
}
