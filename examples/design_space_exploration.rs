//! Design-space exploration on the answering machine.
//!
//! Demonstrates the claim the paper's speed argument serves: with
//! estimates costing well under a hundredth of a second, "algorithms that
//! explore thousands of possible designs" become practical. All five
//! partitioners run against a deadline + size-constrained
//! processor–ASIC architecture and report their cost, evaluation count,
//! and throughput.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use slif::core::Processor;
use slif::estimate::IncrementalEstimator;
use slif::explore::{
    cluster_partition, cost, greedy_improve, group_migration, random_search, simulated_annealing,
    AnnealingConfig, Objectives,
};
use slif::frontend::{all_software_partition, build_design, ProcAsicArchitecture};
use slif::speclang::corpus;
use slif::techlib::TechnologyLibrary;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rs = corpus::by_name("ans").unwrap().load()?;
    let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());

    // A constrained allocation: a small processor, a pin-limited ASIC.
    let pc = design.class_by_name("mcu8").unwrap();
    let ac = design.class_by_name("asic_ga").unwrap();
    let mc = design.class_by_name("sram").unwrap();
    let arch = ProcAsicArchitecture {
        cpu: design.add_processor_instance(Processor::new("cpu0", pc).with_size_constraint(3000)),
        asic: design.add_processor_instance(
            Processor::new("asic0", ac)
                .with_size_constraint(400_000)
                .with_pin_constraint(96),
        ),
        mem: design.add_memory("mem0", mc),
        bus: design.add_bus(slif::core::Bus::new("sysbus", 16, 20, 100)),
    };
    let start = all_software_partition(&design, arch);

    // Objective: answer-path period under 2 ms, panel refresh under 5 ms.
    let ans_main = design.graph().node_by_name("AnsMain").unwrap();
    let panel = design.graph().node_by_name("PanelMain").unwrap();
    let objectives = Objectives::new()
        .try_with_deadline(ans_main, 2.0e6)?
        .try_with_deadline(panel, 5.0e6)?;

    let mut est = IncrementalEstimator::new(&design, start.clone())?;
    let c0 = cost(&mut est, &objectives)?;
    println!("answering machine, all-software start: cost {c0:.3}\n");
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>14}",
        "algorithm", "cost", "evaluations", "time (ms)", "partitions/s"
    );

    type AlgoRun<'a> = Box<dyn Fn() -> slif::explore::ExplorationResult + 'a>;
    let algos: Vec<(&str, AlgoRun)> = vec![
        (
            "random (2000 moves)",
            Box::new(|| random_search(&design, start.clone(), &objectives, 2000, 42).unwrap()),
        ),
        (
            "greedy descent",
            Box::new(|| greedy_improve(&design, start.clone(), &objectives, 50).unwrap()),
        ),
        (
            "simulated annealing",
            Box::new(|| {
                simulated_annealing(
                    &design,
                    start.clone(),
                    &objectives,
                    AnnealingConfig::default(),
                    42,
                )
                .unwrap()
            }),
        ),
        (
            "group migration (KL)",
            Box::new(|| group_migration(&design, start.clone(), &objectives, 6).unwrap()),
        ),
        (
            "closeness clustering",
            Box::new(|| cluster_partition(&design, start.clone(), &objectives, 4).unwrap()),
        ),
    ];

    for (name, run) in algos {
        let t0 = Instant::now();
        let r = run();
        let dt = t0.elapsed();
        r.partition.validate(&design)?;
        println!(
            "{:<22} {:>10.3} {:>12} {:>12.1} {:>14.0}",
            name,
            r.cost,
            r.evaluations,
            dt.as_secs_f64() * 1e3,
            r.evaluations as f64 / dt.as_secs_f64().max(1e-9)
        );
    }
    Ok(())
}
