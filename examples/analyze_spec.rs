//! Lint the specification corpus before estimating anything.
//!
//! For each corpus spec this driver builds the annotated design, runs
//! the proc+ASIC allocation with the all-software starting partition —
//! the same front half as every estimation example — and then runs the
//! `slif-analyze` lint engine over it, with spec spans attached so
//! findings point back into the source text.
//!
//! Run with: `cargo run --release --example analyze_spec`
//!
//! Pass `--deny-warnings` (the CI mode `scripts/verify.sh` uses) to
//! promote every warning to a denial and exit nonzero on any finding:
//! the shipped corpus must lint clean.

use slif::analyze::{analyze_with_sources, AnalysisConfig, LintId, SourceMap};
use slif::frontend::{all_software_partition, allocate_proc_asic, build_design};
use slif::speclang::corpus;
use slif::techlib::TechnologyLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let deny_warnings = std::env::args().any(|a| a == "--deny-warnings");
    let config = AnalysisConfig::new().with_deny_warnings(deny_warnings);

    println!("registered lints:");
    for lint in LintId::ALL {
        println!(
            "  {:26} {:5}  {}",
            lint.to_string(),
            lint.default_level().to_string(),
            lint.summary()
        );
    }

    let mut denials = 0usize;
    for entry in corpus::all() {
        let rs = entry.load()?;
        let sources = SourceMap::from_spec(rs.spec());
        let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
        let arch = allocate_proc_asic(&mut design);
        let partition = all_software_partition(&design, arch);

        let report = analyze_with_sources(&design, Some(&partition), &config, &sources);
        println!("\n{:8} {}", entry.name, report);
        denials += report.deny_count();
    }

    if denials > 0 {
        eprintln!("\n{denials} denial(s); failing");
        std::process::exit(1);
    }
    println!("\ncorpus lints clean (deny-warnings: {deny_warnings})");
    Ok(())
}
