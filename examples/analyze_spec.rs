//! Lint the specification corpus before estimating anything.
//!
//! For each corpus spec this driver builds the annotated design, runs
//! the proc+ASIC allocation with the all-software starting partition —
//! the same front half as every estimation example — and then runs the
//! `slif-analyze` lint engine over it with the flow-sensitive passes
//! (A006–A009) enabled and spec spans attached, so findings point back
//! into the source text and in-spec `@allow` suppressions apply.
//!
//! Run with: `cargo run --release --example analyze_spec`
//!
//! Pass `--deny-warnings` (the CI mode `scripts/verify.sh` uses) to
//! promote every warning to a denial and exit nonzero on any finding:
//! the shipped corpus must lint clean.
//!
//! Pass `--format json` to emit one machine-readable report instead of
//! the text rendering. The schema is stable: a top-level `specs` array
//! with one object per corpus entry carrying `name`, a `findings` array
//! (each with `id`, `level`, `span`, `message`), and the `suppressed`
//! count, plus a top-level `denials` total.

use slif::analyze::{analyze_compiled_with_flow, AnalysisConfig, AnalysisReport, LintId, SourceMap};
use slif::core::CompiledDesign;
use slif::frontend::{all_software_partition, allocate_proc_asic, build_design};
use slif::speclang::{corpus, FlowProgram};
use slif::techlib::TechnologyLibrary;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn report_json(name: &str, report: &AnalysisReport) -> String {
    let mut findings = String::new();
    for (i, f) in report.findings().iter().enumerate() {
        let span = match f.span {
            Some(s) => format!("{{\"line\": {}, \"col\": {}}}", s.line, s.col),
            None => "null".to_owned(),
        };
        if i > 0 {
            findings.push_str(", ");
        }
        findings.push_str(&format!(
            "{{\"id\": \"{}\", \"level\": \"{}\", \"span\": {span}, \"message\": \"{}\"}}",
            f.lint.code(),
            f.level,
            json_escape(&f.message)
        ));
    }
    format!(
        "    {{\"name\": \"{}\", \"findings\": [{findings}], \"suppressed\": {}}}",
        json_escape(name),
        report.suppressed()
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let deny_warnings = std::env::args().any(|a| a == "--deny-warnings");
    let args: Vec<String> = std::env::args().collect();
    let json = args
        .windows(2)
        .any(|w| w[0] == "--format" && w[1] == "json");
    let config = AnalysisConfig::new().with_deny_warnings(deny_warnings);

    if !json {
        println!("registered lints:");
        for lint in LintId::ALL {
            println!(
                "  {:26} {:5}  {}",
                lint.to_string(),
                lint.default_level().to_string(),
                lint.summary()
            );
        }
    }

    let mut denials = 0usize;
    let mut spec_reports = Vec::new();
    for entry in corpus::all() {
        let rs = entry.load()?;
        let sources = SourceMap::from_spec(rs.spec());
        let flow = FlowProgram::from_spec(rs.spec());
        let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
        let arch = allocate_proc_asic(&mut design);
        let partition = all_software_partition(&design, arch);
        let cd = CompiledDesign::compile(&design);

        let report =
            analyze_compiled_with_flow(&cd, Some(&partition), &config, &flow, Some(&sources));
        if json {
            spec_reports.push(report_json(entry.name, &report));
        } else {
            println!("\n{:8} {}", entry.name, report);
        }
        denials += report.deny_count();
    }

    if json {
        println!(
            "{{\n  \"deny_warnings\": {deny_warnings},\n  \"denials\": {denials},\n  \
             \"specs\": [\n{}\n  ]\n}}",
            spec_reports.join(",\n")
        );
    }
    if denials > 0 {
        eprintln!("\n{denials} denial(s); failing");
        std::process::exit(1);
    }
    if !json {
        println!("\ncorpus lints clean (deny-warnings: {deny_warnings})");
    }
    Ok(())
}
