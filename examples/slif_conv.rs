//! Convert designs between the `.slif` text and `.slifb` binary
//! interchange encodings — the command-line face of `slif-formats`.
//!
//! Two modes:
//!
//! * `cargo run --release --example slif_conv -- <input> <output>`
//!   reads `<input>` (encoding auto-detected from its first bytes),
//!   re-encodes it, and writes `<output>` — `.slifb` suffix selects
//!   binary, anything else selects text. Pass `--lenient` to salvage
//!   around damaged records instead of refusing; the salvage is still
//!   audited, and deny-level findings fail the run.
//!
//! * `cargo run --release --example slif_conv` (no files; the CI mode
//!   `scripts/verify.sh` uses) drives every corpus spec through the
//!   full text → binary → text chain and requires the final text to be
//!   byte-identical to the first — the converter proves on every
//!   verify run that neither encoding drops a bit.
//!
//! Diagnostics go to stderr; the process exits nonzero on any
//! deny-level finding or round-trip mismatch, so it can gate CI.

use slif::formats::wirefmt::{
    detect_encoding, read_bytes, write_bytes, Encoding, FormatLimits, ReadOutcome, Strictness,
};
use slif::frontend::{all_software_partition, allocate_proc_asic, build_design};
use slif::speclang::corpus;
use slif::techlib::TechnologyLibrary;

/// Read one byte buffer, reporting every diagnostic to stderr, and
/// count the deny-level ones toward the exit status.
fn audited_read(
    label: &str,
    bytes: &[u8],
    strictness: Strictness,
    limits: &FormatLimits,
    denials: &mut usize,
) -> Result<ReadOutcome, Box<dyn std::error::Error>> {
    let out = read_bytes(bytes, strictness, limits)
        .map_err(|e| format!("{label}: refused: {e}"))?;
    for diag in &out.diagnostics {
        eprintln!("{label}: {diag}");
    }
    if out.has_denials() {
        *denials += 1;
    }
    Ok(out)
}

/// File mode: convert `input` to `output`, choosing the output encoding
/// from the destination's suffix.
fn convert_file(
    input: &str,
    output: &str,
    strictness: Strictness,
) -> Result<(), Box<dyn std::error::Error>> {
    let limits = FormatLimits::default();
    let bytes = std::fs::read(input)?;
    let from = detect_encoding(&bytes)
        .ok_or_else(|| format!("{input}: not a SLIF interchange file (unknown magic)"))?;
    let to = if output.ends_with(".slifb") {
        Encoding::Binary
    } else {
        Encoding::Text
    };
    let mut denials = 0usize;
    let out = audited_read(input, &bytes, strictness, &limits, &mut denials)?;
    let rendered = write_bytes(&out.design, out.partition.as_ref(), to)?;
    std::fs::write(output, &rendered)?;
    println!(
        "{input} ({from}, {} bytes{}) -> {output} ({to}, {} bytes)",
        bytes.len(),
        if out.verified { ", verified" } else { ", UNVERIFIED" },
        rendered.len()
    );
    if denials > 0 {
        eprintln!("{denials} deny-level finding(s); failing");
        std::process::exit(1);
    }
    Ok(())
}

/// Corpus smoke: every shipped spec survives text → binary → text with
/// the final text byte-identical to the first.
fn corpus_smoke() -> Result<(), Box<dyn std::error::Error>> {
    let limits = FormatLimits::default();
    let mut denials = 0usize;
    let mut mismatches = 0usize;
    for entry in corpus::all() {
        let rs = entry.load()?;
        let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
        let arch = allocate_proc_asic(&mut design);
        let partition = all_software_partition(&design, arch);

        let text = write_bytes(&design, Some(&partition), Encoding::Text)?;
        let from_text = audited_read(entry.name, &text, Strictness::Strict, &limits, &mut denials)?;
        let binary = write_bytes(
            &from_text.design,
            from_text.partition.as_ref(),
            Encoding::Binary,
        )?;
        let from_binary =
            audited_read(entry.name, &binary, Strictness::Strict, &limits, &mut denials)?;
        let text_again = write_bytes(
            &from_binary.design,
            from_binary.partition.as_ref(),
            Encoding::Text,
        )?;
        let stable = text_again == text;
        if !stable {
            mismatches += 1;
            eprintln!("{}: text -> binary -> text changed the bytes", entry.name);
        }
        println!(
            "{:10} text {:6} B -> binary {:6} B -> text {:6} B  {}",
            entry.name,
            text.len(),
            binary.len(),
            text_again.len(),
            if stable && from_binary.verified {
                "byte-stable, verified"
            } else {
                "BROKEN"
            }
        );
    }
    if denials > 0 || mismatches > 0 {
        eprintln!("{denials} denial(s), {mismatches} mismatch(es); failing");
        std::process::exit(1);
    }
    println!("\ncorpus converts clean in both directions");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut files = Vec::new();
    let mut strictness = Strictness::Strict;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--lenient" => strictness = Strictness::Lenient,
            "--strict" => strictness = Strictness::Strict,
            _ => files.push(arg),
        }
    }
    match files.as_slice() {
        [] => corpus_smoke(),
        [input, output] => convert_file(input, output, strictness),
        _ => {
            eprintln!("usage: slif_conv [--lenient] [<input> <output>]");
            std::process::exit(2);
        }
    }
}
