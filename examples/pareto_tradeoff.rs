//! Multi-objective exploration: the performance/hardware trade-off curve.
//!
//! SpecSyn's designers examined many candidate designs to see what
//! performance each extra gate buys. This example sweeps the fuzzy
//! controller's partition space and prints the Pareto front over
//! (worst process period, ASIC gates, pins).
//!
//! Run with: `cargo run --release --example pareto_tradeoff`

use slif::explore::pareto_sweep;
use slif::frontend::{all_software_partition, allocate_proc_asic, build_design};
use slif::speclang::corpus;
use slif::techlib::TechnologyLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rs = corpus::by_name("fuzzy").unwrap().load()?;
    let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
    let arch = allocate_proc_asic(&mut design);
    let start = all_software_partition(&design, arch);

    let front = pareto_sweep(&design, start, 5000, 2026)?;
    println!(
        "fuzzy controller: {} non-dominated designs from 5000 candidate moves\n",
        front.len()
    );
    println!(
        "{:>14} {:>12} {:>6}   mapping sketch",
        "period (ns)", "ASIC gates", "pins"
    );
    for point in &front {
        let on_asic: Vec<&str> = design
            .graph()
            .node_ids()
            .filter(|&n| {
                point.partition.node_component(n) == Some(slif::core::PmRef::Processor(arch.asic))
                    && design.graph().node(n).kind().is_behavior()
            })
            .map(|n| design.graph().node(n).name())
            .collect();
        println!(
            "{:>14.0} {:>12} {:>6}   asic: [{}]",
            point.exec_time,
            point.hw_gates,
            point.pins,
            on_asic.join(", ")
        );
    }
    println!("\nEach row trades gates (and pins) for period; no row is beaten");
    println!("on all three metrics by any other examined design.");
    Ok(())
}
