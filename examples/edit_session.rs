//! Incremental edit sessions: slice-based recompute from parser to wire.
//!
//! SLIF's pitch is that specification-level estimation is cheap enough
//! to be interactive. An [`EditSession`] takes that literally: it holds
//! one evolving specification plus every derived pipeline product, and
//! `apply_edit` recomputes only the slice an edit touched — dirty-region
//! reparse, in-place design patch, epoch-stamped estimator memos, and
//! per-pass lint slicing. This example walks the three recompute tiers
//! locally, then drives the same session protocol across the wire
//! (`POST /sessions`, `POST /sessions/{id}/edit`, `GET /sessions/{id}`).
//!
//! Run with: `cargo run --release --example edit_session`

use slif::serve::http::read_response;
use slif::serve::server::{Server, ServerConfig};
use slif::session::{EditDelta, EditSession, RecomputeTier, SessionConfig};
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const SPEC: &str = concat!(
    "system Counter;\n",
    "var total : int<16>;\n",
    "var step : int<16>;\n",
    "process Tick {\n  step = step + 1;\n  wait 4;\n}\n",
    "process Sum {\n  total = total + step;\n  wait 8;\n}\n",
);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Local: the three recompute tiers ----------------------------
    let (mut session, open) = EditSession::open(SPEC, SessionConfig::default());
    assert!(open.clean, "the demo spec must open cleanly");
    assert_eq!(open.tier, RecomputeTier::Recompiled, "an open is a cold build");
    println!("open:       revision 0, {} diagnostics", open.diagnostics.len());

    // A body tweak keeps the topology: the design is patched in place
    // and only memos behind the touched node recompute.
    let at = session.source().find("wait 4").expect("fixture text");
    let patched = session.apply_edit(&EditDelta::new(at, at + 6, "wait 6"))?;
    assert!(patched.clean);
    assert_eq!(patched.tier, RecomputeTier::Patched, "body edits take the patch tier");
    println!("body edit:  tier patched, {} estimator nodes dirty", patched.dirty_nodes);

    // A new process changes the access graph: the session rebuilds cold
    // (still through the behavior-level build cache).
    let end = session.source().len();
    let grown = session.apply_edit(&EditDelta::new(
        end,
        end,
        "process Audit {\n  total = 0;\n  wait 16;\n}\n",
    ))?;
    assert!(grown.clean);
    assert_eq!(grown.tier, RecomputeTier::Recompiled, "topology changes rebuild");
    println!("new proc:   tier recompiled");

    // A breaking edit defers: diagnostics now, stale-but-readable
    // reports from the last clean revision until a later edit fixes it.
    let at = session.source().find("wait 8;").expect("fixture text");
    let broken = session.apply_edit(&EditDelta::new(at, at + 7, "wait ?;"))?;
    assert!(!broken.clean);
    assert_eq!(broken.tier, RecomputeTier::Deferred);
    assert!(broken.estimate.is_some(), "stale reports stay readable");
    let at = session.source().find("wait ?;").expect("fixture text");
    let fixed = session.apply_edit(&EditDelta::new(at, at + 7, "wait 8;"))?;
    assert!(fixed.clean, "fixing the text recovers the session");
    println!("break+fix:  deferred then {} diagnostics", fixed.diagnostics.len());

    // ---- The same session, across the wire ---------------------------
    let server = Server::bind(
        ServerConfig::new()
            .with_conn_workers(2)
            .with_io_timeouts(Duration::from_secs(2), Duration::from_secs(2)),
    )?;
    let addr = server.addr();

    let (status, body) = roundtrip(
        addr,
        format!(
            "POST /sessions HTTP/1.1\r\ncontent-length: {}\r\n\r\n{SPEC}",
            SPEC.len()
        )
        .as_bytes(),
    );
    assert_eq!(status, 201, "open: {body}");
    assert!(body.contains("\"tier\":\"recompiled\""), "open is cold: {body}");
    let id = body
        .split("\"session\":")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .expect("response carries the session id");
    println!("wire open:  session {id}");

    let at = SPEC.find("wait 4").expect("fixture text");
    let (status, body) = roundtrip(
        addr,
        format!(
            "POST /sessions/{id}/edit HTTP/1.1\r\nx-slif-edit-start: {at}\r\nx-slif-edit-end: {}\r\ncontent-length: 6\r\n\r\nwait 7",
            at + 6
        )
        .as_bytes(),
    );
    assert_eq!(status, 200, "edit: {body}");
    assert!(body.contains("\"tier\":\"patched\""), "body edit patches: {body}");
    println!("wire edit:  {}", body.trim_end());

    let (status, body) = roundtrip(
        addr,
        format!("GET /sessions/{id} HTTP/1.1\r\n\r\n").as_bytes(),
    );
    assert_eq!(status, 200, "status: {body}");
    assert!(body.contains("revision 1, clean"), "status reports clean: {body}");
    assert!(body.contains("exec time"), "status carries the estimate report: {body}");
    let summary = body.lines().next().unwrap_or_default();
    println!("wire get:   {summary}");

    server.shutdown();
    println!("edit-session smoke passed");
    Ok(())
}

fn roundtrip(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect to in-process server");
    s.set_read_timeout(Some(Duration::from_secs(5))).expect("socket option");
    s.write_all(raw).expect("write request");
    let (status, _, body) = read_response(&mut s).expect("well-formed response");
    (status, String::from_utf8_lossy(&body).into_owned())
}
