//! The granularity knob: behaviors vs basic blocks as SLIF nodes.
//!
//! "Finer granularity can be obtained by treating basic blocks as
//! procedures" (Section 2.2). The same fuzzy controller is built both
//! ways; at block granularity a partitioner can move just a procedure's
//! hot loop to the ASIC instead of the whole procedure.
//!
//! Run with: `cargo run --release --example block_granularity`

use slif::explore::{greedy_improve, Objectives};
use slif::frontend::{all_software_partition, allocate_proc_asic, build_design_at, Granularity};
use slif::speclang::corpus;
use slif::techlib::TechnologyLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rs = corpus::by_name("fuzzy").unwrap().load()?;
    let lib = TechnologyLibrary::proc_asic();

    println!(
        "{:<12} {:>7} {:>9} | {:>13} {:>13} {:>12}",
        "granularity", "nodes", "channels", "period sw", "period best", "evaluations"
    );
    for (label, granularity) in [
        ("behavior", Granularity::Behavior),
        ("basic-block", Granularity::BasicBlock),
    ] {
        let mut design = build_design_at(&rs, &lib, granularity);
        let arch = allocate_proc_asic(&mut design);
        let start = all_software_partition(&design, arch);
        let main = design.graph().node_by_name("FuzzyMain").unwrap();
        let t_sw = slif::estimate::ExecTimeEstimator::new(&design, &start).exec_time(main)?;
        // Push hard on the period: a deadline software alone cannot meet.
        let objectives = Objectives::new().try_with_deadline(main, t_sw / 4.0)?;
        let r = greedy_improve(&design, start, &objectives, 25)?;
        let t_best =
            slif::estimate::ExecTimeEstimator::new(&design, &r.partition).exec_time(main)?;
        println!(
            "{:<12} {:>7} {:>9} | {:>10.0} ns {:>10.0} ns {:>12}",
            label,
            design.graph().node_count(),
            design.graph().channel_count(),
            t_sw,
            t_best,
            r.evaluations
        );
    }
    println!("\nBlock granularity multiplies the search space — and lets the");
    println!("partitioner offload a single hot loop instead of a whole procedure.");
    Ok(())
}
