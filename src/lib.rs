//! # slif — the Specification-Level Intermediate Format for system design
//!
//! A complete Rust implementation of **SLIF** (Frank Vahid, "SLIF: A
//! specification-level intermediate format for system design", DATE 1995
//! / UCR TR CS-94-06) and of the SpecSyn-style system-design flow built
//! around it.
//!
//! SLIF represents a functional specification at *system-level*
//! granularity — processes, procedures, variables and the accesses
//! between them — together with system components (processors, memories,
//! buses) and preprocessed annotations that make estimation of execution
//! time, bitrate, size and I/O a matter of lookups and sums. That is what
//! lets partitioning algorithms examine thousands of candidate designs
//! interactively.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`core`] | the SLIF data model: access graph, components, partitions |
//! | [`speclang`] | the behavioural specification language + benchmark corpus |
//! | [`cdfg`] | control/dataflow graphs and scheduling (pre-synthesis substrate) |
//! | [`techlib`] | technology models; pseudo-compiler and pseudo-synthesizer |
//! | [`frontend`] | spec → annotated SLIF construction |
//! | [`estimate`] | the paper's Equations 1–6 (+ extensions, incremental) |
//! | [`analyze`] | specification-level lints: race, dead-code, bitwidth, annotation |
//! | [`explore`] | partitioning algorithms and transformations |
//! | [`formats`] | ADD baseline + the Section 5 format-size comparison |
//! | [`sim`] | functional simulator (the profiler behind `accfreq`) |
//! | [`runtime`] | fault-isolated concurrent job service over the pipeline |
//! | [`serve`] | wire-facing HTTP front door: tenancy, overload shedding, loadgen |
//!
//! # Examples
//!
//! The full flow on the paper's running example:
//!
//! ```
//! use slif::estimate::DesignReport;
//! use slif::frontend::{all_software_partition, allocate_proc_asic, build_design};
//! use slif::speclang::corpus;
//! use slif::techlib::TechnologyLibrary;
//!
//! // 1. Read the functional specification into SLIF (T-slif).
//! let entry = corpus::by_name("fuzzy").unwrap();
//! let rs = entry.load()?;
//! let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
//! assert_eq!(design.graph().node_count(), 35);  // Figure 4's "BV"
//! assert_eq!(design.graph().channel_count(), 56); // Figure 4's "C"
//!
//! // 2. Allocate the processor–ASIC architecture and map everything to
//! //    software.
//! let arch = allocate_proc_asic(&mut design);
//! let partition = all_software_partition(&design, arch);
//!
//! // 3. Estimate size, pins, bitrate, performance (T-est).
//! let report = DesignReport::compute(&design, &partition)?;
//! assert!(!report.processes.is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use slif_analyze as analyze;
pub use slif_cdfg as cdfg;
pub use slif_core as core;
pub use slif_estimate as estimate;
pub use slif_explore as explore;
pub use slif_formats as formats;
pub use slif_frontend as frontend;
pub use slif_runtime as runtime;
pub use slif_serve as serve;
pub use slif_session as session;
pub use slif_sim as sim;
pub use slif_speclang as speclang;
pub use slif_store as store;
pub use slif_techlib as techlib;
