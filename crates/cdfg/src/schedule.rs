//! Operation scheduling within basic blocks.
//!
//! The paper obtains a behavior's ASIC `ict` "by synthesizing the behavior
//! to a structure", a step whose core is scheduling; the channel
//! concurrency tags likewise "create the channel tags from that schedule".
//! This module provides the classic trio — ASAP, ALAP, and
//! resource-constrained list scheduling — over each block's dataflow
//! graph. `slif-techlib` drives it with per-operation delays from a
//! technology model and turns the resulting latencies into ict weights
//! and functional-unit usage into area estimates.

use crate::ir::{BlockId, Cdfg, OpId, OpKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Functional-unit classes used for resource constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Add/sub/compare/logic units.
    Alu,
    /// Multipliers.
    Mul,
    /// Dividers (div/rem).
    Div,
    /// Memory/register-file ports (loads and stores).
    Mem,
    /// Everything else (control, calls, I/O) — not resource-limited.
    Other,
}

/// Classifies an operation into a functional-unit class.
pub fn fu_class(kind: &OpKind) -> FuClass {
    use crate::ir::AluOp;
    match kind {
        OpKind::Binary(AluOp::Mul) => FuClass::Mul,
        OpKind::Binary(AluOp::Div) | OpKind::Binary(AluOp::Rem) => FuClass::Div,
        OpKind::Binary(_) | OpKind::Unary(_) => FuClass::Alu,
        OpKind::ReadLocal(_)
        | OpKind::WriteLocal(_)
        | OpKind::ReadLocalArray(_)
        | OpKind::WriteLocalArray(_)
        | OpKind::ReadGlobal(_)
        | OpKind::WriteGlobal(_)
        | OpKind::ReadGlobalArray(_)
        | OpKind::WriteGlobalArray(_) => FuClass::Mem,
        _ => FuClass::Other,
    }
}

/// How many units of each class the schedule may use per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceSet {
    /// Available ALUs.
    pub alus: u32,
    /// Available multipliers.
    pub muls: u32,
    /// Available dividers.
    pub divs: u32,
    /// Available memory ports.
    pub mem_ports: u32,
}

impl ResourceSet {
    /// A small datapath: 2 ALUs, 1 multiplier, 1 divider, 1 memory port.
    pub fn small() -> Self {
        Self {
            alus: 2,
            muls: 1,
            divs: 1,
            mem_ports: 1,
        }
    }

    /// A generous datapath: 4 ALUs, 2 multipliers, 1 divider, 2 ports.
    pub fn large() -> Self {
        Self {
            alus: 4,
            muls: 2,
            divs: 1,
            mem_ports: 2,
        }
    }

    fn limit(&self, class: FuClass) -> u32 {
        match class {
            FuClass::Alu => self.alus,
            FuClass::Mul => self.muls,
            FuClass::Div => self.divs,
            FuClass::Mem => self.mem_ports,
            FuClass::Other => u32::MAX,
        }
    }
}

impl Default for ResourceSet {
    fn default() -> Self {
        Self::small()
    }
}

/// The result of scheduling one basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSchedule {
    /// Start cycle of each scheduled op (block-relative).
    pub start: HashMap<OpId, u64>,
    /// Total block latency in cycles.
    pub latency: u64,
    /// Peak number of simultaneously busy units per class.
    pub peak_usage: HashMap<FuClass, u32>,
}

impl BlockSchedule {
    /// Ops that start at the same cycle — used to derive concurrency tags.
    pub fn concurrent_groups(&self) -> Vec<Vec<OpId>> {
        let mut by_start: HashMap<u64, Vec<OpId>> = HashMap::new();
        for (&op, &s) in &self.start {
            by_start.entry(s).or_default().push(op);
        }
        let mut groups: Vec<Vec<OpId>> = by_start.into_values().filter(|g| g.len() > 1).collect();
        for g in &mut groups {
            g.sort();
        }
        groups.sort();
        groups
    }
}

/// ASAP schedule of `block`: every op starts as soon as its in-block
/// dataflow operands finish. Returns per-op start cycles and the critical
/// path latency. `delay_of` gives each op's latency in cycles (0-delay
/// ops are allowed and chain within a cycle).
pub fn asap(g: &Cdfg, block: BlockId, delay_of: &dyn Fn(&OpKind) -> u64) -> BlockSchedule {
    let ops = &g.block(block).ops;
    let mut start: HashMap<OpId, u64> = HashMap::with_capacity(ops.len());
    let mut finish: HashMap<OpId, u64> = HashMap::with_capacity(ops.len());
    let mut latency = 0;
    for &op in ops {
        let node = g.op(op);
        let ready = node
            .inputs
            .iter()
            .filter_map(|i| finish.get(i).copied())
            .max()
            .unwrap_or(0);
        let d = delay_of(&node.kind);
        start.insert(op, ready);
        finish.insert(op, ready + d);
        latency = latency.max(ready + d);
    }
    let peak_usage = peak_usage(g, &start, &finish);
    BlockSchedule {
        start,
        latency,
        peak_usage,
    }
}

/// ALAP start times for `block` against a target latency (usually the
/// ASAP latency). Returns per-op latest start cycles.
pub fn alap(
    g: &Cdfg,
    block: BlockId,
    delay_of: &dyn Fn(&OpKind) -> u64,
    target_latency: u64,
) -> HashMap<OpId, u64> {
    let ops = &g.block(block).ops;
    // Build successor lists restricted to this block.
    let mut latest_finish: HashMap<OpId, u64> = HashMap::with_capacity(ops.len());
    for &op in ops.iter().rev() {
        let node = g.op(op);
        let d = delay_of(&node.kind);
        // An op must finish before the earliest latest-start of its users.
        let bound = ops
            .iter()
            .filter(|&&user| g.op(user).inputs.contains(&op))
            .filter_map(|&user| {
                latest_finish
                    .get(&user)
                    .map(|&f| f - delay_of(&g.op(user).kind))
            })
            .min()
            .unwrap_or(target_latency);
        latest_finish.insert(op, bound);
        let _ = d;
    }
    ops.iter()
        .map(|&op| {
            let d = delay_of(&g.op(op).kind);
            let f = latest_finish[&op];
            (op, f.saturating_sub(d))
        })
        .collect()
}

/// Resource-constrained list scheduling of `block`.
///
/// Priority is ALAP slack (critical ops first). Each cycle, ready ops are
/// issued while units of their class remain; multi-cycle ops hold their
/// unit until completion.
pub fn list_schedule(
    g: &Cdfg,
    block: BlockId,
    delay_of: &dyn Fn(&OpKind) -> u64,
    resources: ResourceSet,
) -> BlockSchedule {
    let ops = &g.block(block).ops;
    if ops.is_empty() {
        return BlockSchedule {
            start: HashMap::new(),
            latency: 0,
            peak_usage: HashMap::new(),
        };
    }
    let unconstrained = asap(g, block, delay_of);
    let alap_start = alap(g, block, delay_of, unconstrained.latency);

    let mut start: HashMap<OpId, u64> = HashMap::with_capacity(ops.len());
    let mut finish: HashMap<OpId, u64> = HashMap::with_capacity(ops.len());
    let mut remaining: Vec<OpId> = ops.clone();
    // Critical ops (small ALAP start) first.
    remaining.sort_by_key(|op| alap_start.get(op).copied().unwrap_or(0));

    let mut cycle: u64 = 0;
    // Busy units per class, as (class, free_at) pairs.
    let mut busy: Vec<(FuClass, u64)> = Vec::new();
    let mut guard = 0usize;
    while !remaining.is_empty() {
        busy.retain(|&(_, free_at)| free_at > cycle);
        let mut issued_any = false;
        let mut i = 0;
        while i < remaining.len() {
            let op = remaining[i];
            let node = g.op(op);
            // Ready: all in-block inputs finished by now.
            let ready = node
                .inputs
                .iter()
                .all(|inp| !ops.contains(inp) || finish.get(inp).is_some_and(|&f| f <= cycle));
            if ready {
                let class = fu_class(&node.kind);
                let in_use = busy.iter().filter(|(c, _)| *c == class).count() as u32;
                if in_use < resources.limit(class) {
                    let d = delay_of(&node.kind);
                    start.insert(op, cycle);
                    // Zero-delay ops (e.g. channel accesses, whose time is
                    // estimated separately) finish instantly and occupy no
                    // unit; real ops hold their unit until completion.
                    finish.insert(op, cycle + d);
                    if d > 0 {
                        busy.push((class, cycle + d));
                    }
                    remaining.remove(i);
                    issued_any = true;
                    continue;
                }
            }
            i += 1;
        }
        if !issued_any {
            cycle += 1;
        }
        guard += 1;
        assert!(
            guard < 1_000_000,
            "list scheduling failed to converge (cyclic in-block dataflow?)"
        );
    }
    let latency = finish.values().copied().max().unwrap_or(0);
    let peak_usage = peak_usage(g, &start, &finish);
    BlockSchedule {
        start,
        latency,
        peak_usage,
    }
}

fn peak_usage(
    g: &Cdfg,
    start: &HashMap<OpId, u64>,
    finish: &HashMap<OpId, u64>,
) -> HashMap<FuClass, u32> {
    let mut peak: HashMap<FuClass, u32> = HashMap::new();
    // Sample usage at each distinct start cycle.
    for (&probe_op, &t) in start {
        let _ = probe_op;
        let mut usage: HashMap<FuClass, u32> = HashMap::new();
        for (&op, &s) in start {
            let f = finish[&op];
            if s <= t && t < f.max(s + 1) {
                *usage.entry(fu_class(&g.op(op).kind)).or_insert(0) += 1;
            }
        }
        for (class, n) in usage {
            let entry = peak.entry(class).or_insert(0);
            *entry = (*entry).max(n);
        }
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::AluOp;

    /// Unit delay for every op.
    fn unit(_k: &OpKind) -> u64 {
        1
    }

    /// A block computing (a+b) * (c+d): two independent adds then a mul.
    fn adder_tree() -> (Cdfg, BlockId) {
        let mut g = Cdfg::new("t");
        let b = g.entry();
        let a = g.add_op(b, OpKind::ReadLocal("a".into()), vec![]);
        let bb = g.add_op(b, OpKind::ReadLocal("b".into()), vec![]);
        let c = g.add_op(b, OpKind::ReadLocal("c".into()), vec![]);
        let d = g.add_op(b, OpKind::ReadLocal("d".into()), vec![]);
        let s1 = g.add_op(b, OpKind::Binary(AluOp::Add), vec![a, bb]);
        let s2 = g.add_op(b, OpKind::Binary(AluOp::Add), vec![c, d]);
        let _m = g.add_op(b, OpKind::Binary(AluOp::Mul), vec![s1, s2]);
        (g, b)
    }

    #[test]
    fn asap_critical_path() {
        let (g, b) = adder_tree();
        let s = asap(&g, b, &unit);
        // reads at 0 (1 cycle), adds at 1, mul at 2 → latency 3.
        assert_eq!(s.latency, 3);
        assert_eq!(s.start[&g.block(b).ops[4]], 1);
        assert_eq!(s.start[&g.block(b).ops[6]], 2);
    }

    #[test]
    fn asap_peak_usage_sees_parallel_adds() {
        let (g, b) = adder_tree();
        let s = asap(&g, b, &unit);
        assert_eq!(s.peak_usage[&FuClass::Alu], 2);
        assert_eq!(s.peak_usage[&FuClass::Mem], 4);
    }

    #[test]
    fn alap_pushes_slack_late() {
        let (g, b) = adder_tree();
        let s = asap(&g, b, &unit);
        let alap_start = alap(&g, b, &unit, s.latency);
        // The multiplication is critical: ALAP start == ASAP start.
        let mul = g.block(b).ops[6];
        assert_eq!(alap_start[&mul], s.start[&mul]);
        // Reads have slack: they may start later than 0.
        let a = g.block(b).ops[0];
        assert!(alap_start[&a] >= s.start[&a]);
    }

    #[test]
    fn list_schedule_respects_resources() {
        let (g, b) = adder_tree();
        // Only one memory port: the four reads serialize.
        let tight = ResourceSet {
            alus: 1,
            muls: 1,
            divs: 1,
            mem_ports: 1,
        };
        let s = list_schedule(&g, b, &unit, tight);
        assert!(s.latency >= 6, "latency {} with 1 port", s.latency);
        assert!(s.peak_usage[&FuClass::Mem] <= 1);
        assert!(s.peak_usage[&FuClass::Alu] <= 1);
        // With generous resources we approach the ASAP latency.
        let loose = list_schedule(&g, b, &unit, ResourceSet::large());
        assert!(loose.latency <= s.latency);
    }

    #[test]
    fn list_schedule_never_beats_asap() {
        let (g, b) = adder_tree();
        let unconstrained = asap(&g, b, &unit);
        let constrained = list_schedule(&g, b, &unit, ResourceSet::small());
        assert!(constrained.latency >= unconstrained.latency);
    }

    #[test]
    fn empty_block_schedules_trivially() {
        let g = Cdfg::new("t");
        let s = list_schedule(&g, g.entry(), &unit, ResourceSet::small());
        assert_eq!(s.latency, 0);
        assert!(s.start.is_empty());
    }

    #[test]
    fn multi_cycle_ops_hold_units() {
        let mut g = Cdfg::new("t");
        let b = g.entry();
        let x = g.add_op(b, OpKind::ReadLocal("x".into()), vec![]);
        let y = g.add_op(b, OpKind::ReadLocal("y".into()), vec![]);
        let _m1 = g.add_op(b, OpKind::Binary(AluOp::Mul), vec![x, y]);
        let _m2 = g.add_op(b, OpKind::Binary(AluOp::Mul), vec![y, x]);
        let delays = |k: &OpKind| match k {
            OpKind::Binary(AluOp::Mul) => 4,
            _ => 1,
        };
        // One multiplier: the second mul waits for the first to release it.
        let s = list_schedule(
            &g,
            b,
            &delays,
            ResourceSet {
                alus: 1,
                muls: 1,
                divs: 1,
                mem_ports: 2,
            },
        );
        assert!(s.latency >= 9, "latency {}", s.latency);
    }

    #[test]
    fn concurrent_groups_from_schedule() {
        let (g, b) = adder_tree();
        let s = asap(&g, b, &unit);
        let groups = s.concurrent_groups();
        // The four reads share cycle 0; the two adds share cycle 1.
        assert!(groups.iter().any(|grp| grp.len() == 4));
        assert!(groups.iter().any(|grp| grp.len() == 2));
    }
}
