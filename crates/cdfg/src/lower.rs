//! Lowering: resolved specification AST → per-behavior CDFGs.
//!
//! Every expression operand becomes an operation node with dataflow
//! inputs; control flow becomes basic blocks. Block execution counts are
//! computed during lowering from loop bounds and branch probabilities
//! (`prob` defaults to 0.5, `iters` to 1) — the "branch probability file"
//! mechanism of the paper, realized as inline annotations.

use crate::ir::{AluOp, BlockId, Cdfg, ExecCount, OpId, OpKind};
use slif_speclang::ast::{BinOp, Expr, LValue, Stmt, UnOp};
use slif_speclang::{GlobalSymbol, LocalSymbol, ResolvedSpec, Symbol};

/// Default probability of a branch with no `prob` annotation.
pub const DEFAULT_BRANCH_PROB: f64 = 0.5;
/// Default average iteration count of a `while` with no `iters`.
pub const DEFAULT_WHILE_ITERS: f64 = 1.0;

/// Lowers every behavior of a resolved spec, in declaration order.
pub fn lower_spec(rs: &ResolvedSpec) -> Vec<Cdfg> {
    (0..rs.spec().behaviors.len())
        .map(|i| lower_behavior(rs, i))
        .collect()
}

/// Lowers one behavior to a CDFG.
///
/// # Panics
///
/// Panics if `behavior` is out of range. Malformed ASTs cannot occur:
/// resolution has already validated every name and call.
pub fn lower_behavior(rs: &ResolvedSpec, behavior: usize) -> Cdfg {
    let decl = &rs.spec().behaviors[behavior];
    let mut lower = Lower {
        rs,
        behavior,
        g: Cdfg::new(decl.name.clone()),
        current: BlockId(0),
        ctx: ExecCount::ONCE,
        loop_vars: Vec::new(),
    };
    lower.body(&decl.body);
    // Processes repeat forever; procedures and functions return. Either
    // way a Return terminator closes the final block.
    let cur = lower.current;
    lower.g.add_op(cur, OpKind::Return, vec![]);
    lower.g
}

struct Lower<'a> {
    rs: &'a ResolvedSpec,
    behavior: usize,
    g: Cdfg,
    current: BlockId,
    ctx: ExecCount,
    loop_vars: Vec<String>,
}

impl Lower<'_> {
    fn body(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Assign { lhs, value, .. } => {
                let v = self.expr(value);
                self.store(lhs, v);
            }
            Stmt::Call { callee, args, .. } => {
                let inputs: Vec<OpId> = args.iter().map(|a| self.expr(a)).collect();
                self.emit(OpKind::Call(callee.clone()), inputs);
            }
            Stmt::If {
                cond,
                prob,
                then_body,
                else_body,
                ..
            } => {
                let c = self.expr(cond);
                self.emit(OpKind::Branch, vec![c]);
                let p = prob.unwrap_or(DEFAULT_BRANCH_PROB);
                let before = self.current;
                let outer_ctx = self.ctx;

                let then_blk = self.g.add_block(scale_prob(outer_ctx, p));
                self.g.add_edge(before, then_blk);
                self.current = then_blk;
                self.ctx = scale_prob(outer_ctx, p);
                self.body(then_body);
                self.emit(OpKind::Jump, vec![]);
                let then_end = self.current;

                let else_end = if else_body.is_empty() {
                    None
                } else {
                    let else_blk = self.g.add_block(scale_prob(outer_ctx, 1.0 - p));
                    self.g.add_edge(before, else_blk);
                    self.current = else_blk;
                    self.ctx = scale_prob(outer_ctx, 1.0 - p);
                    self.body(else_body);
                    self.emit(OpKind::Jump, vec![]);
                    Some(self.current)
                };

                let join = self.g.add_block(outer_ctx);
                self.g.add_edge(then_end, join);
                match else_end {
                    Some(e) => self.g.add_edge(e, join),
                    None => self.g.add_edge(before, join),
                }
                self.current = join;
                self.ctx = outer_ctx;
            }
            Stmt::For {
                var, lo, hi, body, ..
            } => {
                // Bounds are compile-time constants (checked by resolution).
                let l = self.rs.eval_const(lo).expect("checked constant bound");
                let h = self.rs.eval_const(hi).expect("checked constant bound");
                let n = (h - l + 1).max(0) as u64;
                let outer_ctx = self.ctx;
                let body_ctx = scale_iters(outer_ctx, n);

                // Preheader: initialize the induction variable.
                let init = self.emit(OpKind::Const(l), vec![]);
                self.emit(OpKind::WriteLocal(var.clone()), vec![init]);
                self.emit(OpKind::Jump, vec![]);
                let before = self.current;
                let body_blk = self.g.add_block(body_ctx);
                self.g.add_edge(before, body_blk);
                self.current = body_blk;
                self.ctx = body_ctx;
                self.loop_vars.push(var.clone());
                self.body(body);
                // Loop bookkeeping: increment the induction variable and
                // test it against the bound (runs once per iteration).
                let iv = self.emit(OpKind::ReadLocal(var.clone()), vec![]);
                let one = self.emit(OpKind::Const(1), vec![]);
                let inc = self.emit(OpKind::Binary(AluOp::Add), vec![iv, one]);
                self.emit(OpKind::WriteLocal(var.clone()), vec![inc]);
                let bound = self.emit(OpKind::Const(h), vec![]);
                let cmp = self.emit(OpKind::Binary(AluOp::Cmp), vec![inc, bound]);
                self.emit(OpKind::Branch, vec![cmp]);
                self.loop_vars.pop();
                let body_end = self.current;
                // Back edge and loop exit.
                self.g.add_edge(body_end, body_blk);
                let exit = self.g.add_block(outer_ctx);
                self.g.add_edge(body_end, exit);
                self.current = exit;
                self.ctx = outer_ctx;
            }
            Stmt::While {
                cond, iters, body, ..
            } => {
                let avg_iters = iters.unwrap_or(DEFAULT_WHILE_ITERS);
                let outer_ctx = self.ctx;
                self.emit(OpKind::Jump, vec![]);
                let before = self.current;
                // Header block: the condition re-evaluates once more than
                // the body runs.
                let header_ctx = ExecCount {
                    avg: outer_ctx.avg * (avg_iters + 1.0),
                    min: outer_ctx.min,
                    max: outer_ctx.max * ((2.0 * avg_iters).ceil().max(1.0) as u64 + 1),
                };
                let header = self.g.add_block(header_ctx);
                self.g.add_edge(before, header);
                self.current = header;
                self.ctx = header_ctx;
                let c = self.expr(cond);
                self.emit(OpKind::Branch, vec![c]);

                let body_ctx = scale_while(outer_ctx, avg_iters);
                let body_blk = self.g.add_block(body_ctx);
                self.g.add_edge(header, body_blk);
                self.current = body_blk;
                self.ctx = body_ctx;
                self.body(body);
                self.emit(OpKind::Jump, vec![]);
                let body_end = self.current;
                self.g.add_edge(body_end, header);
                let exit = self.g.add_block(outer_ctx);
                self.g.add_edge(header, exit);
                self.current = exit;
                self.ctx = outer_ctx;
            }
            Stmt::Fork { body, .. } => {
                self.emit(OpKind::Fork, vec![]);
                self.body(body);
                self.emit(OpKind::Join, vec![]);
            }
            Stmt::Send { target, value, .. } => {
                let v = self.expr(value);
                self.emit(OpKind::SendMsg(target.clone()), vec![v]);
            }
            Stmt::Receive { lhs, .. } => {
                let r = self.emit(OpKind::ReceiveMsg, vec![]);
                self.store(lhs, r);
            }
            Stmt::Return { value, .. } => {
                let inputs = match value {
                    Some(v) => vec![self.expr(v)],
                    None => vec![],
                };
                self.emit(OpKind::Return, inputs);
            }
            Stmt::Wait { amount, .. } => {
                self.emit(OpKind::Wait(*amount), vec![]);
            }
        }
    }

    fn store(&mut self, lhs: &LValue, value: OpId) {
        match lhs {
            LValue::Name { name, .. } => {
                let kind = match self.classify(name) {
                    NameClass::Local => OpKind::WriteLocal(name.clone()),
                    NameClass::GlobalScalar => OpKind::WriteGlobal(name.clone()),
                    NameClass::Port => OpKind::WritePort(name.clone()),
                    NameClass::Const | NameClass::GlobalArray | NameClass::LocalArray => {
                        unreachable!("resolution rejects writes to {name}")
                    }
                };
                self.emit(kind, vec![value]);
            }
            LValue::Index { name, index, .. } => {
                let idx = self.expr(index);
                let kind = match self.classify(name) {
                    NameClass::LocalArray => OpKind::WriteLocalArray(name.clone()),
                    NameClass::GlobalArray => OpKind::WriteGlobalArray(name.clone()),
                    _ => unreachable!("resolution rejects indexed write to {name}"),
                };
                self.emit(kind, vec![idx, value]);
            }
        }
    }

    fn expr(&mut self, expr: &Expr) -> OpId {
        match expr {
            Expr::Int { value, .. } => self.emit(OpKind::Const(*value as i64), vec![]),
            Expr::Bool { value, .. } => self.emit(OpKind::Const(i64::from(*value)), vec![]),
            Expr::Name { name, .. } => {
                let kind = match self.classify(name) {
                    NameClass::Local => OpKind::ReadLocal(name.clone()),
                    NameClass::GlobalScalar => OpKind::ReadGlobal(name.clone()),
                    NameClass::Port => OpKind::ReadPort(name.clone()),
                    NameClass::Const => {
                        let v = match self.rs.global(name) {
                            Some(GlobalSymbol::Const(v)) => v,
                            _ => unreachable!("classify said const"),
                        };
                        OpKind::Const(v)
                    }
                    NameClass::GlobalArray | NameClass::LocalArray => {
                        unreachable!("resolution rejects bare array reads")
                    }
                };
                self.emit(kind, vec![])
            }
            Expr::Index { name, index, .. } => {
                let idx = self.expr(index);
                let kind = match self.classify(name) {
                    NameClass::LocalArray => OpKind::ReadLocalArray(name.clone()),
                    NameClass::GlobalArray => OpKind::ReadGlobalArray(name.clone()),
                    _ => unreachable!("resolution rejects indexed read of {name}"),
                };
                self.emit(kind, vec![idx])
            }
            Expr::Call { callee, args, .. } => {
                let inputs: Vec<OpId> = args.iter().map(|a| self.expr(a)).collect();
                let kind = match callee.as_str() {
                    "min" => OpKind::Binary(AluOp::Min),
                    "max" => OpKind::Binary(AluOp::Max),
                    "abs" => OpKind::Unary(AluOp::Abs),
                    _ => OpKind::Call(callee.clone()),
                };
                self.emit(kind, inputs)
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let l = self.expr(lhs);
                let r = self.expr(rhs);
                let alu = match op {
                    BinOp::Add => AluOp::Add,
                    BinOp::Sub => AluOp::Sub,
                    BinOp::Mul => AluOp::Mul,
                    BinOp::Div => AluOp::Div,
                    BinOp::Rem => AluOp::Rem,
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        AluOp::Cmp
                    }
                    BinOp::And | BinOp::Or => AluOp::Logic,
                };
                self.emit(OpKind::Binary(alu), vec![l, r])
            }
            Expr::Unary { op, operand, .. } => {
                let v = self.expr(operand);
                let alu = match op {
                    UnOp::Neg | UnOp::Not => AluOp::Not,
                };
                self.emit(OpKind::Unary(alu), vec![v])
            }
        }
    }

    fn emit(&mut self, kind: OpKind, inputs: Vec<OpId>) -> OpId {
        self.g.add_op(self.current, kind, inputs)
    }

    fn classify(&self, name: &str) -> NameClass {
        if self.loop_vars.iter().any(|v| v == name) {
            return NameClass::Local;
        }
        match self.rs.lookup(self.behavior, name) {
            Some(Symbol::Local(LocalSymbol::Param(_))) => NameClass::Local,
            Some(Symbol::Local(LocalSymbol::Local(i))) => {
                if self.rs.spec().behaviors[self.behavior].locals[i]
                    .ty
                    .is_array()
                {
                    NameClass::LocalArray
                } else {
                    NameClass::Local
                }
            }
            Some(Symbol::Global(GlobalSymbol::Var(i))) => {
                if self.rs.spec().vars[i].ty.is_array() {
                    NameClass::GlobalArray
                } else {
                    NameClass::GlobalScalar
                }
            }
            Some(Symbol::Global(GlobalSymbol::Port(_))) => NameClass::Port,
            Some(Symbol::Global(GlobalSymbol::Const(_))) => NameClass::Const,
            Some(Symbol::Global(GlobalSymbol::Behavior(_))) | None => {
                unreachable!("resolution leaves no unknown names ({name})")
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum NameClass {
    Local,
    LocalArray,
    GlobalScalar,
    GlobalArray,
    Port,
    Const,
}

fn scale_prob(ctx: ExecCount, p: f64) -> ExecCount {
    ExecCount {
        avg: ctx.avg * p,
        min: if p >= 1.0 { ctx.min } else { 0 },
        max: if p > 0.0 { ctx.max } else { 0 },
    }
}

fn scale_iters(ctx: ExecCount, n: u64) -> ExecCount {
    ExecCount {
        avg: ctx.avg * n as f64,
        min: ctx.min * n,
        max: ctx.max * n,
    }
}

/// `while` loops have data-dependent trip counts: the profile gives the
/// average; the minimum is zero and the maximum is modelled as twice the
/// average (rounded up), a deliberately loose envelope.
fn scale_while(ctx: ExecCount, iters: f64) -> ExecCount {
    ExecCount {
        avg: ctx.avg * iters,
        min: 0,
        max: ctx.max * (2.0 * iters).ceil().max(1.0) as u64,
    }
}

/// The per-access frequency of system accesses in a behavior's CDFG,
/// summed per accessed object: the raw material for SLIF channel
/// annotation. Returns `(object key, kind sample, avg, min, max)` tuples
/// keyed by the [`OpKind`] discriminant + name.
pub fn access_frequencies(g: &Cdfg) -> Vec<AccessSummary> {
    let mut out: Vec<AccessSummary> = Vec::new();
    for id in g.op_ids() {
        let op = g.op(id);
        if !op.kind.is_system_access() {
            continue;
        }
        let count = g.block(op.block).count;
        let (target, access) = match &op.kind {
            OpKind::ReadGlobal(n) | OpKind::ReadGlobalArray(n) => (n.clone(), Access::Read),
            OpKind::WriteGlobal(n) | OpKind::WriteGlobalArray(n) => (n.clone(), Access::Write),
            OpKind::ReadPort(n) => (n.clone(), Access::Read),
            OpKind::WritePort(n) => (n.clone(), Access::Write),
            OpKind::Call(n) => (n.clone(), Access::Call),
            OpKind::SendMsg(n) => (n.clone(), Access::Message),
            OpKind::ReceiveMsg => continue, // the sender's edge covers it
            _ => unreachable!("is_system_access covered all cases"),
        };
        match out.iter_mut().find(|s| s.target == target) {
            Some(s) => {
                s.avg += count.avg;
                s.min += count.min;
                s.max += count.max;
                // Calls dominate reads/writes for edge labelling.
                if access == Access::Call || access == Access::Message {
                    s.access = access;
                }
            }
            None => out.push(AccessSummary {
                target,
                access,
                avg: count.avg,
                min: count.min,
                max: count.max,
            }),
        }
    }
    out
}

/// How a behavior accesses one system-level object, summed over all the
/// behavior's operations.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessSummary {
    /// The accessed object's name (variable, port, or behavior).
    pub target: String,
    /// The dominant access kind.
    pub access: Access,
    /// Average accesses per behavior execution.
    pub avg: f64,
    /// Minimum accesses per behavior execution.
    pub min: u64,
    /// Maximum accesses per behavior execution.
    pub max: u64,
}

/// Access kinds from the frontend's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Subroutine call.
    Call,
    /// Message pass.
    Message,
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_speclang::parse_and_resolve;

    fn lower_one(src: &str, name: &str) -> Cdfg {
        let rs = parse_and_resolve(src).expect("spec loads");
        let idx = rs
            .spec()
            .behaviors
            .iter()
            .position(|b| b.name == name)
            .expect("behavior exists");
        lower_behavior(&rs, idx)
    }

    #[test]
    fn straight_line_lowering() {
        let g = lower_one("system T;\nvar x : int<8>;\nproc P() { x = x + 1; }", "P");
        // ReadGlobal, Const, Add, WriteGlobal, Return.
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.block_count(), 1);
        // Add has 2 inputs, Write has 1.
        assert_eq!(g.dataflow_edge_count(), 3);
    }

    #[test]
    fn if_creates_diamond() {
        let g = lower_one(
            "system T;\nvar x : int<8>;\nproc P() { if x > 0 prob 0.25 { x = 1; } else { x = 2; } }",
            "P",
        );
        // entry, then, else, join.
        assert_eq!(g.block_count(), 4);
        let then_blk = g.block(BlockId(1));
        let else_blk = g.block(BlockId(2));
        assert!((then_blk.count.avg - 0.25).abs() < 1e-12);
        assert!((else_blk.count.avg - 0.75).abs() < 1e-12);
        assert_eq!(then_blk.count.min, 0);
        assert_eq!(then_blk.count.max, 1);
    }

    #[test]
    fn if_without_else_short_circuits_to_join() {
        let g = lower_one(
            "system T;\nvar x : int<8>;\nproc P() { if x > 0 { x = 1; } }",
            "P",
        );
        // entry, then, join.
        assert_eq!(g.block_count(), 3);
        // Entry branches to both then and join.
        assert_eq!(g.block(g.entry()).succs.len(), 2);
    }

    #[test]
    fn for_loop_multiplies_counts() {
        let g = lower_one(
            "system T;\nvar a : int<8>[128];\nproc P() { for i in 0 .. 127 { a[i] = i; } }",
            "P",
        );
        let body = g.block(BlockId(1));
        assert_eq!(body.count.avg, 128.0);
        assert_eq!(body.count.min, 128);
        assert_eq!(body.count.max, 128);
    }

    #[test]
    fn nested_branch_in_loop_reproduces_figure3_frequency() {
        // The paper's EvaluateRule: a 0.5-probability access inside a
        // 128-iteration loop plus a 0.5-probability double access outside
        // gives accfreq 65 for mr1 (see Figure 3).
        let g = lower_one(
            "system T;\n\
             var in1val : int<8>;\n\
             var mr1 : int<8>[384];\n\
             var tmr1 : int<8>[128];\n\
             proc EvaluateRule(num : int<8>) {\n\
               var trunc : int<8>;\n\
               if num == 1 prob 0.5 {\n\
                 trunc = min(mr1[in1val], mr1[128 + in1val]);\n\
               }\n\
               for i in 0 .. 127 {\n\
                 if num == 1 prob 0.5 {\n\
                   tmr1[i] = min(trunc, mr1[256 + i]);\n\
                 }\n\
               }\n\
             }",
            "EvaluateRule",
        );
        let accs = access_frequencies(&g);
        let mr1 = accs.iter().find(|a| a.target == "mr1").unwrap();
        assert!((mr1.avg - 65.0).abs() < 1e-9, "accfreq {}", mr1.avg);
        assert_eq!(mr1.min, 0);
        assert_eq!(mr1.max, 130);
        let in1val = accs.iter().find(|a| a.target == "in1val").unwrap();
        assert!((in1val.avg - 1.0).abs() < 1e-9);
    }

    #[test]
    fn while_loop_scales_by_iters() {
        let g = lower_one(
            "system T;\nvar x : int<8>;\nproc P() { while x > 0 iters 10 { x = x - 1; } }",
            "P",
        );
        // entry → header → body, plus exit.
        let header = g.block(BlockId(1));
        assert_eq!(header.count.avg, 11.0, "condition runs iters+1 times");
        let body = g.block(BlockId(2));
        assert_eq!(body.count.avg, 10.0);
        assert_eq!(body.count.min, 0);
        assert_eq!(body.count.max, 20);
    }

    #[test]
    fn builtin_calls_become_alu_ops() {
        let g = lower_one(
            "system T;\nvar x : int<8>;\nproc P() { x = min(x, abs(x)); }",
            "P",
        );
        assert!(g
            .op_ids()
            .any(|i| g.op(i).kind == OpKind::Binary(AluOp::Min)));
        assert!(g
            .op_ids()
            .any(|i| g.op(i).kind == OpKind::Unary(AluOp::Abs)));
        // No Call nodes: builtins are not behaviors.
        assert!(!g.op_ids().any(|i| matches!(g.op(i).kind, OpKind::Call(_))));
    }

    #[test]
    fn fork_wraps_calls() {
        let g = lower_one(
            "system T;\nproc A() { }\nproc B() { }\nprocess M { fork { call A(); call B(); } }",
            "M",
        );
        let kinds: Vec<_> = g.op_ids().map(|i| g.op(i).kind.clone()).collect();
        let fork = kinds.iter().position(|k| *k == OpKind::Fork).unwrap();
        let join = kinds.iter().position(|k| *k == OpKind::Join).unwrap();
        let a = kinds
            .iter()
            .position(|k| *k == OpKind::Call("A".into()))
            .unwrap();
        assert!(fork < a && a < join);
    }

    #[test]
    fn send_and_receive_lowering() {
        let g = lower_one(
            "system T;\nvar m : int<8>;\nprocess A { send B m; }\nprocess B { receive m; }",
            "A",
        );
        assert!(g
            .op_ids()
            .any(|i| g.op(i).kind == OpKind::SendMsg("B".into())));
        let g2 = lower_one(
            "system T;\nvar m : int<8>;\nprocess A { send B m; }\nprocess B { receive m; }",
            "B",
        );
        assert!(g2.op_ids().any(|i| g2.op(i).kind == OpKind::ReceiveMsg));
        // The receive's value flows into the write of m.
        let recv = g2
            .op_ids()
            .find(|&i| g2.op(i).kind == OpKind::ReceiveMsg)
            .unwrap();
        let write = g2
            .op_ids()
            .find(|&i| g2.op(i).kind == OpKind::WriteGlobal("m".into()))
            .unwrap();
        assert_eq!(g2.op(write).inputs, vec![recv]);
    }

    #[test]
    fn consts_fold_to_literals() {
        let g = lower_one(
            "system T;\nconst N = 42;\nvar x : int<8>;\nproc P() { x = N; }",
            "P",
        );
        assert!(g.op_ids().any(|i| g.op(i).kind == OpKind::Const(42)));
        assert!(!g
            .op_ids()
            .any(|i| matches!(g.op(i).kind, OpKind::ReadGlobal(_) if false)));
    }

    #[test]
    fn every_behavior_of_the_corpus_lowers() {
        for entry in slif_speclang::corpus::all() {
            let rs = entry.load().unwrap();
            let graphs = lower_spec(&rs);
            assert_eq!(graphs.len(), rs.spec().behaviors.len());
            for g in &graphs {
                assert!(
                    g.node_count() > 0,
                    "{}: empty cdfg {}",
                    entry.name,
                    g.name()
                );
                // Counts must be internally consistent.
                for b in g.block_ids() {
                    let c = g.block(b).count;
                    assert!(c.avg >= 0.0, "negative count in {}", g.name());
                    assert!(
                        c.min as f64 <= c.avg + 1e-9 && c.avg <= c.max as f64 + 1e-9,
                        "{}: inconsistent count {c:?}",
                        g.name()
                    );
                }
            }
        }
    }
}
