//! The control/dataflow-graph IR.
//!
//! CDFGs are the operation-granularity internal format that high-level
//! synthesis uses and that the SLIF paper argues is *too fine-grained* for
//! system-level design (Section 5 compares format sizes). This crate
//! builds them anyway, for two reasons: they are the honest baseline for
//! the format-size comparison, and they are the substrate on which
//! per-behavior preprocessing (pseudo-compilation and pseudo-synthesis in
//! `slif-techlib`) computes the `ict`/`size` weights SLIF nodes carry.
//!
//! A [`Cdfg`] holds one behavior's operations partitioned into basic
//! blocks. Dataflow edges are the `inputs` of each operation; control
//! edges connect blocks. Each block carries average/min/max execution
//! counts per behavior execution, derived from loop bounds and branch
//! probabilities — the same profile data that gives SLIF channels their
//! access frequencies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of an operation node within a [`Cdfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(pub(crate) u32);

impl OpId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Index of a basic block within a [`Cdfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub(crate) u32);

impl BlockId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// The operation a CDFG node performs.
///
/// Operations that touch *system-level objects* — global variables,
/// external ports, other behaviors — are what SLIF abstracts into
/// channels; [`OpKind::is_system_access`] identifies them so the
/// pseudo-compiler can cost internal computation separately from
/// communication (the paper's `ict` explicitly excludes channel time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// An integer or boolean constant.
    Const(i64),
    /// Read of a behavior-local scalar (local, parameter, or loop var).
    ReadLocal(String),
    /// Write of a behavior-local scalar.
    WriteLocal(String),
    /// Read of a behavior-local array element.
    ReadLocalArray(String),
    /// Write of a behavior-local array element.
    WriteLocalArray(String),
    /// Read of a system-level scalar variable.
    ReadGlobal(String),
    /// Write of a system-level scalar variable.
    WriteGlobal(String),
    /// Read of a system-level array element.
    ReadGlobalArray(String),
    /// Write of a system-level array element.
    WriteGlobalArray(String),
    /// Read of an external input port.
    ReadPort(String),
    /// Write of an external output port.
    WritePort(String),
    /// Call of another behavior.
    Call(String),
    /// Message send to a process.
    SendMsg(String),
    /// Message receive.
    ReceiveMsg,
    /// Two-operand arithmetic/logic.
    Binary(AluOp),
    /// One-operand arithmetic/logic.
    Unary(AluOp),
    /// Conditional branch terminator.
    Branch,
    /// Unconditional jump terminator.
    Jump,
    /// Start of a fork region.
    Fork,
    /// End of a fork region.
    Join,
    /// Return from the behavior.
    Return,
    /// Time delay.
    Wait(u64),
}

impl OpKind {
    /// Whether this operation accesses a system-level object (and so
    /// corresponds to a SLIF channel rather than internal computation).
    pub fn is_system_access(&self) -> bool {
        matches!(
            self,
            OpKind::ReadGlobal(_)
                | OpKind::WriteGlobal(_)
                | OpKind::ReadGlobalArray(_)
                | OpKind::WriteGlobalArray(_)
                | OpKind::ReadPort(_)
                | OpKind::WritePort(_)
                | OpKind::Call(_)
                | OpKind::SendMsg(_)
                | OpKind::ReceiveMsg
        )
    }

    /// Whether this operation ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, OpKind::Branch | OpKind::Jump | OpKind::Return)
    }
}

/// The function an ALU-style operation computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Rem,
    /// Comparison (any relational operator).
    Cmp,
    /// Logical and / or.
    Logic,
    /// Logical or arithmetic negation.
    Not,
    /// Two-input minimum.
    Min,
    /// Two-input maximum.
    Max,
    /// Absolute value.
    Abs,
}

/// An operation node: kind + dataflow inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpNode {
    /// What the node computes.
    pub kind: OpKind,
    /// Dataflow predecessors (operands), in operand order.
    pub inputs: Vec<OpId>,
    /// The block the node belongs to.
    pub block: BlockId,
}

/// Execution counts of a block per start-to-finish behavior execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecCount {
    /// Average executions (branch probabilities × loop bounds).
    pub avg: f64,
    /// Minimum executions.
    pub min: u64,
    /// Maximum executions.
    pub max: u64,
}

impl ExecCount {
    /// Count of a block executed exactly once.
    pub const ONCE: ExecCount = ExecCount {
        avg: 1.0,
        min: 1,
        max: 1,
    };
}

/// A basic block: straight-line operations plus control successors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// The block's operations, in program order.
    pub ops: Vec<OpId>,
    /// Control-flow successors.
    pub succs: Vec<BlockId>,
    /// How often the block runs per behavior execution.
    pub count: ExecCount,
}

/// A control/dataflow graph for one behavior.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdfg {
    name: String,
    ops: Vec<OpNode>,
    blocks: Vec<BasicBlock>,
}

impl Cdfg {
    /// Creates an empty CDFG with a single entry block.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ops: Vec::new(),
            blocks: vec![BasicBlock {
                ops: Vec::new(),
                succs: Vec::new(),
                count: ExecCount::ONCE,
            }],
        }
    }

    /// The behavior's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Appends a new block with the given execution count and returns its id.
    pub fn add_block(&mut self, count: ExecCount) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock {
            ops: Vec::new(),
            succs: Vec::new(),
            count,
        });
        id
    }

    /// Appends an operation to `block` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `block` or any input id is out of range.
    pub fn add_op(&mut self, block: BlockId, kind: OpKind, inputs: Vec<OpId>) -> OpId {
        for i in &inputs {
            assert!(i.index() < self.ops.len(), "dangling dataflow input {i}");
        }
        let id = OpId(self.ops.len() as u32);
        self.ops.push(OpNode {
            kind,
            inputs,
            block,
        });
        self.blocks[block.index()].ops.push(id);
        id
    }

    /// Adds a control edge between blocks.
    ///
    /// # Panics
    ///
    /// Panics if either block id is out of range.
    pub fn add_edge(&mut self, from: BlockId, to: BlockId) {
        assert!(to.index() < self.blocks.len(), "dangling control edge");
        self.blocks[from.index()].succs.push(to);
    }

    /// The operation with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn op(&self, id: OpId) -> &OpNode {
        &self.ops[id.index()]
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block (for count adjustment by profilers).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    /// Iterates over all operation ids.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        (0..self.ops.len() as u32).map(OpId)
    }

    /// Iterates over all block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Number of operation nodes (the "node" count of the Section 5
    /// format-size comparison).
    pub fn node_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of dataflow edges (operand connections).
    pub fn dataflow_edge_count(&self) -> usize {
        self.ops.iter().map(|o| o.inputs.len()).sum()
    }

    /// Number of control edges between blocks.
    pub fn control_edge_count(&self) -> usize {
        self.blocks.iter().map(|b| b.succs.len()).sum()
    }

    /// Total edge count (dataflow + control), the "edge" count of the
    /// Section 5 comparison.
    pub fn edge_count(&self) -> usize {
        self.dataflow_edge_count() + self.control_edge_count()
    }
}

impl fmt::Display for Cdfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cdfg {}: {} ops, {} blocks, {} edges",
            self.name,
            self.node_count(),
            self.block_count(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_count() {
        let mut g = Cdfg::new("t");
        let entry = g.entry();
        let a = g.add_op(entry, OpKind::Const(1), vec![]);
        let b = g.add_op(entry, OpKind::Const(2), vec![]);
        let sum = g.add_op(entry, OpKind::Binary(AluOp::Add), vec![a, b]);
        let _w = g.add_op(entry, OpKind::WriteGlobal("x".into()), vec![sum]);
        let exit = g.add_block(ExecCount::ONCE);
        g.add_edge(entry, exit);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.dataflow_edge_count(), 3);
        assert_eq!(g.control_edge_count(), 1);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.block_count(), 2);
    }

    #[test]
    fn system_access_classification() {
        assert!(OpKind::ReadGlobal("x".into()).is_system_access());
        assert!(OpKind::Call("P".into()).is_system_access());
        assert!(OpKind::WritePort("o".into()).is_system_access());
        assert!(OpKind::SendMsg("M".into()).is_system_access());
        assert!(!OpKind::ReadLocal("t".into()).is_system_access());
        assert!(!OpKind::Binary(AluOp::Add).is_system_access());
        assert!(!OpKind::Const(0).is_system_access());
    }

    #[test]
    fn terminator_classification() {
        assert!(OpKind::Branch.is_terminator());
        assert!(OpKind::Jump.is_terminator());
        assert!(OpKind::Return.is_terminator());
        assert!(!OpKind::Wait(5).is_terminator());
    }

    #[test]
    #[should_panic(expected = "dangling dataflow input")]
    fn dangling_input_rejected() {
        let mut g = Cdfg::new("t");
        let entry = g.entry();
        g.add_op(entry, OpKind::Binary(AluOp::Add), vec![OpId(7)]);
    }

    #[test]
    fn display_mentions_counts() {
        let g = Cdfg::new("conv");
        assert_eq!(g.to_string(), "cdfg conv: 0 ops, 1 blocks, 0 edges");
    }
}
