//! # slif-cdfg — control/dataflow graphs and scheduling
//!
//! The operation-granularity internal format the SLIF paper compares
//! against (Section 5), plus the scheduling machinery that pre-computes
//! SLIF's annotations:
//!
//! * [`Cdfg`] — per-behavior CDFG: operation nodes with dataflow inputs,
//!   basic blocks with control edges and profiled execution counts,
//! * [`lower_behavior`] / [`lower_spec`] — AST → CDFG lowering,
//! * [`access_frequencies`] — per-object access counts, the raw material
//!   for SLIF channel `accfreq` annotations,
//! * [`schedule`] — ASAP / ALAP / resource-constrained list scheduling,
//!   used by `slif-techlib` to pre-synthesize behaviors for ict/size
//!   weights and concurrency tags.
//!
//! # Examples
//!
//! ```
//! use slif_cdfg::{lower_behavior, access_frequencies};
//!
//! let rs = slif_speclang::parse_and_resolve(
//!     "system T;\nvar x : int<8>;\nproc P() { x = x + 1; }",
//! )?;
//! let g = lower_behavior(&rs, 0);
//! assert!(g.node_count() > 0);
//! let accs = access_frequencies(&g);
//! assert_eq!(accs.len(), 1); // x
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dominators;
mod ir;
mod lower;
pub mod schedule;

pub use dominators::immediate_dominators;
pub use ir::{AluOp, BasicBlock, BlockId, Cdfg, ExecCount, OpId, OpKind, OpNode};
pub use lower::{
    access_frequencies, lower_behavior, lower_spec, Access, AccessSummary, DEFAULT_BRANCH_PROB,
    DEFAULT_WHILE_ITERS,
};
pub use schedule::{alap, asap, fu_class, list_schedule, BlockSchedule, FuClass, ResourceSet};
