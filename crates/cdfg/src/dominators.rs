//! Dominator computation over a CDFG's control-flow graph.
//!
//! Used by the basic-block-granularity SLIF builder: modelling each block
//! as a procedure needs an acyclic "who causes whom to run" structure,
//! and the immediate-dominator tree is exactly that — every block is
//! entered under the control of its immediate dominator, and summing
//! `count(block) × ict(block)` over the tree telescopes to the behavior's
//! total internal computation time.

use crate::ir::{BlockId, Cdfg};

/// Computes the immediate dominator of every reachable block (the entry
/// block dominates itself). Unreachable blocks map to the entry.
///
/// The classic iterative algorithm (Cooper–Harvey–Kennedy) over a reverse
/// postorder; CDFG block graphs are tiny, so simplicity beats asymptotics.
pub fn immediate_dominators(g: &Cdfg) -> Vec<BlockId> {
    let n = g.block_count();
    let entry = g.entry();
    // Predecessor lists and a reverse postorder.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for b in g.block_ids() {
        for &s in &g.block(b).succs {
            preds[s.index()].push(b.index());
        }
    }
    let rpo = reverse_postorder(g);
    let mut order_of = vec![usize::MAX; n];
    for (i, &b) in rpo.iter().enumerate() {
        order_of[b] = i;
    }

    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[entry.index()] = Some(entry.index());
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<usize> = None;
            for &p in &preds[b] {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &order_of, p, cur),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b] != Some(ni) {
                    idom[b] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    (0..n)
        .map(|b| BlockId(idom[b].unwrap_or(entry.index()) as u32))
        .collect()
}

fn intersect(idom: &[Option<usize>], order_of: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while order_of[a] > order_of[b] {
            a = idom[a].expect("processed in RPO");
        }
        while order_of[b] > order_of[a] {
            b = idom[b].expect("processed in RPO");
        }
    }
    a
}

/// Reverse postorder of the reachable blocks from the entry.
fn reverse_postorder(g: &Cdfg) -> Vec<usize> {
    let n = g.block_count();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with an explicit stack of (block, next-successor).
    let mut stack: Vec<(usize, usize)> = vec![(g.entry().index(), 0)];
    visited[g.entry().index()] = true;
    while let Some(&(b, next)) = stack.last() {
        let succs = &g.block(BlockId(b as u32)).succs;
        if next < succs.len() {
            stack.last_mut().expect("non-empty").1 += 1;
            let s = succs[next].index();
            if !visited[s] {
                visited[s] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_behavior;
    use slif_speclang::parse_and_resolve;

    fn doms_of(src: &str) -> (Cdfg, Vec<BlockId>) {
        let rs = parse_and_resolve(src).unwrap();
        let g = lower_behavior(&rs, 0);
        let d = immediate_dominators(&g);
        (g, d)
    }

    #[test]
    fn straight_line_has_self_dominating_entry() {
        let (g, d) = doms_of("system T;\nvar x : int<8>;\nproc P() { x = 1; }");
        assert_eq!(d[g.entry().index()], g.entry());
        assert_eq!(d.len(), g.block_count());
    }

    #[test]
    fn diamond_join_is_dominated_by_the_branch_head() {
        let (g, d) =
            doms_of("system T;\nvar x : int<8>;\nproc P() { if x > 0 { x = 1; } else { x = 2; } }");
        // Blocks: 0 entry, 1 then, 2 else, 3 join.
        assert_eq!(g.block_count(), 4);
        assert_eq!(d[1], g.entry());
        assert_eq!(d[2], g.entry());
        assert_eq!(d[3], g.entry(), "join is NOT dominated by either arm");
    }

    #[test]
    fn loop_body_dominated_by_preheader() {
        let (g, d) =
            doms_of("system T;\nvar a : int<8>[8];\nproc P() { for i in 0 .. 7 { a[i] = i; } }");
        // Blocks: 0 entry/preheader, 1 body, 2 exit.
        assert_eq!(d[1], g.entry());
        assert_eq!(d[2].index(), 1, "the exit is reached only through the body");
    }

    #[test]
    fn while_exit_dominated_by_header() {
        let (g, d) =
            doms_of("system T;\nvar x : int<8>;\nproc P() { while x > 0 iters 3 { x = x - 1; } }");
        // Blocks: 0 entry, 1 header, 2 body, 3 exit.
        assert_eq!(d[1], g.entry());
        assert_eq!(d[2].index(), 1);
        assert_eq!(d[3].index(), 1);
    }

    #[test]
    fn every_dominator_chain_reaches_the_entry() {
        for entry in slif_speclang::corpus::all() {
            let rs = entry.load().unwrap();
            for (i, _) in rs.spec().behaviors.iter().enumerate() {
                let g = lower_behavior(&rs, i);
                let d = immediate_dominators(&g);
                for b in g.block_ids() {
                    let mut cur = b.index();
                    let mut guard = 0;
                    while cur != g.entry().index() {
                        cur = d[cur].index();
                        guard += 1;
                        assert!(
                            guard <= g.block_count(),
                            "{}: dominator chain cycles",
                            g.name()
                        );
                    }
                }
            }
        }
    }
}
