//! Streaming SLIF interchange formats.
//!
//! Two encodings of the same logical payload — a
//! [`Design`](slif_core::Design) plus its annotations and an optional
//! [`Partition`](slif_core::Partition):
//!
//! * **text** (`.slif`) — a line-oriented, section-structured format
//!   ([`text`]): a `slif-wire 1` header line, then `[design]`,
//!   `[annotations]`, an optional `[partition]`, and a closing `[end]`
//!   section whose `check` directive carries the SHA-256 content key of
//!   the design's canonical bytes. Unknown sections are tolerated with
//!   a warning; in [`Strictness::Lenient`] mode a malformed record
//!   produces a deny-level diagnostic and the reader *resyncs* at the
//!   next section header instead of giving up.
//! * **binary** (`.slifb`) — a sequence of length-prefixed,
//!   checksum-framed segments ([`binary`]) reusing the
//!   [`slif_core::atomic_io`] frame layout. The reader verifies each
//!   frame's magic, version, declared length (against
//!   [`FormatLimits::max_segment_bytes`], *before* any allocation) and
//!   checksum; a damaged segment is a typed refusal in strict mode and
//!   a quarantined miss plus a magic-scan resync in lenient mode.
//!
//! Both readers are **pull parsers** ([`text::TextRecords`],
//! [`binary::Segments`]): they hold at most one line / one segment in
//! memory, so peak allocation is O(record), not O(file). Both folds
//! enforce [`FormatLimits`] throughout, and neither can return a wrong
//! answer: an outcome is only [`ReadOutcome::verified`] when the
//! decoded design's canonical bytes hash to the content key declared in
//! the trailer, and strict mode refuses anything less.

use std::fmt;

use slif_core::{CoreError, Design, GraphLimits, Partition};
use slif_speclang::Diagnostic;

pub mod binary;
pub mod text;

/// The text encoding's first-line header (followed by the version).
pub const TEXT_MAGIC: &str = "slif-wire";
/// The text encoding's format version.
pub const TEXT_VERSION: u32 = 1;
/// Frame magic for one binary segment.
pub const SEGMENT_MAGIC: [u8; 8] = *b"SLIFWSEG";
/// Frame version for binary segments.
pub const SEGMENT_VERSION: u32 = 1;

/// Resource caps a reader enforces while parsing untrusted bytes.
///
/// Modeled on [`GraphLimits`]: a plain struct of caps with `with_*`
/// builders, checked *before* the corresponding allocation or recursion
/// so a hostile input cannot make the parser balloon.
#[derive(Debug, Clone, PartialEq)]
pub struct FormatLimits {
    /// Longest accepted text line, in bytes (cap before buffering more).
    pub max_line_bytes: usize,
    /// Largest accepted binary segment payload, in bytes (checked
    /// against the *declared* length before reading the payload).
    pub max_segment_bytes: usize,
    /// Deepest accepted nesting: `{`-blocks inside unknown text
    /// sections, group segments inside group segments.
    pub max_nesting_depth: usize,
    /// Most sections (text) or segments (binary) accepted in one file.
    pub max_records: usize,
    /// How far a lenient binary reader scans for the next segment magic
    /// after a damaged frame before declaring the tail lost.
    pub max_resync_bytes: usize,
    /// Most diagnostics collected before the read aborts with
    /// [`FormatError::LimitExceeded`] (a corrupt file must not buy an
    /// unbounded diagnostics vector).
    pub max_diagnostics: usize,
    /// Caps on the graph being rebuilt, enforced per added object.
    pub graph: GraphLimits,
}

impl Default for FormatLimits {
    fn default() -> Self {
        Self {
            max_line_bytes: 1 << 16,
            max_segment_bytes: 1 << 24,
            max_nesting_depth: 16,
            max_records: 1 << 20,
            max_resync_bytes: 1 << 20,
            max_diagnostics: 256,
            graph: GraphLimits::default(),
        }
    }
}

impl FormatLimits {
    /// Replaces the line-length cap.
    #[must_use]
    pub fn with_max_line_bytes(mut self, v: usize) -> Self {
        self.max_line_bytes = v;
        self
    }
    /// Replaces the segment-payload cap.
    #[must_use]
    pub fn with_max_segment_bytes(mut self, v: usize) -> Self {
        self.max_segment_bytes = v;
        self
    }
    /// Replaces the nesting-depth cap.
    #[must_use]
    pub fn with_max_nesting_depth(mut self, v: usize) -> Self {
        self.max_nesting_depth = v;
        self
    }
    /// Replaces the record-count cap.
    #[must_use]
    pub fn with_max_records(mut self, v: usize) -> Self {
        self.max_records = v;
        self
    }
    /// Replaces the resync-scan cap.
    #[must_use]
    pub fn with_max_resync_bytes(mut self, v: usize) -> Self {
        self.max_resync_bytes = v;
        self
    }
    /// Replaces the diagnostics cap.
    #[must_use]
    pub fn with_max_diagnostics(mut self, v: usize) -> Self {
        self.max_diagnostics = v;
        self
    }
    /// Replaces the graph caps.
    #[must_use]
    pub fn with_graph(mut self, v: GraphLimits) -> Self {
        self.graph = v;
        self
    }
}

/// How a reader treats recoverable damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strictness {
    /// Any malformed record, damaged segment, missing trailer, or
    /// content-key mismatch is a typed [`FormatError`]. The mode for
    /// machine ingest (the wire): accepted implies verified.
    Strict,
    /// Malformed records become deny-level diagnostics and the reader
    /// resyncs (next section header / next segment magic); the outcome
    /// reports `verified: false` unless the trailer check still passes.
    /// The mode for human tooling that wants to salvage what it can.
    Lenient,
}

/// Which wire encoding a byte stream uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// Line-oriented `.slif` text.
    Text,
    /// Length-prefixed, checksum-framed `.slifb` segments.
    Binary,
}

impl fmt::Display for Encoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Encoding::Text => "text",
            Encoding::Binary => "binary",
        })
    }
}

/// Sniffs the encoding from the first bytes of a stream.
///
/// Text files start with the `slif-wire` header line; binary files
/// start with a segment frame's magic. Anything else is unrecognized.
pub fn detect_encoding(prefix: &[u8]) -> Option<Encoding> {
    if prefix.starts_with(TEXT_MAGIC.as_bytes()) {
        Some(Encoding::Text)
    } else if prefix.starts_with(&SEGMENT_MAGIC) {
        Some(Encoding::Binary)
    } else {
        None
    }
}

/// Why a read or write was refused. Every variant is a *refusal*: the
/// reader never guesses past damage it cannot prove benign.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FormatError {
    /// The underlying reader or writer failed.
    Io {
        /// What was being read or written.
        context: &'static str,
        /// The I/O error's message.
        message: String,
    },
    /// A cap in [`FormatLimits`] would have been exceeded.
    LimitExceeded {
        /// Which cap.
        what: &'static str,
        /// The configured cap.
        limit: usize,
        /// The observed or declared value.
        actual: usize,
    },
    /// A record failed to parse (strict mode, or an unrecoverable spot).
    Malformed {
        /// 1-based line for text input, 0 for binary input.
        line: usize,
        /// Byte offset of the offending record.
        offset: usize,
        /// What was wrong.
        message: String,
    },
    /// The input ended before the closing section or segment.
    Truncated {
        /// What was still expected.
        context: &'static str,
    },
    /// Bytes at a segment boundary did not start with the segment magic.
    BadMagic {
        /// Byte offset of the bad header.
        offset: usize,
    },
    /// A header or frame declared a version this reader does not speak.
    UnsupportedVersion {
        /// The declared version.
        found: u32,
    },
    /// A segment's checksum did not match its payload.
    ChecksumMismatch {
        /// Byte offset of the damaged segment.
        offset: usize,
    },
    /// The decoded design's canonical bytes do not hash to the content
    /// key the trailer declared — the payload was altered in flight.
    ContentMismatch {
        /// The key the trailer declared (hex).
        declared: String,
        /// The key the decoded design actually hashes to (hex).
        actual: String,
    },
    /// A required section or segment never appeared.
    MissingSection {
        /// Which one.
        section: &'static str,
    },
    /// A section or segment kind appeared twice.
    DuplicateSection {
        /// Which one.
        section: &'static str,
        /// 1-based line for text input, 0 for binary input.
        line: usize,
    },
    /// Rebuilding the design hit a graph error or cap.
    Graph(CoreError),
    /// The writer cannot represent this design (a name the line grammar
    /// cannot carry, an object count past `u32`).
    Unencodable {
        /// What cannot be represented.
        message: String,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::Io { context, message } => write!(f, "i/o failure ({context}): {message}"),
            FormatError::LimitExceeded {
                what,
                limit,
                actual,
            } => write!(f, "{what} limit exceeded: {actual} > {limit}"),
            FormatError::Malformed {
                line,
                offset,
                message,
            } => {
                if *line == 0 {
                    write!(f, "malformed record at byte {offset}: {message}")
                } else {
                    write!(f, "malformed record at line {line}: {message}")
                }
            }
            FormatError::Truncated { context } => {
                write!(f, "input truncated: {context} still expected")
            }
            FormatError::BadMagic { offset } => {
                write!(f, "bad segment magic at byte {offset}")
            }
            FormatError::UnsupportedVersion { found } => {
                write!(f, "unsupported format version {found}")
            }
            FormatError::ChecksumMismatch { offset } => {
                write!(f, "segment checksum mismatch at byte {offset}")
            }
            FormatError::ContentMismatch { declared, actual } => {
                write!(f, "content key mismatch: trailer declares {declared}, payload hashes to {actual}")
            }
            FormatError::MissingSection { section } => {
                write!(f, "missing required section `{section}`")
            }
            FormatError::DuplicateSection { section, line } => {
                if *line == 0 {
                    write!(f, "duplicate section `{section}`")
                } else {
                    write!(f, "duplicate section `{section}` at line {line}")
                }
            }
            FormatError::Graph(e) => write!(f, "graph rejected: {e}"),
            FormatError::Unencodable { message } => write!(f, "unencodable design: {message}"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<CoreError> for FormatError {
    fn from(e: CoreError) -> Self {
        FormatError::Graph(e)
    }
}

pub(crate) fn io_err(context: &'static str, e: &std::io::Error) -> FormatError {
    FormatError::Io {
        context,
        message: e.to_string(),
    }
}

/// What a successful read produced.
#[derive(Debug)]
#[non_exhaustive]
pub struct ReadOutcome {
    /// The decoded design, annotations applied.
    pub design: Design,
    /// The decoded partition, when the input carried one.
    pub partition: Option<Partition>,
    /// Warnings (unknown sections, skipped extensions) and — in lenient
    /// mode — deny-level records the reader resynced past.
    pub diagnostics: Vec<Diagnostic>,
    /// Whether the decoded design's canonical bytes hash to the content
    /// key the trailer declared. Strict reads only ever return
    /// `verified: true`; a lenient read that salvaged around damage
    /// reports `false`.
    pub verified: bool,
    /// High-water mark of the pull parser's internal buffer, in bytes —
    /// the evidence that parsing stayed O(record), not O(file).
    pub peak_alloc_bytes: usize,
}

impl ReadOutcome {
    /// Whether any diagnostic is deny-level (an error the lenient
    /// reader resynced past).
    pub fn has_denials(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity() == slif_speclang::Severity::Error)
    }
}

/// Reads a design from bytes in whichever encoding they carry.
///
/// # Errors
///
/// [`FormatError::BadMagic`] when the prefix matches neither encoding,
/// else whatever [`text::read_text`] / [`binary::read_binary`] return.
pub fn read_bytes(
    bytes: &[u8],
    strictness: Strictness,
    limits: &FormatLimits,
) -> Result<ReadOutcome, FormatError> {
    match detect_encoding(bytes) {
        Some(Encoding::Text) => text::read_text(bytes, strictness, limits),
        Some(Encoding::Binary) => binary::read_binary(bytes, strictness, limits),
        None => Err(FormatError::BadMagic { offset: 0 }),
    }
}

/// Writes a design (plus optional partition) in the chosen encoding.
///
/// # Errors
///
/// [`FormatError::Unencodable`] for designs the encoding cannot carry;
/// [`FormatError::Io`] is impossible when writing to a `Vec` but the
/// underlying writers are generic.
pub fn write_bytes(
    design: &Design,
    partition: Option<&Partition>,
    encoding: Encoding,
) -> Result<Vec<u8>, FormatError> {
    let mut out = Vec::new();
    match encoding {
        Encoding::Text => text::write_text(design, partition, &mut out)?,
        Encoding::Binary => binary::write_binary(design, partition, &mut out)?,
    }
    Ok(out)
}

#[cfg(test)]
pub(crate) mod testutil {
    use slif_core::{
        AccessFreq, AccessKind, AccessTarget, Bus, ClassKind, ConcurrencyTag, Design, Memory,
        NodeKind, Partition, PmRef, PortDirection, Processor, WeightEntry,
    };

    /// A design that exercises every wire construct: all class kinds,
    /// port directions, node kinds, access kinds, both target kinds,
    /// concurrency groups, datapath splits, and constrained components.
    pub fn sample_design() -> (Design, Partition) {
        let mut d = Design::new("wiresample");
        let proc8 = d.add_class("proc8", ClassKind::StdProcessor);
        let hw = d.add_class("hw", ClassKind::CustomHw);
        let mem1 = d.add_class("mem1", ClassKind::Memory);
        let g = d.graph_mut();
        let sensor = g.add_port("sensor", PortDirection::In, 8);
        let _led = g.add_port("led", PortDirection::Out, 1);
        let _dbg = g.add_port("dbg", PortDirection::InOut, 16);
        let main = g.add_node("main", NodeKind::process());
        let eval = g.add_node("eval", NodeKind::procedure());
        let table = g.add_node("table", NodeKind::array(256, 8));
        let c0 = g
            .add_channel(main, AccessTarget::Node(eval), AccessKind::Call)
            .unwrap();
        let c1 = g
            .add_channel(eval, AccessTarget::Node(table), AccessKind::Read)
            .unwrap();
        let c2 = g
            .add_channel(main, AccessTarget::Port(sensor), AccessKind::Read)
            .unwrap();
        {
            let ch = g.channel_mut(c0);
            *ch.freq_mut() = AccessFreq::new(2.5, 1, 4);
            ch.set_bits(8);
            ch.set_tag(ConcurrencyTag::group(3));
        }
        {
            let ch = g.channel_mut(c1);
            *ch.freq_mut() = AccessFreq::new(16.0, 16, 16);
            ch.set_bits(8);
        }
        {
            let ch = g.channel_mut(c2);
            *ch.freq_mut() = AccessFreq::new(1.0, 0, 1);
            ch.set_bits(8);
        }
        g.node_mut(main).ict_mut().set(proc8, 1200);
        g.node_mut(eval).ict_mut().set(proc8, 300);
        g.node_mut(eval).ict_mut().set(hw, 40);
        g.node_mut(main).size_mut().insert(WeightEntry::new(proc8, 4000));
        g.node_mut(eval)
            .size_mut()
            .insert(WeightEntry::with_datapath(hw, 900, 350));
        g.node_mut(table).size_mut().insert(WeightEntry::new(mem1, 2048));
        let cpu = d.add_processor_instance(
            Processor::new("cpu", proc8)
                .with_size_constraint(100_000)
                .with_pin_constraint(120),
        );
        let ram = d.add_memory_instance(Memory::new("ram", mem1).with_size_constraint(65_536));
        let b0 = d.add_bus(Bus::new("b0", 16, 2, 1).with_capacity(4000.0));
        let mut p = Partition::new(&d);
        p.assign_node(main, PmRef::Processor(cpu));
        p.assign_node(eval, PmRef::Processor(cpu));
        p.assign_node(table, PmRef::Memory(ram));
        p.assign_channel(c1, b0);
        (d, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_detection_sniffs_both_headers() {
        assert_eq!(detect_encoding(b"slif-wire 1\n"), Some(Encoding::Text));
        assert_eq!(detect_encoding(b"SLIFWSEG\x01\x00"), Some(Encoding::Binary));
        assert_eq!(detect_encoding(b"BLIF 1.0"), None);
        assert_eq!(detect_encoding(b""), None);
    }

    #[test]
    fn limits_builders_replace_one_cap_each() {
        let l = FormatLimits::default()
            .with_max_line_bytes(7)
            .with_max_segment_bytes(8)
            .with_max_nesting_depth(9)
            .with_max_records(10)
            .with_max_resync_bytes(11)
            .with_max_diagnostics(12);
        assert_eq!(
            (l.max_line_bytes, l.max_segment_bytes, l.max_nesting_depth),
            (7, 8, 9)
        );
        assert_eq!(
            (l.max_records, l.max_resync_bytes, l.max_diagnostics),
            (10, 11, 12)
        );
    }

    #[test]
    fn errors_render_with_location() {
        let e = FormatError::Malformed {
            line: 3,
            offset: 40,
            message: "nope".into(),
        };
        assert_eq!(e.to_string(), "malformed record at line 3: nope");
        let e = FormatError::Malformed {
            line: 0,
            offset: 40,
            message: "nope".into(),
        };
        assert_eq!(e.to_string(), "malformed record at byte 40: nope");
    }
}
