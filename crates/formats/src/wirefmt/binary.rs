//! The length-prefixed, checksum-framed `.slifb` binary encoding.
//!
//! A `.slifb` file is a flat sequence of segments, each wrapped in the
//! [`slif_core::atomic_io`] frame container (8-byte magic
//! [`SEGMENT_MAGIC`], `u32` version, `u64` payload length, `u64`
//! FNV-1a checksum, payload) — the exact framing the store already
//! trusts on disk, so the whole stack shares one checksum discipline.
//! The first payload byte is the segment kind; the rest is a
//! little-endian body in the store's [`slif_store::codec`] encoding:
//!
//! | kind | segment | body |
//! |-----:|---------|------|
//! | 1 | header | design name |
//! | 2 | classes | count, then name + kind byte each |
//! | 3 | ports | count, then name + direction + bits each |
//! | 4 | nodes (chunked) | count, then name + kind + ict/size weights each |
//! | 5 | channels (chunked) | count, then src/dst ordinals + kind + freq + bits + tag each |
//! | 6 | components | processors, memories, buses |
//! | 7 | partition (chunked) | node→component and channel→bus assignments |
//! | 8 | group (extension) | nested frames, validated and skipped |
//! | 9 | end | 32-byte content key of the design's canonical bytes |
//!
//! Unknown kinds are skipped with a warning. The reader checks each
//! frame's *declared* length against
//! [`FormatLimits::max_segment_bytes`] before reading the payload, so
//! a hostile length cannot force an allocation; the checksum is
//! verified before a single body byte is decoded, and each segment is
//! decoded to scratch before being applied, so a damaged segment is a
//! quarantined miss, never a half-applied mutation that could decode
//! to a wrong design. In [`Strictness::Lenient`] mode the reader
//! resyncs after damage by scanning (at most
//! [`FormatLimits::max_resync_bytes`]) for the next segment magic.

use std::io::{Read, Write};

use slif_core::atomic_io::{frame, le_u32, le_u64, unframe, FrameError, FRAME_HEADER_LEN};
use slif_core::{
    AccessFreq, AccessKind, AccessTarget, Bus, ChannelId, ClassId, ClassKind, ConcurrencyTag,
    Design, Memory, NodeId, NodeKind, Partition, PmRef, PortDirection, PortId, Processor,
    WeightEntry,
};
use slif_speclang::{codes, Diagnostic, Span};
use slif_store::codec::{Dec, Enc};
use slif_store::{ContentKey, StoreError};

use super::{
    io_err, FormatError, FormatLimits, ReadOutcome, Strictness, SEGMENT_MAGIC, SEGMENT_VERSION,
};

/// Segment kind: design name.
pub const SEG_HEADER: u8 = 1;
/// Segment kind: component classes.
pub const SEG_CLASSES: u8 = 2;
/// Segment kind: external ports.
pub const SEG_PORTS: u8 = 3;
/// Segment kind: a chunk of nodes with their weight annotations.
pub const SEG_NODES: u8 = 4;
/// Segment kind: a chunk of channels.
pub const SEG_CHANNELS: u8 = 5;
/// Segment kind: processor, memory, and bus instances.
pub const SEG_COMPONENTS: u8 = 6;
/// Segment kind: a chunk of partition assignments.
pub const SEG_PARTITION: u8 = 7;
/// Segment kind: extension container of nested frames (skipped).
pub const SEG_GROUP: u8 = 8;
/// Segment kind: trailer carrying the design's content key.
pub const SEG_END: u8 = 9;

const NODES_PER_SEGMENT: usize = 1024;
const CHANNELS_PER_SEGMENT: usize = 4096;
const PARTITION_PER_SEGMENT: usize = 4096;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn emit<W: Write>(w: &mut W, kind: u8, body: Enc) -> Result<(), FormatError> {
    let mut payload = Vec::with_capacity(1 + body.buf.len());
    payload.push(kind);
    payload.extend_from_slice(&body.buf);
    w.write_all(&frame(&SEGMENT_MAGIC, SEGMENT_VERSION, &payload))
        .map_err(|e| io_err("binary write", &e))
}

/// Writes `design` (and `partition`, when given) as `.slifb` segments.
///
/// Large object families are split into bounded chunks
/// (1024 nodes / 4096 channels / 4096 assignments per segment), so the
/// writer never holds more than one segment's payload in memory and a
/// reader can impose a modest segment cap.
///
/// # Errors
///
/// [`FormatError::Io`] when the sink fails.
pub fn write_binary<W: Write>(
    design: &Design,
    partition: Option<&Partition>,
    w: &mut W,
) -> Result<(), FormatError> {
    let g = design.graph();

    let mut body = Enc::default();
    body.bytes(design.name().as_bytes());
    emit(w, SEG_HEADER, body)?;

    let mut body = Enc::default();
    body.u32(design.class_count() as u32);
    for k in design.class_ids() {
        let c = design.class(k);
        body.bytes(c.name().as_bytes());
        body.u8(match c.kind() {
            ClassKind::StdProcessor => 0,
            ClassKind::CustomHw => 1,
            ClassKind::Memory => 2,
        });
    }
    emit(w, SEG_CLASSES, body)?;

    let mut body = Enc::default();
    body.u32(g.port_count() as u32);
    for p in g.port_ids() {
        let port = g.port(p);
        body.bytes(port.name().as_bytes());
        body.u8(match port.direction() {
            PortDirection::In => 0,
            PortDirection::Out => 1,
            PortDirection::InOut => 2,
        });
        body.u32(port.bits());
    }
    emit(w, SEG_PORTS, body)?;

    let nodes: Vec<_> = g.node_ids().collect();
    for chunk in nodes.chunks(NODES_PER_SEGMENT) {
        let mut body = Enc::default();
        body.u32(chunk.len() as u32);
        for &n in chunk {
            let node = g.node(n);
            body.bytes(node.name().as_bytes());
            match node.kind() {
                NodeKind::Behavior { process } => body.u8(u8::from(!process)),
                NodeKind::Variable { words, word_bits } => {
                    body.u8(2);
                    body.u64(words);
                    body.u32(word_bits);
                }
            }
            let icts: Vec<_> = node.ict().iter().collect();
            body.u32(icts.len() as u32);
            for e in icts {
                body.u32(e.class.index() as u32);
                body.u64(e.val);
            }
            let sizes: Vec<_> = node.size().iter().collect();
            body.u32(sizes.len() as u32);
            for e in sizes {
                body.u32(e.class.index() as u32);
                body.u64(e.val);
                match e.datapath {
                    Some(dp) => {
                        body.u8(1);
                        body.u64(dp);
                    }
                    None => body.u8(0),
                }
            }
        }
        emit(w, SEG_NODES, body)?;
    }

    let channels: Vec<_> = g.channel_ids().collect();
    for chunk in channels.chunks(CHANNELS_PER_SEGMENT) {
        let mut body = Enc::default();
        body.u32(chunk.len() as u32);
        for &c in chunk {
            let ch = g.channel(c);
            body.u32(ch.src().index() as u32);
            match ch.dst() {
                AccessTarget::Node(n) => {
                    body.u8(0);
                    body.u32(n.index() as u32);
                }
                AccessTarget::Port(p) => {
                    body.u8(1);
                    body.u32(p.index() as u32);
                }
            }
            body.u8(match ch.kind() {
                AccessKind::Call => 0,
                AccessKind::Read => 1,
                AccessKind::Write => 2,
                AccessKind::Message => 3,
            });
            let f = ch.freq();
            body.f64(f.avg);
            body.u64(f.min);
            body.u64(f.max);
            body.u32(ch.bits());
            match ch.tag().id() {
                None => body.u8(0),
                Some(grp) => {
                    body.u8(1);
                    body.u32(grp);
                }
            }
        }
        emit(w, SEG_CHANNELS, body)?;
    }

    let mut body = Enc::default();
    body.u32(design.processor_count() as u32);
    for p in design.processor_ids() {
        let proc = design.processor(p);
        body.bytes(proc.name().as_bytes());
        body.u32(proc.class().index() as u32);
        let flags = u8::from(proc.size_constraint().is_some())
            | (u8::from(proc.pin_constraint().is_some()) << 1);
        body.u8(flags);
        if let Some(s) = proc.size_constraint() {
            body.u64(s);
        }
        if let Some(pins) = proc.pin_constraint() {
            body.u32(pins);
        }
    }
    body.u32(design.memory_count() as u32);
    for m in design.memory_ids() {
        let mem = design.memory(m);
        body.bytes(mem.name().as_bytes());
        body.u32(mem.class().index() as u32);
        match mem.size_constraint() {
            Some(s) => {
                body.u8(1);
                body.u64(s);
            }
            None => body.u8(0),
        }
    }
    body.u32(design.bus_count() as u32);
    for b in design.bus_ids() {
        let bus = design.bus(b);
        body.bytes(bus.name().as_bytes());
        body.u32(bus.bitwidth());
        body.u64(bus.ts());
        body.u64(bus.td());
        match bus.capacity() {
            Some(cap) => {
                body.u8(1);
                body.f64(cap);
            }
            None => body.u8(0),
        }
    }
    emit(w, SEG_COMPONENTS, body)?;

    if let Some(part) = partition {
        let maps: Vec<_> = g
            .node_ids()
            .filter_map(|n| part.node_component(n).map(|c| (n, c)))
            .collect();
        for chunk in maps.chunks(PARTITION_PER_SEGMENT) {
            let mut body = Enc::default();
            body.u32(chunk.len() as u32);
            for (n, comp) in chunk {
                body.u32(n.index() as u32);
                match comp {
                    PmRef::Processor(p) => {
                        body.u8(0);
                        body.u32(p.index() as u32);
                    }
                    PmRef::Memory(m) => {
                        body.u8(1);
                        body.u32(m.index() as u32);
                    }
                }
            }
            body.u32(0);
            emit(w, SEG_PARTITION, body)?;
        }
        let chans: Vec<_> = g
            .channel_ids()
            .filter_map(|c| part.channel_bus(c).map(|b| (c, b)))
            .collect();
        for chunk in chans.chunks(PARTITION_PER_SEGMENT) {
            let mut body = Enc::default();
            body.u32(0);
            body.u32(chunk.len() as u32);
            for (c, b) in chunk {
                body.u32(c.index() as u32);
                body.u32(b.index() as u32);
            }
            emit(w, SEG_PARTITION, body)?;
        }
        if maps.is_empty() && chans.is_empty() {
            let mut body = Enc::default();
            body.u32(0);
            body.u32(0);
            emit(w, SEG_PARTITION, body)?;
        }
    }

    let key = ContentKey::of(&slif_store::encode_design(design));
    let mut body = Enc::default();
    body.buf.extend_from_slice(&key.0);
    emit(w, SEG_END, body)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Pull parser
// ---------------------------------------------------------------------------

/// One verified segment pulled from a `.slifb` byte stream: magic,
/// version, declared length, and checksum have all been checked; the
/// body has not yet been decoded.
#[derive(Debug)]
pub struct Segment {
    /// The segment kind byte.
    pub kind: u8,
    /// The body (after the kind byte).
    pub payload: Vec<u8>,
    /// File offset of the segment's frame header.
    pub offset: usize,
}

/// A bounded, incremental segment stream over `.slifb` bytes.
///
/// Holds at most one frame in memory; the declared payload length is
/// checked against [`FormatLimits::max_segment_bytes`] *before* the
/// payload is buffered, so peak allocation is O(segment), not O(file).
#[derive(Debug)]
pub struct Segments<R> {
    src: R,
    buf: Vec<u8>,
    offset: usize,
    eof: bool,
    peak: usize,
    records: usize,
    max_segment: usize,
    max_records: usize,
    max_resync: usize,
}

const READ_CHUNK: usize = 8 << 10;

impl<R: Read> Segments<R> {
    /// Starts pulling segments from `src` under `limits`.
    pub fn new(src: R, limits: &FormatLimits) -> Self {
        Self {
            src,
            buf: Vec::new(),
            offset: 0,
            eof: false,
            peak: 0,
            records: 0,
            max_segment: limits.max_segment_bytes,
            max_records: limits.max_records,
            max_resync: limits.max_resync_bytes,
        }
    }

    /// High-water mark of the internal buffer, in bytes.
    pub fn peak_alloc_bytes(&self) -> usize {
        self.peak
    }

    fn fill(&mut self, want: usize) -> Result<(), FormatError> {
        while self.buf.len() < want && !self.eof {
            let old = self.buf.len();
            self.buf.resize(old + READ_CHUNK.max(want - old), 0);
            let n = self
                .src
                .read(&mut self.buf[old..])
                .map_err(|e| io_err("binary read", &e))?;
            self.buf.truncate(old + n);
            if n == 0 {
                self.eof = true;
            }
            self.peak = self.peak.max(self.buf.capacity());
        }
        Ok(())
    }

    fn advance(&mut self, n: usize) {
        let n = n.min(self.buf.len());
        self.buf.drain(..n);
        self.offset += n;
    }

    /// Pulls and verifies the next segment.
    ///
    /// On error the stream does *not* advance past the damage:
    /// [`resync`](Self::resync) can scan onward from it.
    ///
    /// # Errors
    ///
    /// [`FormatError::BadMagic`], [`FormatError::UnsupportedVersion`],
    /// [`FormatError::Truncated`], [`FormatError::ChecksumMismatch`]
    /// for frame damage; [`FormatError::LimitExceeded`] when the
    /// declared length or segment count passes its cap;
    /// [`FormatError::Io`] when the source fails.
    pub fn next_segment(&mut self) -> Result<Option<Segment>, FormatError> {
        self.fill(FRAME_HEADER_LEN)?;
        if self.buf.is_empty() {
            return Ok(None);
        }
        if self.buf.len() < FRAME_HEADER_LEN {
            return Err(FormatError::Truncated {
                context: "segment frame header",
            });
        }
        if self.buf[..8] != SEGMENT_MAGIC {
            return Err(FormatError::BadMagic {
                offset: self.offset,
            });
        }
        let version = le_u32(&self.buf[8..12]);
        if version != SEGMENT_VERSION {
            return Err(FormatError::UnsupportedVersion { found: version });
        }
        let declared = le_u64(&self.buf[12..20]);
        let declared = usize::try_from(declared)
            .ok()
            .filter(|&d| d <= self.max_segment)
            .ok_or(FormatError::LimitExceeded {
                what: "segment bytes",
                limit: self.max_segment,
                actual: usize::try_from(declared).unwrap_or(usize::MAX),
            })?;
        self.records += 1;
        if self.records > self.max_records {
            return Err(FormatError::LimitExceeded {
                what: "segment count",
                limit: self.max_records,
                actual: self.records,
            });
        }
        let total = FRAME_HEADER_LEN + declared;
        self.fill(total)?;
        if self.buf.len() < total {
            return Err(FormatError::Truncated {
                context: "segment payload",
            });
        }
        let payload = unframe(&SEGMENT_MAGIC, SEGMENT_VERSION, &self.buf[..total]).map_err(
            |e| match e {
                FrameError::BadMagic => FormatError::BadMagic {
                    offset: self.offset,
                },
                FrameError::UnsupportedVersion { found } => {
                    FormatError::UnsupportedVersion { found }
                }
                FrameError::Truncated => FormatError::Truncated {
                    context: "segment payload",
                },
                FrameError::ChecksumMismatch => FormatError::ChecksumMismatch {
                    offset: self.offset,
                },
                _ => FormatError::Malformed {
                    line: 0,
                    offset: self.offset,
                    message: format!("frame refused: {e}"),
                },
            },
        )?;
        let Some((&kind, body)) = payload.split_first() else {
            return Err(FormatError::Malformed {
                line: 0,
                offset: self.offset,
                message: "segment payload missing its kind byte".into(),
            });
        };
        let seg = Segment {
            kind,
            payload: body.to_vec(),
            offset: self.offset,
        };
        self.advance(total);
        Ok(Some(seg))
    }

    /// Scans forward (at most `max_resync_bytes`) for the next segment
    /// magic after damage. Returns whether a candidate frame start was
    /// found; `false` means the tail of the stream is lost.
    ///
    /// # Errors
    ///
    /// [`FormatError::Io`] when the source fails.
    pub fn resync(&mut self) -> Result<bool, FormatError> {
        self.advance(1);
        let mut scanned = 0usize;
        loop {
            self.fill(SEGMENT_MAGIC.len().max(READ_CHUNK.min(self.max_segment)))?;
            if self.buf.len() < SEGMENT_MAGIC.len() {
                return Ok(false);
            }
            if let Some(pos) = self
                .buf
                .windows(SEGMENT_MAGIC.len())
                .position(|w| w == SEGMENT_MAGIC)
            {
                if scanned + pos > self.max_resync {
                    return Ok(false);
                }
                self.advance(pos);
                return Ok(true);
            }
            let keep = SEGMENT_MAGIC.len() - 1;
            let drop = self.buf.len() - keep;
            scanned += drop;
            if scanned > self.max_resync {
                return Ok(false);
            }
            self.advance(drop);
            if self.eof {
                return Ok(false);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fold: stream of segments -> ReadOutcome
// ---------------------------------------------------------------------------

/// Reads a `.slifb` document from a byte slice.
///
/// # Errors
///
/// See [`read_binary_from`].
pub fn read_binary(
    bytes: &[u8],
    strictness: Strictness,
    limits: &FormatLimits,
) -> Result<ReadOutcome, FormatError> {
    read_binary_from(bytes, strictness, limits)
}

/// Reads a `.slifb` document from any [`Read`] source without ever
/// buffering more than one segment.
///
/// # Errors
///
/// In [`Strictness::Strict`] mode any frame damage, malformed body,
/// missing or mismatched end-key trailer is a typed [`FormatError`].
/// In [`Strictness::Lenient`] mode a damaged segment is quarantined (a
/// deny-level diagnostic, contents dropped whole) and the reader
/// resyncs at the next segment magic; only resource caps, I/O
/// failures, and graph-limit refusals stay hard errors.
pub fn read_binary_from<R: Read>(
    src: R,
    strictness: Strictness,
    limits: &FormatLimits,
) -> Result<ReadOutcome, FormatError> {
    let lenient = strictness == Strictness::Lenient;
    let mut stream = Segments::new(src, limits);
    let mut fold = BinFold::new(limits);

    loop {
        match stream.next_segment() {
            Ok(None) => break,
            Ok(Some(seg)) => {
                if fold.done {
                    let e = FormatError::Malformed {
                        line: 0,
                        offset: seg.offset,
                        message: "segment after the end trailer".into(),
                    };
                    if !lenient {
                        return Err(e);
                    }
                    fold.deny(seg.offset, &e)?;
                    break;
                }
                match fold.apply(&seg) {
                    Ok(()) => {}
                    Err(e) if lenient && body_resyncable(&e) => fold.deny(seg.offset, &e)?,
                    Err(e) => return Err(e),
                }
            }
            Err(e) if lenient && frame_resyncable(&e) => {
                fold.deny(stream.offset, &e)?;
                if !stream.resync()? {
                    break;
                }
            }
            Err(e) => return Err(e),
        }
    }

    fold.finish(strictness, stream.peak_alloc_bytes())
}

/// Body-level errors a lenient reader may quarantine: the frame was
/// intact (checksum passed) but the contents refuse to decode or apply.
fn body_resyncable(e: &FormatError) -> bool {
    match e {
        FormatError::Malformed { .. } | FormatError::DuplicateSection { .. } => true,
        FormatError::Graph(slif_core::CoreError::LimitExceeded { .. }) => false,
        FormatError::Graph(_) => true,
        _ => false,
    }
}

/// Frame-level errors a lenient reader may scan past: damaged or
/// hostile framing, where the payload never entered memory.
fn frame_resyncable(e: &FormatError) -> bool {
    matches!(
        e,
        FormatError::BadMagic { .. }
            | FormatError::ChecksumMismatch { .. }
            | FormatError::Truncated { .. }
            | FormatError::UnsupportedVersion { .. }
            | FormatError::Malformed { .. }
            | FormatError::LimitExceeded {
                what: "segment bytes",
                ..
            }
    )
}

struct BinFold<'l> {
    limits: &'l FormatLimits,
    design: Option<Design>,
    partition: Option<Partition>,
    diagnostics: Vec<Diagnostic>,
    seen_classes: bool,
    seen_ports: bool,
    seen_components: bool,
    declared_key: Option<[u8; 32]>,
    done: bool,
}

impl<'l> BinFold<'l> {
    fn new(limits: &'l FormatLimits) -> Self {
        Self {
            limits,
            design: None,
            partition: None,
            diagnostics: Vec::new(),
            seen_classes: false,
            seen_ports: false,
            seen_components: false,
            declared_key: None,
            done: false,
        }
    }

    fn push_diag(&mut self, d: Diagnostic) -> Result<(), FormatError> {
        if self.diagnostics.len() >= self.limits.max_diagnostics {
            return Err(FormatError::LimitExceeded {
                what: "diagnostic count",
                limit: self.limits.max_diagnostics,
                actual: self.diagnostics.len() + 1,
            });
        }
        self.diagnostics.push(d);
        Ok(())
    }

    fn deny(&mut self, offset: usize, e: &FormatError) -> Result<(), FormatError> {
        self.push_diag(Diagnostic::error(
            Span::new(offset, offset, 0, 0),
            codes::WIRE_MALFORMED,
            format!("segment quarantined: {e}"),
        ))
    }

    fn warn(&mut self, offset: usize, message: String) -> Result<(), FormatError> {
        self.push_diag(Diagnostic::warning(
            Span::new(offset, offset, 0, 0),
            codes::WIRE_UNKNOWN_SECTION,
            message,
        ))
    }

    fn apply(&mut self, seg: &Segment) -> Result<(), FormatError> {
        let offset = seg.offset;
        let mal = |message: String| FormatError::Malformed {
            line: 0,
            offset,
            message,
        };
        let store = |e: StoreError| {
            FormatError::Malformed {
                line: 0,
                offset,
                message: match e {
                    StoreError::Corrupt { context } => format!("segment body: {context}"),
                    other => other.to_string(),
                },
            }
        };
        let mut d = Dec::new(&seg.payload);

        match seg.kind {
            SEG_HEADER => {
                if self.design.is_some() {
                    return Err(FormatError::DuplicateSection {
                        section: "header",
                        line: 0,
                    });
                }
                let name = std::str::from_utf8(d.bytes("design name").map_err(store)?)
                    .map_err(|_| mal("design name utf-8".into()))?
                    .to_owned();
                d.finish().map_err(store)?;
                self.design = Some(Design::new(name));
                Ok(())
            }
            SEG_END => {
                if self.declared_key.is_some() {
                    return Err(FormatError::DuplicateSection {
                        section: "end",
                        line: 0,
                    });
                }
                let raw = d.take(32, "end key").map_err(store)?;
                let mut key = [0u8; 32];
                key.copy_from_slice(raw);
                d.finish().map_err(store)?;
                self.declared_key = Some(key);
                self.done = true;
                Ok(())
            }
            SEG_GROUP => {
                validate_group(&seg.payload, 1, self.limits.max_nesting_depth)
                    .map_err(mal)?;
                self.warn(offset, "extension group segment skipped".into())
            }
            SEG_CLASSES | SEG_PORTS | SEG_NODES | SEG_CHANNELS | SEG_COMPONENTS
            | SEG_PARTITION => {
                let Some(mut design) = self.design.take() else {
                    return Err(mal("content segment before the header segment".into()));
                };
                let r = self.apply_content(&mut design, seg.kind, &mut d, offset);
                self.design = Some(design);
                r.and_then(|()| d.finish().map_err(store))
            }
            other => self.warn(offset, format!("unknown segment kind {other} skipped")),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn apply_content(
        &mut self,
        design: &mut Design,
        kind: u8,
        d: &mut Dec<'_>,
        offset: usize,
    ) -> Result<(), FormatError> {
        let mal = |message: String| FormatError::Malformed {
            line: 0,
            offset,
            message,
        };
        let store = |e: StoreError| {
            FormatError::Malformed {
                line: 0,
                offset,
                message: match e {
                    StoreError::Corrupt { context } => format!("segment body: {context}"),
                    other => other.to_string(),
                },
            }
        };
        let limits = &self.limits.graph;
        match kind {
            SEG_CLASSES => {
                if self.seen_classes {
                    return Err(FormatError::DuplicateSection {
                        section: "classes",
                        line: 0,
                    });
                }
                let count = d.u32("class count").map_err(store)?;
                let mut scratch = Vec::new();
                for _ in 0..count {
                    let name = utf8(d.bytes("class name").map_err(store)?, "class name", &mal)?;
                    let kind = match d.u8("class kind").map_err(store)? {
                        0 => ClassKind::StdProcessor,
                        1 => ClassKind::CustomHw,
                        2 => ClassKind::Memory,
                        _ => return Err(mal("class kind".into())),
                    };
                    scratch.push((name, kind));
                }
                for (name, kind) in scratch {
                    if design.class_by_name(&name).is_some() {
                        return Err(mal(format!("duplicate class `{name}`")));
                    }
                    design.add_class(name, kind);
                }
                self.seen_classes = true;
                Ok(())
            }
            SEG_PORTS => {
                if self.seen_ports {
                    return Err(FormatError::DuplicateSection {
                        section: "ports",
                        line: 0,
                    });
                }
                let count = d.u32("port count").map_err(store)?;
                let mut scratch = Vec::new();
                for _ in 0..count {
                    let name = utf8(d.bytes("port name").map_err(store)?, "port name", &mal)?;
                    let dir = match d.u8("port direction").map_err(store)? {
                        0 => PortDirection::In,
                        1 => PortDirection::Out,
                        2 => PortDirection::InOut,
                        _ => return Err(mal("port direction".into())),
                    };
                    let bits = d.u32("port bits").map_err(store)?;
                    scratch.push((name, dir, bits));
                }
                for (name, dir, bits) in scratch {
                    design
                        .graph_mut()
                        .try_add_port_bounded(name, dir, bits, limits)?;
                }
                self.seen_ports = true;
                Ok(())
            }
            SEG_NODES => {
                let count = d.u32("node count").map_err(store)?;
                let mut scratch = Vec::new();
                for _ in 0..count {
                    let name = utf8(d.bytes("node name").map_err(store)?, "node name", &mal)?;
                    let kind = match d.u8("node kind").map_err(store)? {
                        0 => NodeKind::process(),
                        1 => NodeKind::procedure(),
                        2 => {
                            let words = d.u64("variable words").map_err(store)?;
                            let bits = d.u32("variable word bits").map_err(store)?;
                            NodeKind::array(words, bits)
                        }
                        _ => return Err(mal("node kind".into())),
                    };
                    let ict_count = d.u32("ict count").map_err(store)?;
                    let mut icts = Vec::new();
                    for _ in 0..ict_count {
                        let k = class_ord(design, d.u32("ict class").map_err(store)?, &mal)?;
                        icts.push((k, d.u64("ict value").map_err(store)?));
                    }
                    let size_count = d.u32("size count").map_err(store)?;
                    let mut sizes = Vec::new();
                    for _ in 0..size_count {
                        let k = class_ord(design, d.u32("size class").map_err(store)?, &mal)?;
                        let val = d.u64("size value").map_err(store)?;
                        let entry = match d.u8("size datapath flag").map_err(store)? {
                            0 => WeightEntry::new(k, val),
                            1 => {
                                let dp = d.u64("size datapath").map_err(store)?;
                                if dp > val {
                                    return Err(mal(format!(
                                        "datapath {dp} exceeds total weight {val}"
                                    )));
                                }
                                WeightEntry::with_datapath(k, val, dp)
                            }
                            _ => return Err(mal("size datapath flag".into())),
                        };
                        sizes.push(entry);
                    }
                    scratch.push((name, kind, icts, sizes));
                }
                for (name, kind, icts, sizes) in scratch {
                    let id = design.graph_mut().try_add_node_bounded(name, kind, limits)?;
                    let node = design.graph_mut().node_mut(id);
                    for (k, v) in icts {
                        node.ict_mut().set(k, v);
                    }
                    for e in sizes {
                        node.size_mut().insert(e);
                    }
                }
                Ok(())
            }
            SEG_CHANNELS => {
                let count = d.u32("channel count").map_err(store)?;
                let mut scratch = Vec::new();
                for _ in 0..count {
                    let src_ord = d.u32("channel src").map_err(store)? as usize;
                    if src_ord >= design.graph().node_count() {
                        return Err(mal("channel src ordinal".into()));
                    }
                    let src = NodeId::from_raw(src_ord as u32);
                    let dst = match d.u8("channel dst tag").map_err(store)? {
                        0 => {
                            let o = d.u32("channel dst node").map_err(store)? as usize;
                            if o >= design.graph().node_count() {
                                return Err(mal("channel dst node ordinal".into()));
                            }
                            AccessTarget::Node(NodeId::from_raw(o as u32))
                        }
                        1 => {
                            let o = d.u32("channel dst port").map_err(store)? as usize;
                            if o >= design.graph().port_count() {
                                return Err(mal("channel dst port ordinal".into()));
                            }
                            AccessTarget::Port(PortId::from_raw(o as u32))
                        }
                        _ => return Err(mal("channel dst tag".into())),
                    };
                    let kind = match d.u8("channel kind").map_err(store)? {
                        0 => AccessKind::Call,
                        1 => AccessKind::Read,
                        2 => AccessKind::Write,
                        3 => AccessKind::Message,
                        _ => return Err(mal("channel kind".into())),
                    };
                    let avg = d.f64("channel freq avg").map_err(store)?;
                    let min = d.u64("channel freq min").map_err(store)?;
                    let max = d.u64("channel freq max").map_err(store)?;
                    let bits = d.u32("channel bits").map_err(store)?;
                    let tag = match d.u8("channel tag flag").map_err(store)? {
                        0 => ConcurrencyTag::SEQUENTIAL,
                        1 => ConcurrencyTag::group(d.u32("channel tag group").map_err(store)?),
                        _ => return Err(mal("channel tag flag".into())),
                    };
                    scratch.push((src, dst, kind, AccessFreq::new(avg, min, max), bits, tag));
                }
                for (src, dst, kind, freq, bits, tag) in scratch {
                    let id = design
                        .graph_mut()
                        .try_add_channel_bounded(src, dst, kind, limits)?;
                    let ch = design.graph_mut().channel_mut(id);
                    *ch.freq_mut() = freq;
                    ch.set_bits(bits);
                    ch.set_tag(tag);
                }
                Ok(())
            }
            SEG_COMPONENTS => {
                if self.seen_components {
                    return Err(FormatError::DuplicateSection {
                        section: "components",
                        line: 0,
                    });
                }
                let pcount = d.u32("processor count").map_err(store)?;
                let mut procs = Vec::new();
                for _ in 0..pcount {
                    let name =
                        utf8(d.bytes("processor name").map_err(store)?, "processor name", &mal)?;
                    let k = class_ord(design, d.u32("processor class").map_err(store)?, &mal)?;
                    if !design.class(k).kind().holds_behaviors() {
                        return Err(mal(format!("class of processor `{name}` is a memory class")));
                    }
                    let flags = d.u8("processor flags").map_err(store)?;
                    if flags > 3 {
                        return Err(mal("processor flags".into()));
                    }
                    let mut proc = Processor::new(name, k);
                    if flags & 1 != 0 {
                        proc = proc.with_size_constraint(d.u64("processor size").map_err(store)?);
                    }
                    if flags & 2 != 0 {
                        proc = proc.with_pin_constraint(d.u32("processor pins").map_err(store)?);
                    }
                    procs.push(proc);
                }
                let mcount = d.u32("memory count").map_err(store)?;
                let mut mems = Vec::new();
                for _ in 0..mcount {
                    let name = utf8(d.bytes("memory name").map_err(store)?, "memory name", &mal)?;
                    let k = class_ord(design, d.u32("memory class").map_err(store)?, &mal)?;
                    if design.class(k).kind() != ClassKind::Memory {
                        return Err(mal(format!("class of memory `{name}` is not a memory class")));
                    }
                    let mut mem = Memory::new(name, k);
                    match d.u8("memory size flag").map_err(store)? {
                        0 => {}
                        1 => mem = mem.with_size_constraint(d.u64("memory size").map_err(store)?),
                        _ => return Err(mal("memory size flag".into())),
                    }
                    mems.push(mem);
                }
                let bcount = d.u32("bus count").map_err(store)?;
                let mut buses = Vec::new();
                for _ in 0..bcount {
                    let name = utf8(d.bytes("bus name").map_err(store)?, "bus name", &mal)?;
                    let width = d.u32("bus width").map_err(store)?;
                    if width == 0 {
                        return Err(mal(format!("bus `{name}` has zero width")));
                    }
                    let ts = d.u64("bus ts").map_err(store)?;
                    let td = d.u64("bus td").map_err(store)?;
                    let mut bus = Bus::new(name, width, ts, td);
                    match d.u8("bus capacity flag").map_err(store)? {
                        0 => {}
                        1 => bus = bus.with_capacity(d.f64("bus capacity").map_err(store)?),
                        _ => return Err(mal("bus capacity flag".into())),
                    }
                    buses.push(bus);
                }
                for p in procs {
                    if design.processor_by_name(p.name()).is_some() {
                        return Err(mal(format!("duplicate processor `{}`", p.name())));
                    }
                    design.add_processor_instance(p);
                }
                for m in mems {
                    if design.memory_by_name(m.name()).is_some() {
                        return Err(mal(format!("duplicate memory `{}`", m.name())));
                    }
                    design.add_memory_instance(m);
                }
                for b in buses {
                    if design.bus_by_name(b.name()).is_some() {
                        return Err(mal(format!("duplicate bus `{}`", b.name())));
                    }
                    design.add_bus(b);
                }
                self.seen_components = true;
                Ok(())
            }
            SEG_PARTITION => {
                let mut part = match self.partition.take() {
                    Some(p) => p,
                    None => Partition::new(design),
                };
                let mcount = d.u32("partition map count").map_err(store)?;
                let mut maps = Vec::new();
                for _ in 0..mcount {
                    let n = d.u32("partition node").map_err(store)? as usize;
                    if n >= design.graph().node_count() {
                        self.partition = Some(part);
                        return Err(mal("partition node ordinal".into()));
                    }
                    let pm = match d.u8("partition component tag").map_err(store)? {
                        0 => {
                            let o = d.u32("partition processor").map_err(store)? as usize;
                            if o >= design.processor_count() {
                                self.partition = Some(part);
                                return Err(mal("partition processor ordinal".into()));
                            }
                            PmRef::Processor(slif_core::ProcessorId::from_raw(o as u32))
                        }
                        1 => {
                            let o = d.u32("partition memory").map_err(store)? as usize;
                            if o >= design.memory_count() {
                                self.partition = Some(part);
                                return Err(mal("partition memory ordinal".into()));
                            }
                            PmRef::Memory(slif_core::MemoryId::from_raw(o as u32))
                        }
                        _ => {
                            self.partition = Some(part);
                            return Err(mal("partition component tag".into()));
                        }
                    };
                    maps.push((NodeId::from_raw(n as u32), pm));
                }
                let ccount = d.u32("partition channel count").map_err(store)?;
                let mut chans = Vec::new();
                for _ in 0..ccount {
                    let c = d.u32("partition channel").map_err(store)? as usize;
                    let b = d.u32("partition bus").map_err(store)? as usize;
                    if c >= design.graph().channel_count() || b >= design.bus_count() {
                        self.partition = Some(part);
                        return Err(mal("partition channel assignment".into()));
                    }
                    chans.push((
                        ChannelId::from_raw(c as u32),
                        slif_core::BusId::from_raw(b as u32),
                    ));
                }
                for (n, pm) in maps {
                    part.assign_node(n, pm);
                }
                for (c, b) in chans {
                    part.assign_channel(c, b);
                }
                self.partition = Some(part);
                Ok(())
            }
            _ => unreachable!("apply_content called for non-content kind"),
        }
    }

    fn finish(
        mut self,
        strictness: Strictness,
        peak_alloc_bytes: usize,
    ) -> Result<ReadOutcome, FormatError> {
        let lenient = strictness == Strictness::Lenient;
        if !self.done {
            if !lenient {
                return Err(FormatError::Truncated {
                    context: "end trailer segment",
                });
            }
            self.push_diag(Diagnostic::error(
                Span::dummy(),
                codes::WIRE_MALFORMED,
                "input ended without an end trailer segment",
            ))?;
        }
        let Some(design) = self.design.take() else {
            return Err(FormatError::MissingSection { section: "design" });
        };
        design.graph().check_limits(&self.limits.graph)?;

        let actual = ContentKey::of(&slif_store::encode_design(&design));
        let verified = match self.declared_key {
            Some(declared) if declared == actual.0 => true,
            Some(declared) => {
                let e = FormatError::ContentMismatch {
                    declared: ContentKey(declared).to_hex(),
                    actual: actual.to_hex(),
                };
                if !lenient {
                    return Err(e);
                }
                self.push_diag(Diagnostic::error(
                    Span::dummy(),
                    codes::WIRE_CONTENT_MISMATCH,
                    e.to_string(),
                ))?;
                false
            }
            None => false,
        };

        Ok(ReadOutcome {
            design,
            partition: self.partition,
            diagnostics: self.diagnostics,
            verified,
            peak_alloc_bytes,
        })
    }
}

fn utf8(
    raw: &[u8],
    what: &'static str,
    mal: &dyn Fn(String) -> FormatError,
) -> Result<String, FormatError> {
    std::str::from_utf8(raw)
        .map(str::to_owned)
        .map_err(|_| mal(format!("{what} utf-8")))
}

fn class_ord(
    design: &Design,
    ord: u32,
    mal: &dyn Fn(String) -> FormatError,
) -> Result<ClassId, FormatError> {
    if (ord as usize) < design.class_count() {
        Ok(ClassId::from_raw(ord))
    } else {
        Err(mal("class ordinal out of range".into()))
    }
}

/// Checks that a group segment's payload is a well-formed sequence of
/// nested frames, recursing into nested groups up to `max_depth`.
fn validate_group(payload: &[u8], depth: usize, max_depth: usize) -> Result<(), String> {
    if depth > max_depth {
        return Err(format!("group nesting deeper than {max_depth}"));
    }
    let mut pos = 0usize;
    while pos < payload.len() {
        let rest = &payload[pos..];
        if rest.len() < FRAME_HEADER_LEN {
            return Err("truncated nested frame header".into());
        }
        if rest[..8] != SEGMENT_MAGIC {
            return Err("nested frame magic".into());
        }
        let declared = le_u64(&rest[12..20]);
        let declared = usize::try_from(declared).map_err(|_| "nested frame length".to_string())?;
        let total = FRAME_HEADER_LEN
            .checked_add(declared)
            .ok_or_else(|| "nested frame length".to_string())?;
        if total > rest.len() {
            return Err("nested frame overruns its group".into());
        }
        let inner = &rest[FRAME_HEADER_LEN..total];
        if let Some((&kind, body)) = inner.split_first() {
            if kind == SEG_GROUP {
                validate_group(body, depth + 1, max_depth)?;
            }
        }
        pos += total;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::testutil::sample_design;
    use super::*;

    fn write(d: &Design, p: Option<&Partition>) -> Vec<u8> {
        let mut out = Vec::new();
        write_binary(d, p, &mut out).expect("write");
        out
    }

    /// Byte offsets of every frame in `bytes`.
    fn frames(bytes: &[u8]) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        let mut pos = 0;
        while pos + FRAME_HEADER_LEN <= bytes.len() {
            let len = le_u64(&bytes[pos + 12..pos + 20]) as usize;
            let total = FRAME_HEADER_LEN + len;
            spans.push((pos, total));
            pos += total;
        }
        spans
    }

    #[test]
    fn round_trip_is_identity_and_byte_stable() {
        let (d, p) = sample_design();
        let bytes = write(&d, Some(&p));
        let out =
            read_binary(&bytes, Strictness::Strict, &FormatLimits::default()).expect("read");
        assert_eq!(out.design, d);
        assert_eq!(out.partition.as_ref(), Some(&p));
        assert!(out.verified);
        assert!(out.diagnostics.is_empty());
        let second = write(&out.design, out.partition.as_ref());
        assert_eq!(second, bytes, "second write must be byte-identical");
    }

    #[test]
    fn bit_flips_are_caught_by_the_frame_checksum() {
        let (d, p) = sample_design();
        let clean = write(&d, Some(&p));
        // Flip one bit in every payload byte position of the 2nd frame.
        let (start, total) = frames(&clean)[1];
        let mut hit = 0;
        for i in start + FRAME_HEADER_LEN..start + total {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x10;
            let err = read_binary(&bytes, Strictness::Strict, &FormatLimits::default())
                .expect_err("strict must refuse");
            assert!(
                matches!(err, FormatError::ChecksumMismatch { .. }),
                "{err:?}"
            );
            hit += 1;
        }
        assert!(hit > 0);
    }

    #[test]
    fn lenient_mode_quarantines_a_damaged_segment_and_resyncs() {
        let (d, p) = sample_design();
        let mut bytes = write(&d, Some(&p));
        let (start, total) = frames(&bytes)[3]; // a nodes chunk
        bytes[start + total - 1] ^= 0x01;
        let out =
            read_binary(&bytes, Strictness::Lenient, &FormatLimits::default()).expect("salvage");
        assert!(!out.verified, "damaged input must not verify");
        assert!(out.has_denials());
        assert_eq!(out.design.name(), d.name());
    }

    #[test]
    fn truncation_is_refused() {
        let (d, _) = sample_design();
        let bytes = write(&d, None);
        for cut in [bytes.len() - 1, bytes.len() - 40, 40, 10] {
            let err = read_binary(&bytes[..cut], Strictness::Strict, &FormatLimits::default())
                .expect_err("must refuse");
            assert!(
                matches!(
                    err,
                    FormatError::Truncated { .. } | FormatError::ChecksumMismatch { .. }
                ),
                "cut={cut}: {err:?}"
            );
            // Lenient: salvages or reports, never panics or verifies.
            match read_binary(&bytes[..cut], Strictness::Lenient, &FormatLimits::default()) {
                Ok(out) => assert!(!out.verified),
                Err(e) => assert!(
                    matches!(e, FormatError::MissingSection { .. }),
                    "cut={cut}: {e:?}"
                ),
            }
        }
    }

    #[test]
    fn hostile_declared_length_is_refused_before_allocation() {
        let (d, _) = sample_design();
        let mut bytes = write(&d, None);
        let (start, _) = frames(&bytes)[2];
        bytes[start + 12..start + 20].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        let err = read_binary(&bytes, Strictness::Strict, &FormatLimits::default())
            .expect_err("must refuse");
        assert!(
            matches!(err, FormatError::LimitExceeded { what: "segment bytes", .. }),
            "{err:?}"
        );
        // Lenient resyncs past the hostile frame; the design loses that
        // segment so it cannot verify, but nothing allocates or panics.
        let out =
            read_binary(&bytes, Strictness::Lenient, &FormatLimits::default()).expect("salvage");
        assert!(!out.verified);
    }

    #[test]
    fn unknown_segment_kinds_are_skipped_with_a_warning() {
        let (d, _) = sample_design();
        let bytes = write(&d, None);
        let spans = frames(&bytes);
        let (end_start, _) = spans[spans.len() - 1];
        let mut with_ext = bytes[..end_start].to_vec();
        with_ext.extend_from_slice(&frame(&SEGMENT_MAGIC, SEGMENT_VERSION, &[200u8, 1, 2, 3]));
        with_ext.extend_from_slice(&bytes[end_start..]);
        let out =
            read_binary(&with_ext, Strictness::Strict, &FormatLimits::default()).expect("read");
        assert_eq!(out.design, d);
        assert!(out.verified);
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].code(), codes::WIRE_UNKNOWN_SECTION);
    }

    #[test]
    fn group_segments_validate_nesting_depth() {
        let (d, _) = sample_design();
        let bytes = write(&d, None);
        let spans = frames(&bytes);
        let (end_start, _) = spans[spans.len() - 1];
        // A tower of nested group frames deeper than the cap.
        let mut inner = frame(&SEGMENT_MAGIC, SEGMENT_VERSION, &[SEG_GROUP]);
        for _ in 0..32 {
            let mut payload = vec![SEG_GROUP];
            payload.extend_from_slice(&inner);
            inner = frame(&SEGMENT_MAGIC, SEGMENT_VERSION, &payload);
        }
        let mut hostile = bytes[..end_start].to_vec();
        hostile.extend_from_slice(&inner);
        hostile.extend_from_slice(&bytes[end_start..]);
        let err = read_binary(&hostile, Strictness::Strict, &FormatLimits::default())
            .expect_err("must refuse");
        assert!(matches!(err, FormatError::Malformed { .. }), "{err:?}");
        // A shallow group is fine: validated, warned about, skipped.
        let shallow = frame(
            &SEGMENT_MAGIC,
            SEGMENT_VERSION,
            &{
                let mut p = vec![SEG_GROUP];
                p.extend_from_slice(&frame(&SEGMENT_MAGIC, SEGMENT_VERSION, &[200u8]));
                p
            },
        );
        let mut ok = bytes[..end_start].to_vec();
        ok.extend_from_slice(&shallow);
        ok.extend_from_slice(&bytes[end_start..]);
        let out = read_binary(&ok, Strictness::Strict, &FormatLimits::default()).expect("read");
        assert!(out.verified);
    }

    #[test]
    fn duplicated_segments_cannot_smuggle_a_wrong_answer() {
        let (d, _) = sample_design();
        let bytes = write(&d, None);
        // Duplicate each frame in turn; strict must refuse every time
        // (duplicate section, duplicate name, or content mismatch) and
        // lenient must never return a verified wrong design.
        for (i, &(start, total)) in frames(&bytes).iter().enumerate() {
            let mut dup = bytes[..start + total].to_vec();
            dup.extend_from_slice(&bytes[start..start + total]);
            dup.extend_from_slice(&bytes[start + total..]);
            let strict = read_binary(&dup, Strictness::Strict, &FormatLimits::default());
            assert!(strict.is_err(), "frame {i}: duplicate must not verify");
            if let Ok(out) = read_binary(&dup, Strictness::Lenient, &FormatLimits::default()) {
                if out.verified {
                    assert_eq!(out.design, d, "frame {i}: verified implies identical");
                }
            }
        }
    }

    #[test]
    fn reader_buffers_segments_not_files() {
        let (d, p) = sample_design();
        let bytes = write(&d, Some(&p));
        let out =
            read_binary(&bytes, Strictness::Strict, &FormatLimits::default()).expect("read");
        assert!(
            out.peak_alloc_bytes < 1 << 20,
            "peak {} should be O(segment)",
            out.peak_alloc_bytes
        );
    }

    #[test]
    fn garbage_prefix_is_bad_magic_then_resyncable() {
        let (d, _) = sample_design();
        let bytes = write(&d, None);
        let mut noisy = b"not a slif file".to_vec();
        noisy.extend_from_slice(&bytes);
        let err = read_binary(&noisy, Strictness::Strict, &FormatLimits::default())
            .expect_err("must refuse");
        assert!(matches!(err, FormatError::BadMagic { .. }), "{err:?}");
        let out =
            read_binary(&noisy, Strictness::Lenient, &FormatLimits::default()).expect("salvage");
        assert_eq!(out.design, d);
        assert!(out.verified, "resync recovers the whole intact stream");
    }
}
