//! The line-oriented `.slif` text encoding.
//!
//! ```text
//! slif-wire 1
//! [design]
//! design fuzzy
//! class proc8 std-processor
//! port sensor in 8
//! node main process
//! node membership variable 256 8
//! channel main membership read freq 2.0 1 4 bits 8 tag seq
//! processor cpu proc8 size 100000 pins 120
//! memory ram mem1 size 65536
//! bus b1 16 2 1 cap 4000.0
//! [annotations]
//! ict main proc8 1200
//! size main proc8 4000 dp 1500
//! [partition]
//! map main cpu
//! chan 0 b1
//! [end]
//! check <64 hex chars: SHA-256 of the design's canonical bytes>
//! ```
//!
//! Blank lines and `#` comments are skipped everywhere. Sections must
//! appear in the order above; `[annotations]` and `[partition]` may be
//! empty, `[partition]` may be absent. Unknown sections are skipped
//! with a warning; their bodies may nest `{`-blocks (a line ending in
//! `{` opens one, a `}` line closes one) up to
//! [`FormatLimits::max_nesting_depth`].
//!
//! The reader is a pull parser: [`TextRecords`] buffers at most one
//! line (capped at [`FormatLimits::max_line_bytes`]), so peak memory is
//! O(line), not O(file). In [`Strictness::Lenient`] mode a malformed
//! record becomes a deny-level diagnostic and the reader resyncs at the
//! next `[section]` header; in [`Strictness::Strict`] mode it is a
//! typed [`FormatError`].

use std::io::{Read, Write};
use std::ops::Range;

use slif_core::{
    AccessFreq, AccessKind, AccessTarget, Bus, ClassKind, ConcurrencyTag, Design, Memory,
    NodeKind, Partition, PmRef, PortDirection, Processor, WeightEntry,
};
use slif_speclang::{codes, Diagnostic, Span};
use slif_store::ContentKey;

use super::{
    io_err, FormatError, FormatLimits, ReadOutcome, Strictness, TEXT_MAGIC, TEXT_VERSION,
};

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn check_name(what: &'static str, name: &str) -> Result<(), FormatError> {
    let bad = name.is_empty()
        || name.starts_with('[')
        || name.starts_with('#')
        || name.chars().any(|c| c.is_whitespace() || c.is_control());
    if bad {
        return Err(FormatError::Unencodable {
            message: format!("{what} name {name:?} cannot be carried by the line grammar"),
        });
    }
    Ok(())
}

fn class_kind_str(k: ClassKind) -> &'static str {
    match k {
        ClassKind::StdProcessor => "std-processor",
        ClassKind::CustomHw => "custom-hw",
        ClassKind::Memory => "memory",
    }
}

fn direction_str(d: PortDirection) -> &'static str {
    match d {
        PortDirection::In => "in",
        PortDirection::Out => "out",
        PortDirection::InOut => "inout",
    }
}

fn access_kind_str(k: AccessKind) -> &'static str {
    match k {
        AccessKind::Call => "call",
        AccessKind::Read => "read",
        AccessKind::Write => "write",
        AccessKind::Message => "message",
    }
}

/// Writes `design` (and `partition`, when given) as `.slif` text.
///
/// The output is deterministic — equal inputs produce identical bytes —
/// and lines are emitted one at a time, so the writer never buffers the
/// whole file.
///
/// # Errors
///
/// [`FormatError::Unencodable`] when an object name cannot be carried
/// by the line grammar (whitespace, control characters, a leading `[`
/// or `#`); [`FormatError::Io`] when the sink fails.
pub fn write_text<W: Write>(
    design: &Design,
    partition: Option<&Partition>,
    w: &mut W,
) -> Result<(), FormatError> {
    let wr = |e: &std::io::Error| io_err("text write", e);
    let g = design.graph();

    check_name("design", design.name())?;
    writeln!(w, "{TEXT_MAGIC} {TEXT_VERSION}").map_err(|e| wr(&e))?;
    writeln!(w, "[design]").map_err(|e| wr(&e))?;
    writeln!(w, "design {}", design.name()).map_err(|e| wr(&e))?;

    for k in design.class_ids() {
        let c = design.class(k);
        check_name("class", c.name())?;
        writeln!(w, "class {} {}", c.name(), class_kind_str(c.kind())).map_err(|e| wr(&e))?;
    }
    for p in g.port_ids() {
        let port = g.port(p);
        check_name("port", port.name())?;
        writeln!(
            w,
            "port {} {} {}",
            port.name(),
            direction_str(port.direction()),
            port.bits()
        )
        .map_err(|e| wr(&e))?;
    }
    for n in g.node_ids() {
        let node = g.node(n);
        check_name("node", node.name())?;
        match node.kind() {
            NodeKind::Behavior { process: true } => {
                writeln!(w, "node {} process", node.name()).map_err(|e| wr(&e))?;
            }
            NodeKind::Behavior { process: false } => {
                writeln!(w, "node {} procedure", node.name()).map_err(|e| wr(&e))?;
            }
            NodeKind::Variable { words, word_bits } => {
                writeln!(w, "node {} variable {} {}", node.name(), words, word_bits)
                    .map_err(|e| wr(&e))?;
            }
        }
    }
    for c in g.channel_ids() {
        let ch = g.channel(c);
        let dst = match ch.dst() {
            AccessTarget::Node(n) => g.node(n).name(),
            AccessTarget::Port(p) => g.port(p).name(),
        };
        let f = ch.freq();
        write!(
            w,
            "channel {} {} {} freq {:?} {} {} bits {} tag ",
            g.node(ch.src()).name(),
            dst,
            access_kind_str(ch.kind()),
            f.avg,
            f.min,
            f.max,
            ch.bits()
        )
        .map_err(|e| wr(&e))?;
        match ch.tag().id() {
            None => writeln!(w, "seq").map_err(|e| wr(&e))?,
            Some(grp) => writeln!(w, "grp {grp}").map_err(|e| wr(&e))?,
        }
    }
    for p in design.processor_ids() {
        let proc = design.processor(p);
        check_name("processor", proc.name())?;
        write!(
            w,
            "processor {} {}",
            proc.name(),
            design.class(proc.class()).name()
        )
        .map_err(|e| wr(&e))?;
        if let Some(s) = proc.size_constraint() {
            write!(w, " size {s}").map_err(|e| wr(&e))?;
        }
        if let Some(pins) = proc.pin_constraint() {
            write!(w, " pins {pins}").map_err(|e| wr(&e))?;
        }
        writeln!(w).map_err(|e| wr(&e))?;
    }
    for m in design.memory_ids() {
        let mem = design.memory(m);
        check_name("memory", mem.name())?;
        write!(
            w,
            "memory {} {}",
            mem.name(),
            design.class(mem.class()).name()
        )
        .map_err(|e| wr(&e))?;
        if let Some(s) = mem.size_constraint() {
            write!(w, " size {s}").map_err(|e| wr(&e))?;
        }
        writeln!(w).map_err(|e| wr(&e))?;
    }
    for b in design.bus_ids() {
        let bus = design.bus(b);
        check_name("bus", bus.name())?;
        write!(
            w,
            "bus {} {} {} {}",
            bus.name(),
            bus.bitwidth(),
            bus.ts(),
            bus.td()
        )
        .map_err(|e| wr(&e))?;
        if let Some(cap) = bus.capacity() {
            write!(w, " cap {cap:?}").map_err(|e| wr(&e))?;
        }
        writeln!(w).map_err(|e| wr(&e))?;
    }

    writeln!(w, "[annotations]").map_err(|e| wr(&e))?;
    for n in g.node_ids() {
        let node = g.node(n);
        for e in node.ict().iter() {
            writeln!(
                w,
                "ict {} {} {}",
                node.name(),
                design.class(e.class).name(),
                e.val
            )
            .map_err(|e| wr(&e))?;
        }
        for e in node.size().iter() {
            write!(
                w,
                "size {} {} {}",
                node.name(),
                design.class(e.class).name(),
                e.val
            )
            .map_err(|e| wr(&e))?;
            if let Some(dp) = e.datapath {
                write!(w, " dp {dp}").map_err(|e| wr(&e))?;
            }
            writeln!(w).map_err(|e| wr(&e))?;
        }
    }

    if let Some(part) = partition {
        writeln!(w, "[partition]").map_err(|e| wr(&e))?;
        for n in g.node_ids() {
            if let Some(comp) = part.node_component(n) {
                let comp_name = match comp {
                    PmRef::Processor(p) => design.processor(p).name(),
                    PmRef::Memory(m) => design.memory(m).name(),
                };
                writeln!(w, "map {} {}", g.node(n).name(), comp_name).map_err(|e| wr(&e))?;
            }
        }
        for c in g.channel_ids() {
            if let Some(bus) = part.channel_bus(c) {
                writeln!(w, "chan {} {}", c.index(), design.bus(bus).name())
                    .map_err(|e| wr(&e))?;
            }
        }
    }

    writeln!(w, "[end]").map_err(|e| wr(&e))?;
    let key = ContentKey::of(&slif_store::encode_design(design));
    writeln!(w, "check {}", key.to_hex()).map_err(|e| wr(&e))?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Pull parser
// ---------------------------------------------------------------------------

/// One event pulled from a `.slif` byte stream.
#[derive(Debug)]
pub enum TextEvent<'a> {
    /// A `[section]` header line (raw bytes include the brackets).
    Section {
        /// The trimmed header line.
        raw: &'a [u8],
        /// 1-based line number.
        line: usize,
        /// Byte offset of the line start.
        offset: usize,
    },
    /// Any other non-blank, non-comment line.
    Record {
        /// The trimmed line.
        raw: &'a [u8],
        /// 1-based line number.
        line: usize,
        /// Byte offset of the line start.
        offset: usize,
    },
}

/// A bounded, incremental line stream over `.slif` bytes.
///
/// Holds at most one (cap-checked) line plus one read chunk in memory;
/// [`peak_alloc_bytes`](Self::peak_alloc_bytes) reports the high-water
/// mark as evidence.
#[derive(Debug)]
pub struct TextRecords<R> {
    src: R,
    buf: Vec<u8>,
    pending_consume: usize,
    eof: bool,
    line_no: usize,
    offset: usize,
    peak: usize,
    sections: usize,
    max_line: usize,
    max_depth: usize,
    max_records: usize,
}

const READ_CHUNK: usize = 8 << 10;

impl<R: Read> TextRecords<R> {
    /// Starts pulling lines from `src` under `limits`.
    pub fn new(src: R, limits: &FormatLimits) -> Self {
        Self {
            src,
            buf: Vec::new(),
            pending_consume: 0,
            eof: false,
            line_no: 0,
            offset: 0,
            peak: 0,
            sections: 0,
            max_line: limits.max_line_bytes,
            max_depth: limits.max_nesting_depth,
            max_records: limits.max_records,
        }
    }

    /// High-water mark of the internal buffer, in bytes.
    pub fn peak_alloc_bytes(&self) -> usize {
        self.peak
    }

    /// Pulls the next line as a range into the internal buffer, plus
    /// its line number and byte offset. Trims an optional trailing
    /// `\r`. The range stays valid until the next call.
    fn next_line(&mut self) -> Result<Option<(Range<usize>, usize, usize)>, FormatError> {
        if self.pending_consume > 0 {
            self.buf.drain(..self.pending_consume);
            self.pending_consume = 0;
        }
        let mut searched = 0;
        loop {
            if let Some(i) = self.buf[searched..].iter().position(|&b| b == b'\n') {
                let nl = searched + i;
                if nl > self.max_line {
                    return Err(FormatError::LimitExceeded {
                        what: "line bytes",
                        limit: self.max_line,
                        actual: nl,
                    });
                }
                self.line_no += 1;
                let offset = self.offset;
                self.offset += nl + 1;
                self.pending_consume = nl + 1;
                let mut end = nl;
                if end > 0 && self.buf[end - 1] == b'\r' {
                    end -= 1;
                }
                return Ok(Some((0..end, self.line_no, offset)));
            }
            searched = self.buf.len();
            if searched > self.max_line {
                return Err(FormatError::LimitExceeded {
                    what: "line bytes",
                    limit: self.max_line,
                    actual: searched,
                });
            }
            if self.eof {
                if self.buf.is_empty() {
                    return Ok(None);
                }
                self.line_no += 1;
                let offset = self.offset;
                self.offset += self.buf.len();
                self.pending_consume = self.buf.len();
                return Ok(Some((0..self.buf.len(), self.line_no, offset)));
            }
            let old = self.buf.len();
            self.buf.resize(old + READ_CHUNK, 0);
            let n = self
                .src
                .read(&mut self.buf[old..])
                .map_err(|e| io_err("text read", &e))?;
            self.buf.truncate(old + n);
            if n == 0 {
                self.eof = true;
            }
            self.peak = self.peak.max(self.buf.capacity());
        }
    }

    /// Pulls the next event, skipping blank lines and `#` comments.
    ///
    /// # Errors
    ///
    /// [`FormatError::LimitExceeded`] at the line or section caps,
    /// [`FormatError::Io`] when the source fails.
    pub fn next_event(&mut self) -> Result<Option<TextEvent<'_>>, FormatError> {
        let (range, line, offset, is_section);
        loop {
            match self.next_line()? {
                None => return Ok(None),
                Some((r, l, o)) => {
                    let t = trim_range(&self.buf, r);
                    if t.is_empty() || self.buf[t.start] == b'#' {
                        continue;
                    }
                    let sec = self.buf[t.start] == b'[';
                    if sec {
                        self.sections += 1;
                        if self.sections > self.max_records {
                            return Err(FormatError::LimitExceeded {
                                what: "section count",
                                limit: self.max_records,
                                actual: self.sections,
                            });
                        }
                    }
                    (range, line, offset, is_section) = (t, l, o, sec);
                    break;
                }
            }
        }
        let raw = &self.buf[range];
        Ok(Some(if is_section {
            TextEvent::Section { raw, line, offset }
        } else {
            TextEvent::Record { raw, line, offset }
        }))
    }

    /// Consumes lines up to (not including) the next `[section]` header
    /// at nesting depth zero — the lenient reader's resync, and how
    /// unknown sections are skipped. With `allow_nesting`, a line
    /// ending in `{` opens a block and a `}` line closes one; section
    /// headers inside a block are content. Depth is capped.
    ///
    /// # Errors
    ///
    /// [`FormatError::LimitExceeded`] at the nesting-depth or line
    /// caps, [`FormatError::Io`] when the source fails.
    pub fn skip_to_next_section(&mut self, allow_nesting: bool) -> Result<(), FormatError> {
        let mut depth: usize = 0;
        loop {
            let saved_line = self.line_no;
            let saved_offset = self.offset;
            let Some((r, _, _)) = self.next_line()? else {
                return Ok(());
            };
            let t = trim_range(&self.buf, r);
            if t.is_empty() || self.buf[t.start] == b'#' {
                continue;
            }
            if depth == 0 && self.buf[t.start] == b'[' {
                // Un-read the header: it stays buffered for next_event.
                self.pending_consume = 0;
                self.line_no = saved_line;
                self.offset = saved_offset;
                return Ok(());
            }
            if allow_nesting {
                let body = &self.buf[t.clone()];
                if body == b"}" {
                    depth = depth.saturating_sub(1);
                } else if body.ends_with(b"{") {
                    depth += 1;
                    if depth > self.max_depth {
                        return Err(FormatError::LimitExceeded {
                            what: "nesting depth",
                            limit: self.max_depth,
                            actual: depth,
                        });
                    }
                }
            }
        }
    }
}

fn trim_range(buf: &[u8], mut r: Range<usize>) -> Range<usize> {
    while r.start < r.end && buf[r.start].is_ascii_whitespace() {
        r.start += 1;
    }
    while r.end > r.start && buf[r.end - 1].is_ascii_whitespace() {
        r.end -= 1;
    }
    r
}

// ---------------------------------------------------------------------------
// Fold: stream of events -> ReadOutcome
// ---------------------------------------------------------------------------

/// Reads a `.slif` text document from a byte slice.
///
/// # Errors
///
/// See [`read_text_from`].
pub fn read_text(
    bytes: &[u8],
    strictness: Strictness,
    limits: &FormatLimits,
) -> Result<ReadOutcome, FormatError> {
    read_text_from(bytes, strictness, limits)
}

/// Reads a `.slif` text document from any [`Read`] source without ever
/// buffering more than one line.
///
/// # Errors
///
/// In [`Strictness::Strict`] mode, any malformed record, out-of-order
/// or duplicate section, missing `[end]`, or `check`-key mismatch is a
/// typed [`FormatError`]. In [`Strictness::Lenient`] mode those become
/// deny-level diagnostics (with resync at the next section); only
/// resource-cap violations, I/O failures, and graph-limit refusals stay
/// hard errors.
pub fn read_text_from<R: Read>(
    src: R,
    strictness: Strictness,
    limits: &FormatLimits,
) -> Result<ReadOutcome, FormatError> {
    let mut stream = TextRecords::new(src, limits);
    let mut fold = Fold::new(strictness, limits);

    loop {
        enum Next {
            Done,
            Resync { nesting: bool },
            Continue,
        }
        let next = {
            match stream.next_event()? {
                None => Next::Done,
                Some(TextEvent::Section { raw, line, offset }) => {
                    match fold.section(raw, line, offset)? {
                        SectionAction::Enter => Next::Continue,
                        SectionAction::Skip { nesting } => Next::Resync { nesting },
                    }
                }
                Some(TextEvent::Record { raw, line, offset }) => {
                    match fold.record(raw, line, offset) {
                        Ok(()) => Next::Continue,
                        Err(e) if fold.resyncable(&e) => {
                            fold.deny(&e, line, offset, raw.len())?;
                            Next::Resync { nesting: false }
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        };
        match next {
            Next::Done => break,
            Next::Continue => {}
            Next::Resync { nesting } => stream.skip_to_next_section(nesting)?,
        }
    }

    fold.finish(stream.peak_alloc_bytes())
}

/// A record-parser failure: a grammar problem (resyncable) or a graph
/// refusal (typed, so resource caps stay hard errors).
enum RecErr {
    Msg(String),
    Core(slif_core::CoreError),
}

impl From<String> for RecErr {
    fn from(m: String) -> Self {
        RecErr::Msg(m)
    }
}

impl From<&str> for RecErr {
    fn from(m: &str) -> Self {
        RecErr::Msg(m.to_owned())
    }
}

impl From<slif_core::CoreError> for RecErr {
    fn from(e: slif_core::CoreError) -> Self {
        RecErr::Core(e)
    }
}

const RANK_DESIGN: u8 = 1;
const RANK_ANNOTATIONS: u8 = 2;
const RANK_PARTITION: u8 = 3;
const RANK_END: u8 = 4;

enum SectionAction {
    Enter,
    Skip { nesting: bool },
}

struct Fold<'l> {
    strictness: Strictness,
    limits: &'l FormatLimits,
    design: Option<Design>,
    partition: Option<Partition>,
    diagnostics: Vec<Diagnostic>,
    rank: u8,
    seen: [bool; 5],
    saw_header: bool,
    declared_check: Option<String>,
}

impl<'l> Fold<'l> {
    fn new(strictness: Strictness, limits: &'l FormatLimits) -> Self {
        Self {
            strictness,
            limits,
            design: None,
            partition: None,
            diagnostics: Vec::new(),
            rank: 0,
            seen: [false; 5],
            saw_header: false,
            declared_check: None,
        }
    }

    fn lenient(&self) -> bool {
        self.strictness == Strictness::Lenient
    }

    /// Which errors the lenient reader may resync past. Resource caps,
    /// I/O failures, and graph-size refusals stay hard: damage can be
    /// salvaged around, resource exhaustion cannot.
    fn resyncable(&self, e: &FormatError) -> bool {
        if !self.lenient() {
            return false;
        }
        match e {
            FormatError::Malformed { .. } => true,
            FormatError::Graph(slif_core::CoreError::LimitExceeded { .. }) => false,
            FormatError::Graph(_) => true,
            _ => false,
        }
    }

    fn push_diag(&mut self, d: Diagnostic) -> Result<(), FormatError> {
        if self.diagnostics.len() >= self.limits.max_diagnostics {
            return Err(FormatError::LimitExceeded {
                what: "diagnostic count",
                limit: self.limits.max_diagnostics,
                actual: self.diagnostics.len() + 1,
            });
        }
        self.diagnostics.push(d);
        Ok(())
    }

    fn deny(
        &mut self,
        e: &FormatError,
        line: usize,
        offset: usize,
        len: usize,
    ) -> Result<(), FormatError> {
        let span = Span::new(offset, offset + len, line as u32, 1);
        self.push_diag(Diagnostic::error(span, codes::WIRE_MALFORMED, e.to_string()))
    }

    fn warn(
        &mut self,
        code: &'static str,
        message: String,
        line: usize,
        offset: usize,
        len: usize,
    ) -> Result<(), FormatError> {
        let span = Span::new(offset, offset + len, line as u32, 1);
        self.push_diag(Diagnostic::warning(span, code, message))
    }

    /// Strict: return the error. Lenient: record it as a deny-level
    /// diagnostic and tell the caller to skip the section.
    fn refuse_section(
        &mut self,
        e: FormatError,
        line: usize,
        offset: usize,
        len: usize,
        nesting: bool,
    ) -> Result<SectionAction, FormatError> {
        if self.lenient() {
            self.deny(&e, line, offset, len)?;
            Ok(SectionAction::Skip { nesting })
        } else {
            Err(e)
        }
    }

    fn section(
        &mut self,
        raw: &[u8],
        line: usize,
        offset: usize,
    ) -> Result<SectionAction, FormatError> {
        if !self.saw_header {
            let e = FormatError::Malformed {
                line,
                offset,
                message: "missing `slif-wire 1` header line".into(),
            };
            if !self.lenient() {
                return Err(e);
            }
            self.deny(&e, line, offset, raw.len())?;
            self.saw_header = true;
        }
        let name = match std::str::from_utf8(raw) {
            Ok(s) if s.ends_with(']') && s.len() >= 2 => &s[1..s.len() - 1],
            _ => {
                let e = FormatError::Malformed {
                    line,
                    offset,
                    message: "unterminated or non-utf-8 section header".into(),
                };
                return self.refuse_section(e, line, offset, raw.len(), true);
            }
        };
        let (rank, known): (u8, &'static str) = match name {
            "design" => (RANK_DESIGN, "design"),
            "annotations" => (RANK_ANNOTATIONS, "annotations"),
            "partition" => (RANK_PARTITION, "partition"),
            "end" => (RANK_END, "end"),
            _ => {
                self.warn(
                    codes::WIRE_UNKNOWN_SECTION,
                    format!("unknown section `[{name}]` skipped"),
                    line,
                    offset,
                    raw.len(),
                )?;
                return Ok(SectionAction::Skip { nesting: true });
            }
        };
        if self.seen[rank as usize] {
            let e = FormatError::DuplicateSection {
                section: known,
                line,
            };
            return self.refuse_section(e, line, offset, raw.len(), false);
        }
        if rank < self.rank {
            let e = FormatError::Malformed {
                line,
                offset,
                message: format!("section `[{known}]` out of order"),
            };
            return self.refuse_section(e, line, offset, raw.len(), false);
        }
        if rank > RANK_DESIGN && self.design.is_none() {
            let e = FormatError::Malformed {
                line,
                offset,
                message: format!("section `[{known}]` before any design was declared"),
            };
            return self.refuse_section(e, line, offset, raw.len(), false);
        }
        self.seen[rank as usize] = true;
        self.rank = rank;
        if rank == RANK_PARTITION {
            if let Some(d) = &self.design {
                self.partition = Some(Partition::new(d));
            }
        }
        Ok(SectionAction::Enter)
    }

    fn record(&mut self, raw: &[u8], line: usize, offset: usize) -> Result<(), FormatError> {
        let mal = |message: String| FormatError::Malformed {
            line,
            offset,
            message,
        };
        let text = std::str::from_utf8(raw).map_err(|_| mal("invalid utf-8".into()))?;
        let toks: Vec<&str> = text.split_whitespace().collect();

        if !self.saw_header {
            if toks.len() == 2 && toks[0] == TEXT_MAGIC {
                let v: u32 = toks[1]
                    .parse()
                    .map_err(|_| mal(format!("bad header version `{}`", toks[1])))?;
                if v != TEXT_VERSION {
                    return Err(FormatError::UnsupportedVersion { found: v });
                }
                self.saw_header = true;
                return Ok(());
            }
            return Err(mal("missing `slif-wire 1` header line".into()));
        }

        let conv = |e: RecErr| match e {
            RecErr::Msg(m) => mal(m),
            RecErr::Core(c) => FormatError::Graph(c),
        };
        match self.rank {
            RANK_DESIGN => self.design_record(&toks).map_err(conv),
            RANK_ANNOTATIONS => self.annotation_record(&toks).map_err(conv),
            RANK_PARTITION => self.partition_record(&toks).map_err(conv),
            RANK_END => self.end_record(&toks).map_err(conv),
            _ => Err(mal("record outside any section".into())),
        }
    }

    fn design_record(&mut self, t: &[&str]) -> Result<(), RecErr> {
        if t[0] == "design" {
            if t.len() != 2 {
                return Err("`design` takes exactly one name".into());
            }
            if self.design.is_some() {
                return Err("duplicate `design` directive".into());
            }
            self.design = Some(Design::new(t[1]));
            return Ok(());
        }
        let Some(design) = self.design.as_mut() else {
            return Err(RecErr::Msg(format!("`{}` before the `design` directive", t[0])));
        };
        let limits = &self.limits.graph;
        match t[0] {
            "class" => {
                let [_, name, kind] = t else {
                    return Err("`class` takes <name> <kind>".into());
                };
                let kind = match *kind {
                    "std-processor" => ClassKind::StdProcessor,
                    "custom-hw" => ClassKind::CustomHw,
                    "memory" => ClassKind::Memory,
                    other => return Err(RecErr::Msg(format!("unknown class kind `{other}`"))),
                };
                if design.class_by_name(name).is_some() {
                    return Err(RecErr::Msg(format!("duplicate class `{name}`")));
                }
                design.add_class(*name, kind);
                Ok(())
            }
            "port" => {
                let [_, name, dir, bits] = t else {
                    return Err("`port` takes <name> <direction> <bits>".into());
                };
                let dir = match *dir {
                    "in" => PortDirection::In,
                    "out" => PortDirection::Out,
                    "inout" => PortDirection::InOut,
                    other => return Err(RecErr::Msg(format!("unknown port direction `{other}`"))),
                };
                let bits = parse_num::<u32>("port bits", bits)?;
                design
                    .graph_mut()
                    .try_add_port_bounded(*name, dir, bits, limits)
?;
                Ok(())
            }
            "node" => {
                let kind = match t {
                    [_, _, k] if *k == "process" => NodeKind::process(),
                    [_, _, k] if *k == "procedure" => NodeKind::procedure(),
                    [_, _, k, words, bits] if *k == "variable" => NodeKind::array(
                        parse_num::<u64>("variable words", words)?,
                        parse_num::<u32>("variable word bits", bits)?,
                    ),
                    _ => {
                        return Err(
                            "`node` takes <name> process|procedure|variable <words> <bits>".into(),
                        )
                    }
                };
                design
                    .graph_mut()
                    .try_add_node_bounded(t[1], kind, limits)
?;
                Ok(())
            }
            "channel" => {
                let [_, src, dst, kind, kw_freq, avg, min, max, kw_bits, bits, kw_tag, tag @ ..] =
                    t
                else {
                    return Err(
                        "`channel` takes <src> <dst> <kind> freq <avg> <min> <max> bits <n> tag <seq|grp N>"
                            .into(),
                    );
                };
                if *kw_freq != "freq" || *kw_bits != "bits" || *kw_tag != "tag" {
                    return Err("`channel` keywords must be `freq`, `bits`, `tag`".into());
                }
                let kind = match *kind {
                    "call" => AccessKind::Call,
                    "read" => AccessKind::Read,
                    "write" => AccessKind::Write,
                    "message" => AccessKind::Message,
                    other => return Err(RecErr::Msg(format!("unknown access kind `{other}`"))),
                };
                let src = design
                    .graph()
                    .node_by_name(src)
                    .ok_or_else(|| format!("unknown source node `{src}`"))?;
                let target = if let Some(n) = design.graph().node_by_name(dst) {
                    AccessTarget::Node(n)
                } else if let Some(p) = design.graph().port_by_name(dst) {
                    AccessTarget::Port(p)
                } else {
                    return Err(RecErr::Msg(format!("unknown access target `{dst}`")));
                };
                let avg = parse_num::<f64>("freq avg", avg)?;
                let min = parse_num::<u64>("freq min", min)?;
                let max = parse_num::<u64>("freq max", max)?;
                let bits = parse_num::<u32>("channel bits", bits)?;
                let tag = match tag {
                    ["seq"] => ConcurrencyTag::default(),
                    ["grp", n] => ConcurrencyTag::group(parse_num::<u32>("tag group", n)?),
                    _ => return Err("channel tag must be `seq` or `grp <n>`".into()),
                };
                let id = design
                    .graph_mut()
                    .try_add_channel_bounded(src, target, kind, limits)
?;
                let ch = design.graph_mut().channel_mut(id);
                *ch.freq_mut() = AccessFreq::new(avg, min, max);
                ch.set_bits(bits);
                ch.set_tag(tag);
                Ok(())
            }
            "processor" => {
                if t.len() < 3 {
                    return Err("`processor` takes <name> <class> [size s] [pins p]".into());
                }
                let class = design
                    .class_by_name(t[2])
                    .ok_or_else(|| format!("unknown class `{}`", t[2]))?;
                if !design.class(class).kind().holds_behaviors() {
                    return Err(RecErr::Msg(format!("class `{}` cannot hold a processor", t[2])));
                }
                if design.processor_by_name(t[1]).is_some() {
                    return Err(RecErr::Msg(format!("duplicate processor `{}`", t[1])));
                }
                let mut proc = Processor::new(t[1], class);
                for pair in t[3..].chunks(2) {
                    match pair {
                        ["size", v] => {
                            proc = proc.with_size_constraint(parse_num("processor size", v)?);
                        }
                        ["pins", v] => {
                            proc = proc.with_pin_constraint(parse_num("processor pins", v)?);
                        }
                        _ => return Err("`processor` options are `size <n>` and `pins <n>`".into()),
                    }
                }
                design.add_processor_instance(proc);
                Ok(())
            }
            "memory" => {
                if t.len() < 3 {
                    return Err("`memory` takes <name> <class> [size s]".into());
                }
                let class = design
                    .class_by_name(t[2])
                    .ok_or_else(|| format!("unknown class `{}`", t[2]))?;
                if design.class(class).kind() != ClassKind::Memory {
                    return Err(RecErr::Msg(format!("class `{}` is not a memory class", t[2])));
                }
                if design.memory_by_name(t[1]).is_some() {
                    return Err(RecErr::Msg(format!("duplicate memory `{}`", t[1])));
                }
                let mut mem = Memory::new(t[1], class);
                match &t[3..] {
                    [] => {}
                    ["size", v] => mem = mem.with_size_constraint(parse_num("memory size", v)?),
                    _ => return Err("`memory` options are `size <n>`".into()),
                }
                design.add_memory_instance(mem);
                Ok(())
            }
            "bus" => {
                if t.len() < 5 {
                    return Err("`bus` takes <name> <width> <ts> <td> [cap f]".into());
                }
                let width = parse_num::<u32>("bus width", t[2])?;
                if width == 0 {
                    return Err("bus width must be at least one wire".into());
                }
                if design.bus_by_name(t[1]).is_some() {
                    return Err(RecErr::Msg(format!("duplicate bus `{}`", t[1])));
                }
                let mut bus = Bus::new(
                    t[1],
                    width,
                    parse_num::<u64>("bus ts", t[3])?,
                    parse_num::<u64>("bus td", t[4])?,
                );
                match &t[5..] {
                    [] => {}
                    ["cap", v] => bus = bus.with_capacity(parse_num("bus cap", v)?),
                    _ => return Err("`bus` options are `cap <f>`".into()),
                }
                design.add_bus(bus);
                Ok(())
            }
            other => Err(RecErr::Msg(format!("unknown design directive `{other}`"))),
        }
    }

    fn annotation_record(&mut self, t: &[&str]) -> Result<(), RecErr> {
        let Some(design) = self.design.as_mut() else {
            return Err("annotation before any design".into());
        };
        match t {
            ["ict", node, class, val] => {
                let n = design
                    .graph()
                    .node_by_name(node)
                    .ok_or_else(|| format!("unknown node `{node}`"))?;
                let k = design
                    .class_by_name(class)
                    .ok_or_else(|| format!("unknown class `{class}`"))?;
                let val = parse_num::<u64>("ict value", val)?;
                design.graph_mut().node_mut(n).ict_mut().set(k, val);
                Ok(())
            }
            ["size", node, class, val, rest @ ..] => {
                let n = design
                    .graph()
                    .node_by_name(node)
                    .ok_or_else(|| format!("unknown node `{node}`"))?;
                let k = design
                    .class_by_name(class)
                    .ok_or_else(|| format!("unknown class `{class}`"))?;
                let val = parse_num::<u64>("size value", val)?;
                let entry = match rest {
                    [] => WeightEntry::new(k, val),
                    ["dp", dp] => {
                        let dp = parse_num::<u64>("size datapath", dp)?;
                        if dp > val {
                            return Err(RecErr::Msg(format!("datapath {dp} exceeds total weight {val}")));
                        }
                        WeightEntry::with_datapath(k, val, dp)
                    }
                    _ => return Err("`size` options are `dp <n>`".into()),
                };
                design.graph_mut().node_mut(n).size_mut().insert(entry);
                Ok(())
            }
            _ => Err(RecErr::Msg(format!(
                "unknown annotation directive `{}`",
                t.first().unwrap_or(&"")
            ))),
        }
    }

    fn partition_record(&mut self, t: &[&str]) -> Result<(), RecErr> {
        let Some(design) = self.design.as_ref() else {
            return Err("partition before any design".into());
        };
        let Some(part) = self.partition.as_mut() else {
            return Err("partition record outside a `[partition]` section".into());
        };
        match t {
            ["map", node, comp] => {
                let n = design
                    .graph()
                    .node_by_name(node)
                    .ok_or_else(|| format!("unknown node `{node}`"))?;
                let pm = if let Some(p) = design.processor_by_name(comp) {
                    PmRef::Processor(p)
                } else if let Some(m) = design.memory_by_name(comp) {
                    PmRef::Memory(m)
                } else {
                    return Err(RecErr::Msg(format!("unknown component `{comp}`")));
                };
                part.assign_node(n, pm);
                Ok(())
            }
            ["chan", idx, bus] => {
                let idx = parse_num::<usize>("channel index", idx)?;
                if idx >= design.graph().channel_count() {
                    return Err(RecErr::Msg(format!("channel index {idx} out of range")));
                }
                let b = design
                    .bus_by_name(bus)
                    .ok_or_else(|| format!("unknown bus `{bus}`"))?;
                part.assign_channel(slif_core::ChannelId::from_raw(idx as u32), b);
                Ok(())
            }
            _ => Err(RecErr::Msg(format!(
                "unknown partition directive `{}`",
                t.first().unwrap_or(&"")
            ))),
        }
    }

    fn end_record(&mut self, t: &[&str]) -> Result<(), RecErr> {
        match t {
            ["check", hex] => {
                if self.declared_check.is_some() {
                    return Err("duplicate `check` directive".into());
                }
                if hex.len() != 64 || !hex.chars().all(|c| c.is_ascii_hexdigit()) {
                    return Err("`check` takes a 64-digit hex content key".into());
                }
                self.declared_check = Some(hex.to_ascii_lowercase());
                Ok(())
            }
            _ => Err(RecErr::Msg(format!(
                "unknown end directive `{}`",
                t.first().unwrap_or(&"")
            ))),
        }
    }

    fn finish(mut self, peak_alloc_bytes: usize) -> Result<ReadOutcome, FormatError> {
        let end_ok = self.seen[RANK_END as usize] && self.declared_check.is_some();
        if !end_ok {
            if !self.lenient() {
                return Err(FormatError::Truncated {
                    context: "`[end]` section with a `check` key",
                });
            }
            let span = Span::dummy();
            self.push_diag(Diagnostic::error(
                span,
                codes::WIRE_MALFORMED,
                "input ended without a complete `[end]` section",
            ))?;
        }
        let Some(design) = self.design.take() else {
            return Err(FormatError::MissingSection { section: "design" });
        };
        design.graph().check_limits(&self.limits.graph)?;

        let actual = ContentKey::of(&slif_store::encode_design(&design)).to_hex();
        let verified = match &self.declared_check {
            Some(declared) if *declared == actual => true,
            Some(declared) => {
                let e = FormatError::ContentMismatch {
                    declared: declared.clone(),
                    actual: actual.clone(),
                };
                if !self.lenient() {
                    return Err(e);
                }
                self.push_diag(Diagnostic::error(
                    Span::dummy(),
                    codes::WIRE_CONTENT_MISMATCH,
                    e.to_string(),
                ))?;
                false
            }
            None => false,
        };

        Ok(ReadOutcome {
            design,
            partition: self.partition,
            diagnostics: self.diagnostics,
            verified,
            peak_alloc_bytes,
        })
    }
}

fn parse_num<T: std::str::FromStr>(what: &str, v: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("bad {what} `{v}`"))
}

#[cfg(test)]
mod tests {
    use super::super::testutil::sample_design;
    use super::*;

    fn write(d: &Design, p: Option<&Partition>) -> Vec<u8> {
        let mut out = Vec::new();
        write_text(d, p, &mut out).expect("write");
        out
    }

    #[test]
    fn round_trip_is_identity_and_byte_stable() {
        let (d, p) = sample_design();
        let bytes = write(&d, Some(&p));
        let out = read_text(&bytes, Strictness::Strict, &FormatLimits::default()).expect("read");
        assert_eq!(out.design, d);
        assert_eq!(out.partition.as_ref(), Some(&p));
        assert!(out.verified);
        assert!(out.diagnostics.is_empty());
        let second = write(&out.design, out.partition.as_ref());
        assert_eq!(second, bytes, "second write must be byte-identical");
    }

    #[test]
    fn reader_buffers_lines_not_files() {
        let (d, p) = sample_design();
        let bytes = write(&d, Some(&p));
        let out = read_text(&bytes, Strictness::Strict, &FormatLimits::default()).expect("read");
        assert!(
            out.peak_alloc_bytes < 64 << 10,
            "peak {} should be O(line)",
            out.peak_alloc_bytes
        );
    }

    #[test]
    fn unknown_sections_are_skipped_with_a_warning_even_in_strict_mode() {
        let (d, _) = sample_design();
        let text = String::from_utf8(write(&d, None)).expect("utf8");
        let with_ext = text.replace(
            "[end]",
            "[x-vendor-meta]\nblob {\n  inner stuff\n}\nplain line\n[end]",
        );
        let out = read_text(
            with_ext.as_bytes(),
            Strictness::Strict,
            &FormatLimits::default(),
        )
        .expect("read");
        assert_eq!(out.design, d);
        assert!(out.verified);
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].code(), codes::WIRE_UNKNOWN_SECTION);
    }

    #[test]
    fn lenient_mode_resyncs_past_a_torn_record() {
        let (d, _) = sample_design();
        let text = String::from_utf8(write(&d, None)).expect("utf8");
        // Tear one annotation line in half.
        let torn = text.replace("ict main proc8 1200", "ict main pr");
        let err = read_text(
            torn.as_bytes(),
            Strictness::Strict,
            &FormatLimits::default(),
        )
        .expect_err("strict must refuse");
        assert!(matches!(err, FormatError::Malformed { .. }), "{err:?}");
        let out = read_text(
            torn.as_bytes(),
            Strictness::Lenient,
            &FormatLimits::default(),
        )
        .expect("lenient salvage");
        // The whole [annotations] section after the tear is skipped, so
        // the design no longer matches its check key.
        assert!(!out.verified);
        assert!(out.has_denials());
        assert_eq!(out.design.name(), d.name());
    }

    #[test]
    fn strict_mode_refuses_a_tampered_check_key() {
        let (d, _) = sample_design();
        let text = String::from_utf8(write(&d, None)).expect("utf8");
        let pos = text.find("check ").expect("check line");
        let mut tampered = text.clone();
        // Flip one hex digit of the declared key.
        let digit = tampered.as_bytes()[pos + 6];
        let flip = if digit == b'0' { '1' } else { '0' };
        tampered.replace_range(pos + 6..pos + 7, &flip.to_string());
        let err = read_text(
            tampered.as_bytes(),
            Strictness::Strict,
            &FormatLimits::default(),
        )
        .expect_err("must refuse");
        assert!(matches!(err, FormatError::ContentMismatch { .. }), "{err:?}");
        let out = read_text(
            tampered.as_bytes(),
            Strictness::Lenient,
            &FormatLimits::default(),
        )
        .expect("lenient");
        assert!(!out.verified);
        assert!(out
            .diagnostics
            .iter()
            .any(|di| di.code() == codes::WIRE_CONTENT_MISMATCH));
    }

    #[test]
    fn missing_end_is_truncation() {
        let (d, _) = sample_design();
        let text = String::from_utf8(write(&d, None)).expect("utf8");
        let cut = &text[..text.find("[end]").expect("end")];
        let err = read_text(
            cut.as_bytes(),
            Strictness::Strict,
            &FormatLimits::default(),
        )
        .expect_err("must refuse");
        assert!(matches!(err, FormatError::Truncated { .. }), "{err:?}");
        let out = read_text(
            cut.as_bytes(),
            Strictness::Lenient,
            &FormatLimits::default(),
        )
        .expect("lenient");
        assert!(!out.verified);
    }

    #[test]
    fn hostile_line_length_is_refused_before_buffering_the_file() {
        let (d, _) = sample_design();
        let mut bytes = write(&d, None);
        let monster = vec![b'a'; 256 << 10];
        bytes.extend_from_slice(&monster);
        let limits = FormatLimits::default().with_max_line_bytes(64 << 10);
        for s in [Strictness::Strict, Strictness::Lenient] {
            let err = read_text(&bytes, s, &limits).expect_err("must refuse");
            assert!(
                matches!(err, FormatError::LimitExceeded { what: "line bytes", .. }),
                "{err:?}"
            );
        }
    }

    #[test]
    fn hostile_nesting_depth_is_refused() {
        let (d, _) = sample_design();
        let text = String::from_utf8(write(&d, None)).expect("utf8");
        let mut tower = String::from("[x-nest]\n");
        for _ in 0..64 {
            tower.push_str("block {\n");
        }
        let hostile = text.replace("[end]", &format!("{tower}[end]"));
        let err = read_text(
            hostile.as_bytes(),
            Strictness::Lenient,
            &FormatLimits::default(),
        )
        .expect_err("must refuse");
        assert!(
            matches!(err, FormatError::LimitExceeded { what: "nesting depth", .. }),
            "{err:?}"
        );
    }

    #[test]
    fn duplicate_and_out_of_order_sections_are_refused_in_strict_mode() {
        let (d, _) = sample_design();
        let text = String::from_utf8(write(&d, None)).expect("utf8");
        let dup = text.replace("[annotations]", "[annotations]\n[annotations]");
        // The second header is seen after resync-free parse of the first.
        let err = read_text(dup.as_bytes(), Strictness::Strict, &FormatLimits::default())
            .expect_err("must refuse");
        assert!(matches!(err, FormatError::DuplicateSection { .. }), "{err:?}");
        let out = read_text(dup.as_bytes(), Strictness::Lenient, &FormatLimits::default())
            .expect("lenient");
        assert!(out.has_denials());
    }

    #[test]
    fn unencodable_names_are_refused_by_the_writer() {
        let mut d = Design::new("has space");
        d.add_class("c", ClassKind::StdProcessor);
        let err = write_text(&d, None, &mut Vec::new()).expect_err("must refuse");
        assert!(matches!(err, FormatError::Unencodable { .. }), "{err:?}");
    }

    #[test]
    fn header_version_is_checked() {
        let bad = b"slif-wire 99\n[design]\ndesign d\n[end]\n";
        let err = read_text(bad, Strictness::Strict, &FormatLimits::default())
            .expect_err("must refuse");
        assert!(
            matches!(err, FormatError::UnsupportedVersion { found: 99 }),
            "{err:?}"
        );
    }

    #[test]
    fn graph_caps_bound_rebuilding() {
        let (d, _) = sample_design();
        let bytes = write(&d, None);
        let limits = FormatLimits::default()
            .with_graph(slif_core::GraphLimits::default().with_max_nodes(1));
        let err = read_text(&bytes, Strictness::Strict, &limits).expect_err("must refuse");
        assert!(
            matches!(
                err,
                FormatError::Graph(slif_core::CoreError::LimitExceeded { what: "node", .. })
            ),
            "{err:?}"
        );
        // Resource refusals stay hard even in lenient mode.
        let err = read_text(&bytes, Strictness::Lenient, &limits).expect_err("must refuse");
        assert!(matches!(err, FormatError::Graph(_)), "{err:?}");
    }
}
