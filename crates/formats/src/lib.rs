//! # slif-formats — baseline internal formats for the size comparison
//!
//! Section 5 of the SLIF paper compares the access graph's size against
//! two operation-granularity formats: an assignment-decision-diagram
//! (ADD/VT-style) format and a control-dataflow graph. The CDFG lives in
//! `slif-cdfg`; this crate provides:
//!
//! * [`AddGraph`] / [`build_add`] / [`build_spec_add`] — the ADD-style
//!   baseline,
//! * [`FormatComparison`] — the three-format node/edge/`n²` table the
//!   paper reports for the fuzzy example,
//! * [`wirefmt`] — the streaming `.slif` (text) and `.slifb` (binary)
//!   interchange encodings: hostile-byte-hardened pull parsers with
//!   bounded memory, typed refusals, and corruption resync.
//!
//! # Examples
//!
//! ```
//! use slif_formats::FormatComparison;
//!
//! let entry = slif_speclang::corpus::by_name("fuzzy").unwrap();
//! let rs = entry.load()?;
//! let cmp = FormatComparison::measure(&rs, entry.paper.channels as usize);
//! assert_eq!(cmp.slif().nodes, 35);
//! println!("{cmp}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod add;
mod report;
pub mod wirefmt;

pub use add::{build_add, build_spec_add, AddGraph, AddNode};
pub use report::{FormatComparison, FormatRow};
pub use wirefmt::{
    detect_encoding, read_bytes, write_bytes, Encoding, FormatError, FormatLimits, ReadOutcome,
    Strictness,
};
