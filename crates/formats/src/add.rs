//! An assignment-decision-diagram (ADD) style format.
//!
//! Section 5 of the paper compares SLIF's size against "the ADD format,
//! which is similar in form and complexity to the VT format". An ADD
//! represents each storage write as an *assignment* node guarded by
//! *decision* nodes (the conditions under which the assignment executes),
//! fed by a dataflow of *operation* nodes. It carries no explicit control
//! flow — conditions are shared data predicates — which is why it is
//! smaller than a CDFG but still operation-granularity, i.e. an order of
//! magnitude bigger than SLIF's access graph.

use slif_speclang::ast::{Expr, LValue, Stmt};
use slif_speclang::ResolvedSpec;
use std::fmt;

/// A node of an ADD graph.
#[derive(Debug, Clone, PartialEq)]
pub enum AddNode {
    /// A leaf read of a named object.
    Read(String),
    /// A literal constant.
    Const(i64),
    /// An operation over its input edges.
    Op(&'static str),
    /// A decision (guard) node combining a predicate with the guarded
    /// value.
    Decision,
    /// An assignment target (storage write, port write, call-site, or
    /// message).
    Assign(String),
}

/// An ADD graph: nodes plus directed edges (operand → consumer).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AddGraph {
    name: String,
    nodes: Vec<AddNode>,
    edges: Vec<(u32, u32)>,
}

impl AddGraph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The nodes, in creation order.
    pub fn nodes(&self) -> &[AddNode] {
        &self.nodes
    }

    fn add(&mut self, node: AddNode) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(node);
        id
    }

    fn edge(&mut self, from: u32, to: u32) {
        debug_assert!(
            (from as usize) < self.nodes.len() && (to as usize) < self.nodes.len(),
            "dangling ADD edge"
        );
        self.edges.push((from, to));
    }

    /// Merges another graph into this one (for whole-spec totals).
    pub fn absorb(&mut self, other: &AddGraph) {
        let base = self.nodes.len() as u32;
        self.nodes.extend(other.nodes.iter().cloned());
        self.edges
            .extend(other.edges.iter().map(|&(f, t)| (f + base, t + base)));
    }
}

impl fmt::Display for AddGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "add {}: {} nodes, {} edges",
            self.name,
            self.node_count(),
            self.edge_count()
        )
    }
}

/// Builds the ADD for one behavior.
///
/// An ADD is organized *per assignment target*: each write gets its own
/// decision structure, so guard conditions are re-materialized for every
/// guarded assignment rather than shared (that duplication relative to a
/// CDFG is intrinsic to the format and part of why the paper reports it
/// between SLIF and CDFG in size).
///
/// # Panics
///
/// Panics if `behavior` is out of range.
pub fn build_add(rs: &ResolvedSpec, behavior: usize) -> AddGraph {
    let decl = &rs.spec().behaviors[behavior];
    let mut b = Builder {
        g: AddGraph::new(decl.name.clone()),
        guards: Vec::new(),
    };
    b.stmts(&decl.body);
    b.g
}

/// One enclosing guard, kept symbolically so each assignment materializes
/// its own copy of the condition.
#[derive(Debug, Clone, Copy)]
enum Guard<'a> {
    /// `if cond { … }`
    Cond(&'a Expr),
    /// The else side of `if cond`.
    NotCond(&'a Expr),
    /// A `for` loop's index-range predicate over its bounds.
    Range(&'a Expr, &'a Expr),
}

/// Builds one merged ADD for the whole spec (the Section 5 totals).
pub fn build_spec_add(rs: &ResolvedSpec) -> AddGraph {
    let mut total = AddGraph::new(rs.spec().name.clone());
    for i in 0..rs.spec().behaviors.len() {
        total.absorb(&build_add(rs, i));
    }
    total
}

struct Builder<'a> {
    g: AddGraph,
    /// Enclosing guards, held symbolically; each assignment materializes
    /// its own copies.
    guards: Vec<Guard<'a>>,
}

impl<'a> Builder<'a> {
    fn stmts(&mut self, stmts: &'a [Stmt]) {
        for stmt in stmts {
            self.stmt(stmt);
        }
    }

    fn stmt(&mut self, stmt: &'a Stmt) {
        match stmt {
            Stmt::Assign { lhs, value, .. } => {
                let v = self.expr(value);
                self.assign(lhs_name(lhs), lhs_index(lhs), v);
            }
            Stmt::Call { callee, args, .. } => {
                let inputs: Vec<u32> = args.iter().map(|a| self.expr(a)).collect();
                let call = self.g.add(AddNode::Assign(callee.clone()));
                for i in inputs {
                    self.g.edge(i, call);
                }
                // The call site is guarded like any assignment.
                let guards = self.materialize_guards();
                for guard in guards {
                    self.g.edge(guard, call);
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                self.guards.push(Guard::Cond(cond));
                self.stmts(then_body);
                self.guards.pop();
                if !else_body.is_empty() {
                    self.guards.push(Guard::NotCond(cond));
                    self.stmts(else_body);
                    self.guards.pop();
                }
            }
            Stmt::For { lo, hi, body, .. } => {
                // An ADD models the loop's index range as a predicate over
                // the induction value; the body assignments are guarded.
                self.guards.push(Guard::Range(lo, hi));
                self.stmts(body);
                self.guards.pop();
            }
            Stmt::While { cond, body, .. } => {
                self.guards.push(Guard::Cond(cond));
                self.stmts(body);
                self.guards.pop();
            }
            Stmt::Fork { body, .. } => self.stmts(body),
            Stmt::Send { target, value, .. } => {
                let v = self.expr(value);
                self.assign(target.clone(), None, v);
            }
            Stmt::Receive { lhs, .. } => {
                let v = self.g.add(AddNode::Read("<message>".to_owned()));
                self.assign(lhs_name(lhs), lhs_index(lhs), v);
            }
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    let val = self.expr(v);
                    self.assign("<return>".to_owned(), None, val);
                }
            }
            Stmt::Wait { .. } => {}
        }
    }

    /// Materializes fresh nodes for every enclosing guard.
    fn materialize_guards(&mut self) -> Vec<u32> {
        let guards: Vec<Guard<'a>> = self.guards.clone();
        guards
            .into_iter()
            .map(|guard| match guard {
                Guard::Cond(c) => self.expr(c),
                Guard::NotCond(c) => {
                    let inner = self.expr(c);
                    let not = self.g.add(AddNode::Op("not"));
                    self.g.edge(inner, not);
                    not
                }
                Guard::Range(lo, hi) => {
                    let l = self.expr(lo);
                    let h = self.expr(hi);
                    let range = self.g.add(AddNode::Op("in-range"));
                    self.g.edge(l, range);
                    self.g.edge(h, range);
                    range
                }
            })
            .collect()
    }

    /// Emits an assignment node for `name`, guarded by fresh copies of the
    /// enclosing conditions through a decision node.
    fn assign(&mut self, name: String, index: Option<&Expr>, value: u32) {
        let idx_node = index.map(|e| self.expr(e));
        let guards = self.materialize_guards();
        let target = self.g.add(AddNode::Assign(name));
        let mut feed = value;
        if !guards.is_empty() {
            let decision = self.g.add(AddNode::Decision);
            for guard in guards {
                self.g.edge(guard, decision);
            }
            self.g.edge(value, decision);
            feed = decision;
        }
        self.g.edge(feed, target);
        if let Some(i) = idx_node {
            self.g.edge(i, target);
        }
    }

    fn expr(&mut self, expr: &Expr) -> u32 {
        match expr {
            Expr::Int { value, .. } => self.g.add(AddNode::Const(*value as i64)),
            Expr::Bool { value, .. } => self.g.add(AddNode::Const(i64::from(*value))),
            Expr::Name { name, .. } => self.g.add(AddNode::Read(name.clone())),
            Expr::Index { name, index, .. } => {
                let i = self.expr(index);
                let read = self.g.add(AddNode::Read(name.clone()));
                self.g.edge(i, read);
                read
            }
            Expr::Call { callee, args, .. } => {
                let inputs: Vec<u32> = args.iter().map(|a| self.expr(a)).collect();
                let node = self.g.add(AddNode::Op("call"));
                let _ = callee;
                for i in inputs {
                    self.g.edge(i, node);
                }
                node
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let l = self.expr(lhs);
                let r = self.expr(rhs);
                let node = self.g.add(AddNode::Op(binop_name(*op)));
                self.g.edge(l, node);
                self.g.edge(r, node);
                node
            }
            Expr::Unary { operand, .. } => {
                let v = self.expr(operand);
                let node = self.g.add(AddNode::Op("not"));
                self.g.edge(v, node);
                node
            }
        }
    }
}

fn lhs_name(lhs: &LValue) -> String {
    lhs.name().to_owned()
}

fn lhs_index(lhs: &LValue) -> Option<&Expr> {
    match lhs {
        LValue::Index { index, .. } => Some(index),
        LValue::Name { .. } => None,
    }
}

fn binop_name(op: slif_speclang::ast::BinOp) -> &'static str {
    use slif_speclang::ast::BinOp::*;
    match op {
        Add => "+",
        Sub => "-",
        Mul => "*",
        Div => "/",
        Rem => "%",
        Eq => "==",
        Ne => "!=",
        Lt => "<",
        Le => "<=",
        Gt => ">",
        Ge => ">=",
        And => "and",
        Or => "or",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_speclang::parse_and_resolve;

    fn add_for(src: &str, name: &str) -> AddGraph {
        let rs = parse_and_resolve(src).unwrap();
        let i = rs
            .spec()
            .behaviors
            .iter()
            .position(|b| b.name == name)
            .unwrap();
        build_add(&rs, i)
    }

    #[test]
    fn unguarded_assignment_shape() {
        // x = y + 1: Read(y), Const(1), Op(+), Assign(x); 3 edges.
        let g = add_for(
            "system T;\nvar x : int<8>;\nvar y : int<8>;\nproc P() { x = y + 1; }",
            "P",
        );
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn guarded_assignment_gets_decision_node() {
        let g = add_for(
            "system T;\nvar x : int<8>;\nproc P() { if x > 0 { x = 1; } }",
            "P",
        );
        assert!(g.nodes().contains(&AddNode::Decision));
        // Read(x), Const(0), Op(>), Const(1), Decision, Assign(x).
        assert_eq!(g.node_count(), 6);
    }

    #[test]
    fn else_branch_negates_the_guard() {
        let g = add_for(
            "system T;\nvar x : int<8>;\nproc P() { if x > 0 { x = 1; } else { x = 2; } }",
            "P",
        );
        let nots = g
            .nodes()
            .iter()
            .filter(|n| **n == AddNode::Op("not"))
            .count();
        assert_eq!(nots, 1);
        let decisions = g
            .nodes()
            .iter()
            .filter(|n| **n == AddNode::Decision)
            .count();
        assert_eq!(decisions, 2);
    }

    #[test]
    fn spec_totals_absorb_all_behaviors() {
        let rs = parse_and_resolve(
            "system T;\nvar x : int<8>;\nproc P() { x = 1; }\nproc Q() { x = 2; }",
        )
        .unwrap();
        let total = build_spec_add(&rs);
        let p = build_add(&rs, 0);
        let q = build_add(&rs, 1);
        assert_eq!(total.node_count(), p.node_count() + q.node_count());
        assert_eq!(total.edge_count(), p.edge_count() + q.edge_count());
    }

    #[test]
    fn add_is_smaller_than_cdfg_but_larger_than_slif() {
        // The Section 5 ordering on the paper's own example.
        let entry = slif_speclang::corpus::by_name("fuzzy").unwrap();
        let rs = entry.load().unwrap();
        let add = build_spec_add(&rs);
        let cdfg_nodes: usize = slif_cdfg::lower_spec(&rs)
            .iter()
            .map(|g| g.node_count())
            .sum();
        let slif_nodes = rs.spec().bv_count();
        assert!(add.node_count() > 4 * slif_nodes, "ADD ≫ SLIF");
        assert!(cdfg_nodes > add.node_count(), "CDFG > ADD");
    }

    #[test]
    fn display_mentions_counts() {
        let g = add_for("system T;\nvar x : int<8>;\nproc P() { x = 1; }", "P");
        assert!(g.to_string().contains("nodes"));
    }
}
