//! The Section 5 format-size comparison.
//!
//! "To demonstrate the efficiency of SLIF over other formats, we compared
//! the size of two other formats with that of SLIF for the fuzzy-logic
//! controller example": SLIF-AG 35 nodes / 56 edges, ADD over 450 / 400,
//! CDFG over 1100 / 900 — and for an `n²` partitioning algorithm 1 225 vs
//! 202 500 vs 1 210 000 computations. [`FormatComparison::measure`]
//! regenerates that table for any spec.

use crate::add::build_spec_add;
use slif_cdfg::lower_spec;
use slif_speclang::ResolvedSpec;
use std::fmt;

/// One row of the comparison: a format and its size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatRow {
    /// Format name (`SLIF-AG`, `ADD`, `CDFG`).
    pub format: &'static str,
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
}

impl FormatRow {
    /// Work units an `n²` partitioning algorithm performs on this format
    /// (the paper's 1 225 / 202 500 / 1 210 000 column).
    pub fn n_squared(&self) -> u64 {
        (self.nodes as u64).pow(2)
    }
}

/// The full three-format comparison for one specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatComparison {
    /// The system's name.
    pub name: String,
    /// SLIF-AG, ADD, CDFG rows, in that order.
    pub rows: [FormatRow; 3],
}

impl FormatComparison {
    /// Measures all three formats.
    ///
    /// SLIF counts are the access-graph object and channel counts; ADD
    /// and CDFG counts sum over all behaviors.
    ///
    /// `slif_edges` must be the channel count of the built design (the
    /// spec alone cannot know how accesses merge); pass
    /// `design.graph().channel_count()`.
    pub fn measure(rs: &ResolvedSpec, slif_edges: usize) -> Self {
        let slif = FormatRow {
            format: "SLIF-AG",
            nodes: rs.spec().bv_count(),
            edges: slif_edges,
        };
        let add_graph = build_spec_add(rs);
        let add = FormatRow {
            format: "ADD",
            nodes: add_graph.node_count(),
            edges: add_graph.edge_count(),
        };
        let cdfgs = lower_spec(rs);
        let cdfg = FormatRow {
            format: "CDFG",
            nodes: cdfgs.iter().map(|g| g.node_count()).sum(),
            edges: cdfgs.iter().map(|g| g.edge_count()).sum(),
        };
        Self {
            name: rs.spec().name.clone(),
            rows: [slif, add, cdfg],
        }
    }

    /// The SLIF row.
    pub fn slif(&self) -> &FormatRow {
        &self.rows[0]
    }

    /// The ADD row.
    pub fn add(&self) -> &FormatRow {
        &self.rows[1]
    }

    /// The CDFG row.
    pub fn cdfg(&self) -> &FormatRow {
        &self.rows[2]
    }
}

impl fmt::Display for FormatComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "format sizes for `{}`:", self.name)?;
        writeln!(
            f,
            "  {:<8} {:>7} {:>7} {:>14}",
            "format", "nodes", "edges", "n^2 work"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "  {:<8} {:>7} {:>7} {:>14}",
                row.format,
                row.nodes,
                row.edges,
                row.n_squared()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fuzzy() -> FormatComparison {
        let entry = slif_speclang::corpus::by_name("fuzzy").unwrap();
        let rs = entry.load().unwrap();
        // 56 channels, verified against Figure 4 by the frontend tests.
        FormatComparison::measure(&rs, entry.paper.channels as usize)
    }

    #[test]
    fn fuzzy_slif_row_matches_paper() {
        let c = fuzzy();
        assert_eq!(c.slif().nodes, 35);
        assert_eq!(c.slif().edges, 56);
        assert_eq!(c.slif().n_squared(), 1225);
    }

    #[test]
    fn ordering_matches_section5() {
        // The paper reports 35/450+/1100+ nodes (ratios 13x / 31x) from
        // its VHDL tooling; our denser spec language yields smaller
        // operation-level graphs, but the ordering and the
        // order-of-magnitude gap — the actual Section 5 conclusions —
        // must hold.
        let c = fuzzy();
        assert!(c.add().nodes > 8 * c.slif().nodes, "ADD ≫ SLIF");
        assert!(c.cdfg().nodes > c.add().nodes, "CDFG > ADD");
        assert!(c.cdfg().edges > c.add().edges);
        // The n² blow-up the paper highlights: ≥ 1.5 orders of magnitude
        // more work on the finer formats (paper: 165x and 990x).
        assert!(c.add().n_squared() > 60 * c.slif().n_squared());
        assert!(c.cdfg().n_squared() > 80 * c.slif().n_squared());
    }

    #[test]
    fn display_prints_all_rows() {
        let s = fuzzy().to_string();
        assert!(s.contains("SLIF-AG"));
        assert!(s.contains("ADD"));
        assert!(s.contains("CDFG"));
        assert!(s.contains("1225"));
    }
}
