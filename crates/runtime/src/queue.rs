//! The bounded admission queue and its typed rejections.
//!
//! Backpressure is explicit: a full queue rejects new work with
//! [`Rejected::QueueFull`] instead of blocking the submitter or growing
//! without bound. Retried tasks re-enter past the capacity check — they
//! were already admitted once, and shedding them would turn a transient
//! fault into a lost job.

use crate::handle::HandleState;
use crate::job::Job;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Why the service refused to admit a job. Returned synchronously by
/// `submit`; a rejected job never gets a handle.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Rejected {
    /// The queue is at capacity; retry later (backpressure).
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The job's input exceeds an admission size guard.
    TooLarge {
        /// Which measure tripped (`"spec bytes"`, `"node"`, `"channel"`).
        what: &'static str,
        /// The configured cap.
        limit: usize,
        /// The measured size.
        actual: usize,
    },
    /// The service is shutting down and admits nothing.
    ShuttingDown,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity}); retry later")
            }
            Rejected::TooLarge {
                what,
                limit,
                actual,
            } => write!(f, "{what} count {actual} exceeds the admission limit of {limit}"),
            Rejected::ShuttingDown => f.write_str("service is shutting down"),
        }
    }
}

impl std::error::Error for Rejected {}

/// One queued unit of work: a job plus its bookkeeping.
#[derive(Debug)]
pub(crate) struct Task {
    /// Service-assigned id.
    pub id: u64,
    /// The work itself.
    pub job: Job,
    /// Execution attempts made so far (0 before the first run).
    pub attempts: u32,
    /// Earliest instant a worker may run this task (retry backoff).
    pub not_before: Option<Instant>,
    /// Absolute deadline; expired tasks resolve as timed out.
    pub deadline: Option<Instant>,
    /// The submitter's completion slot.
    pub handle: Arc<HandleState>,
}

#[derive(Debug)]
struct QueueState {
    items: VecDeque<Task>,
    closed: bool,
    discarding: bool,
}

/// A bounded MPMC task queue with backoff-aware popping.
#[derive(Debug)]
pub(crate) struct TaskQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    capacity: usize,
}

impl TaskQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
                discarding: false,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits a new task if there is room. On a full or closed queue the
    /// task is handed back so the caller can resolve or reject it.
    // A rejected task must travel back whole (it owns the job and the
    // caller's handle); it was moved in by value, so the large Err is a
    // return of ownership, not an extra copy.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_push(&self, task: Task) -> Result<(), (Task, Rejected)> {
        let mut st = crate::lock(&self.state);
        if st.closed {
            return Err((task, Rejected::ShuttingDown));
        }
        if st.items.len() >= self.capacity {
            return Err((
                task,
                Rejected::QueueFull {
                    capacity: self.capacity,
                },
            ));
        }
        st.items.push_back(task);
        self.cv.notify_one();
        Ok(())
    }

    /// Re-enqueues an already-admitted task (a retry). Bypasses the
    /// capacity check — shedding an admitted job would lose it. A
    /// graceful (draining) close still accepts retries so they reach a
    /// real terminal state; a discarding close refuses them so the
    /// caller can cancel the job instead of stranding it.
    #[allow(clippy::result_large_err)] // ownership handed back, as in try_push
    pub(crate) fn requeue(&self, task: Task) -> Result<(), Task> {
        let mut st = crate::lock(&self.state);
        if st.discarding {
            return Err(task);
        }
        st.items.push_back(task);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks for the next runnable task — the oldest one whose backoff
    /// window has passed. Returns `None` once the queue is closed *and*
    /// drained, which is each worker's signal to exit.
    pub(crate) fn pop(&self) -> Option<Task> {
        let mut st = crate::lock(&self.state);
        loop {
            let now = Instant::now();
            if let Some(i) = st
                .items
                .iter()
                .position(|t| t.not_before.is_none_or(|nb| nb <= now))
            {
                return st.items.remove(i);
            }
            if st.closed && st.items.is_empty() {
                return None;
            }
            // Everything queued is in a backoff window (or the queue is
            // empty): sleep until the earliest window opens, or until a
            // push/close notifies us.
            let earliest = st
                .items
                .iter()
                .filter_map(|t| t.not_before)
                .min()
                .map(|nb| nb.saturating_duration_since(now));
            st = match earliest {
                Some(wait) if !wait.is_zero() => {
                    self.cv
                        .wait_timeout(st, wait)
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .0
                }
                Some(_) => continue,
                None => self
                    .cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            };
        }
    }

    /// Closes the queue. With `discard`, drains and returns every queued
    /// task (for cancellation); without, workers keep draining the
    /// remainder before exiting.
    pub(crate) fn close(&self, discard: bool) -> Vec<Task> {
        let mut st = crate::lock(&self.state);
        st.closed = true;
        st.discarding = st.discarding || discard;
        let leftovers = if discard {
            st.items.drain(..).collect()
        } else {
            Vec::new()
        };
        self.cv.notify_all();
        leftovers
    }

    /// Current queue depth (admitted, not yet running).
    pub(crate) fn depth(&self) -> usize {
        crate::lock(&self.state).items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::JobHandle;
    use std::time::Duration;

    fn task(id: u64, not_before: Option<Instant>) -> Task {
        let (_, handle) = JobHandle::new(id);
        Task {
            id,
            job: Job::ParseSpec {
                source: String::new(),
            },
            attempts: 0,
            not_before,
            deadline: None,
            handle,
        }
    }

    #[test]
    fn capacity_is_enforced_for_new_work_only() {
        let q = TaskQueue::new(1);
        q.try_push(task(0, None)).unwrap();
        let (_, why) = q.try_push(task(1, None)).unwrap_err();
        assert_eq!(why, Rejected::QueueFull { capacity: 1 });
        // A retry re-enters past the cap.
        q.requeue(task(2, None)).unwrap();
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn pop_skips_backoff_windows() {
        let q = TaskQueue::new(8);
        let later = Instant::now() + Duration::from_secs(60);
        q.try_push(task(0, Some(later))).unwrap();
        q.try_push(task(1, None)).unwrap();
        // The runnable task is picked over the older backed-off one.
        let got = q.pop().map(|t| t.id);
        assert_eq!(got, Some(1));
    }

    #[test]
    fn pop_waits_out_a_short_backoff() {
        let q = TaskQueue::new(8);
        let soon = Instant::now() + Duration::from_millis(20);
        q.try_push(task(0, Some(soon))).unwrap();
        let start = Instant::now();
        let got = q.pop().map(|t| t.id);
        assert_eq!(got, Some(0));
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn close_drained_queue_ends_workers() {
        let q = TaskQueue::new(8);
        q.close(false);
        assert!(q.pop().is_none());
        // New work is refused after close.
        let (_, why) = q.try_push(task(0, None)).unwrap_err();
        assert_eq!(why, Rejected::ShuttingDown);
    }

    #[test]
    fn close_with_discard_returns_leftovers() {
        let q = TaskQueue::new(8);
        q.try_push(task(0, None)).unwrap();
        q.try_push(task(1, None)).unwrap();
        let leftovers = q.close(true);
        assert_eq!(leftovers.len(), 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn rejections_display() {
        assert!(Rejected::QueueFull { capacity: 4 }
            .to_string()
            .contains("capacity 4"));
        assert!(Rejected::TooLarge {
            what: "node",
            limit: 10,
            actual: 11
        }
        .to_string()
        .contains("admission limit"));
        assert!(Rejected::ShuttingDown.to_string().contains("shutting down"));
    }
}
