//! The bounded admission queue and its typed rejections.
//!
//! Backpressure is explicit: a full queue rejects new work with
//! [`Rejected::QueueFull`] instead of blocking the submitter or growing
//! without bound. Retried tasks re-enter past the capacity check — they
//! were already admitted once, and shedding them would turn a transient
//! fault into a lost job.
//!
//! Dequeueing is **weighted fair-share** across tenants: every pop
//! charges the task's tenant `VTIME_SCALE / weight` virtual time, and
//! the next pop serves the runnable task whose tenant has the least
//! virtual time so far (ties go to the oldest task). A tenant that
//! floods the queue therefore cannot starve a light tenant: the light
//! tenant's next job jumps ahead of the flood. Untagged tasks share one
//! anonymous tenant of weight 1.

use crate::handle::HandleState;
use crate::job::Job;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Virtual-time charged to a weight-1 tenant per dequeued job. Higher
/// weights are charged proportionally less, so they are served
/// proportionally more often under contention.
const VTIME_SCALE: u64 = 1 << 20;

/// The map key for tasks submitted without a tenant tag.
const ANON_TENANT: u64 = u64::MAX;

/// Why the service refused to admit a job. Returned synchronously by
/// `submit`; a rejected job never gets a handle.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Rejected {
    /// The queue is at capacity; retry later (backpressure).
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The job's input exceeds an admission size guard.
    TooLarge {
        /// Which measure tripped (`"spec bytes"`, `"node"`, `"channel"`).
        what: &'static str,
        /// The configured cap.
        limit: usize,
        /// The measured size.
        actual: usize,
    },
    /// The service is shutting down and admits nothing.
    ShuttingDown,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity}); retry later")
            }
            Rejected::TooLarge {
                what,
                limit,
                actual,
            } => write!(f, "{what} count {actual} exceeds the admission limit of {limit}"),
            Rejected::ShuttingDown => f.write_str("service is shutting down"),
        }
    }
}

impl std::error::Error for Rejected {}

/// One queued unit of work: a job plus its bookkeeping.
#[derive(Debug)]
pub(crate) struct Task {
    /// Service-assigned id.
    pub id: u64,
    /// The work itself.
    pub job: Job,
    /// Execution attempts made so far (0 before the first run).
    pub attempts: u32,
    /// Earliest instant a worker may run this task (retry backoff).
    pub not_before: Option<Instant>,
    /// Absolute deadline; expired tasks resolve as timed out.
    pub deadline: Option<Instant>,
    /// The fair-share tenant this task is billed to (`None` = anonymous).
    pub tenant: Option<u32>,
    /// The tenant's fair-share weight (floor 1); higher weights receive
    /// proportionally more service under contention.
    pub weight: u32,
    /// The submitter's completion slot.
    pub handle: Arc<HandleState>,
}

impl Task {
    fn tenant_key(&self) -> u64 {
        self.tenant.map_or(ANON_TENANT, u64::from)
    }
}

#[derive(Debug)]
struct QueueState {
    items: VecDeque<Task>,
    closed: bool,
    discarding: bool,
    /// Per-tenant virtual service time for weighted fair-share popping.
    vtime: HashMap<u64, u64>,
    /// The system virtual clock: the vtime of the most recently served
    /// tenant at the moment it was served. Advanced on every pop, never
    /// rewound — in particular it survives the queue draining empty, so
    /// a tenant joining at a quiet moment cannot seed at zero and then
    /// monopolize the queue until its clock catches up with everyone
    /// else's accumulated history.
    global_vtime: u64,
}

impl QueueState {
    /// Seeds (or refreshes) the tenant's virtual clock on admission: a
    /// tenant joining — or rejoining after idling — starts no earlier
    /// than the system clock, so it neither inherits a stale advantage
    /// (its own old clock is kept if higher) nor waits behind everyone's
    /// history (it is lifted to "now", not to the busiest tenant's
    /// total).
    fn note_tenant(&mut self, key: u64) {
        let floor = self.global_vtime;
        let entry = self.vtime.entry(key).or_insert(floor);
        *entry = (*entry).max(floor);
    }
}

/// A bounded MPMC task queue with backoff-aware popping.
#[derive(Debug)]
pub(crate) struct TaskQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    capacity: usize,
}

impl TaskQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
                discarding: false,
                vtime: HashMap::new(),
                global_vtime: 0,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits a new task if there is room. On a full or closed queue the
    /// task is handed back so the caller can resolve or reject it.
    // A rejected task must travel back whole (it owns the job and the
    // caller's handle); it was moved in by value, so the large Err is a
    // return of ownership, not an extra copy.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_push(&self, task: Task) -> Result<(), (Task, Rejected)> {
        let mut st = crate::lock(&self.state);
        if st.closed {
            return Err((task, Rejected::ShuttingDown));
        }
        if st.items.len() >= self.capacity {
            return Err((
                task,
                Rejected::QueueFull {
                    capacity: self.capacity,
                },
            ));
        }
        st.note_tenant(task.tenant_key());
        st.items.push_back(task);
        self.cv.notify_one();
        Ok(())
    }

    /// Re-enqueues an already-admitted task (a retry). Bypasses the
    /// capacity check — shedding an admitted job would lose it. A
    /// graceful (draining) close still accepts retries so they reach a
    /// real terminal state; a discarding close refuses them so the
    /// caller can cancel the job instead of stranding it.
    #[allow(clippy::result_large_err)] // ownership handed back, as in try_push
    pub(crate) fn requeue(&self, task: Task) -> Result<(), Task> {
        let mut st = crate::lock(&self.state);
        if st.discarding {
            return Err(task);
        }
        st.note_tenant(task.tenant_key());
        st.items.push_back(task);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks for the next runnable task — among tasks whose backoff
    /// window has passed, the one whose tenant has received the least
    /// weighted service (ties go to the oldest). Returns `None` once the
    /// queue is closed *and* drained, which is each worker's signal to
    /// exit.
    pub(crate) fn pop(&self) -> Option<Task> {
        let mut st = crate::lock(&self.state);
        loop {
            let now = Instant::now();
            let mut best: Option<(usize, u64)> = None;
            for (i, t) in st.items.iter().enumerate() {
                if t.not_before.is_none_or(|nb| nb <= now) {
                    let v = st.vtime.get(&t.tenant_key()).copied().unwrap_or(0);
                    // Strictly-smaller keeps the earliest index on ties.
                    if best.is_none_or(|(_, bv)| v < bv) {
                        best = Some((i, v));
                    }
                }
            }
            if let Some((i, v)) = best {
                let task = st.items.remove(i)?;
                let charge = VTIME_SCALE / u64::from(task.weight.max(1));
                // The served tenant had the least vtime among runnable
                // tasks, so `v` is the system virtual time "now".
                st.global_vtime = st.global_vtime.max(v);
                st.vtime.insert(task.tenant_key(), v.saturating_add(charge));
                return Some(task);
            }
            if st.closed && st.items.is_empty() {
                return None;
            }
            // Everything queued is in a backoff window (or the queue is
            // empty): sleep until the earliest window opens, or until a
            // push/close notifies us.
            let earliest = st
                .items
                .iter()
                .filter_map(|t| t.not_before)
                .min()
                .map(|nb| nb.saturating_duration_since(now));
            st = match earliest {
                Some(wait) if !wait.is_zero() => {
                    self.cv
                        .wait_timeout(st, wait)
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .0
                }
                Some(_) => continue,
                None => self
                    .cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            };
        }
    }

    /// Closes the queue. With `discard`, drains and returns every queued
    /// task (for cancellation); without, workers keep draining the
    /// remainder before exiting.
    pub(crate) fn close(&self, discard: bool) -> Vec<Task> {
        let mut st = crate::lock(&self.state);
        st.closed = true;
        st.discarding = st.discarding || discard;
        let leftovers = if discard {
            st.items.drain(..).collect()
        } else {
            Vec::new()
        };
        self.cv.notify_all();
        leftovers
    }

    /// Empties the queue unconditionally, returning whatever is left.
    ///
    /// The drain-ordering backstop: after a graceful close has joined
    /// every worker, any task still queued (admitted in the race window
    /// while the last workers were retiring) would otherwise be stranded
    /// without a terminal state. The service sweeps them here and
    /// resolves them cancelled.
    pub(crate) fn drain_remaining(&self) -> Vec<Task> {
        crate::lock(&self.state).items.drain(..).collect()
    }

    /// Current queue depth (admitted, not yet running).
    pub(crate) fn depth(&self) -> usize {
        crate::lock(&self.state).items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::JobHandle;
    use std::time::Duration;

    fn task(id: u64, not_before: Option<Instant>) -> Task {
        tenant_task(id, not_before, None, 1)
    }

    fn tenant_task(
        id: u64,
        not_before: Option<Instant>,
        tenant: Option<u32>,
        weight: u32,
    ) -> Task {
        let (_, handle) = JobHandle::new(id);
        Task {
            id,
            job: Job::ParseSpec {
                source: String::new(),
            },
            attempts: 0,
            not_before,
            deadline: None,
            tenant,
            weight,
            handle,
        }
    }

    #[test]
    fn capacity_is_enforced_for_new_work_only() {
        let q = TaskQueue::new(1);
        q.try_push(task(0, None)).unwrap();
        let (_, why) = q.try_push(task(1, None)).unwrap_err();
        assert_eq!(why, Rejected::QueueFull { capacity: 1 });
        // A retry re-enters past the cap.
        q.requeue(task(2, None)).unwrap();
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn pop_skips_backoff_windows() {
        let q = TaskQueue::new(8);
        let later = Instant::now() + Duration::from_secs(60);
        q.try_push(task(0, Some(later))).unwrap();
        q.try_push(task(1, None)).unwrap();
        // The runnable task is picked over the older backed-off one.
        let got = q.pop().map(|t| t.id);
        assert_eq!(got, Some(1));
    }

    #[test]
    fn pop_waits_out_a_short_backoff() {
        let q = TaskQueue::new(8);
        let soon = Instant::now() + Duration::from_millis(20);
        q.try_push(task(0, Some(soon))).unwrap();
        let start = Instant::now();
        let got = q.pop().map(|t| t.id);
        assert_eq!(got, Some(0));
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn close_drained_queue_ends_workers() {
        let q = TaskQueue::new(8);
        q.close(false);
        assert!(q.pop().is_none());
        // New work is refused after close.
        let (_, why) = q.try_push(task(0, None)).unwrap_err();
        assert_eq!(why, Rejected::ShuttingDown);
    }

    #[test]
    fn close_with_discard_returns_leftovers() {
        let q = TaskQueue::new(8);
        q.try_push(task(0, None)).unwrap();
        q.try_push(task(1, None)).unwrap();
        let leftovers = q.close(true);
        assert_eq!(leftovers.len(), 2);
        assert!(q.pop().is_none());
    }

    /// With tenants A (weight 3) and B (weight 1) both saturating the
    /// queue, pops interleave ~3:1 in A's favour — and B is never starved.
    #[test]
    fn pop_is_weighted_fair_share() {
        let q = TaskQueue::new(16);
        for i in 0..6 {
            q.try_push(tenant_task(i, None, Some(0), 3)).unwrap();
        }
        for i in 6..12 {
            q.try_push(tenant_task(i, None, Some(1), 1)).unwrap();
        }
        let order: Vec<u32> = (0..12)
            .map(|_| q.pop().and_then(|t| t.tenant).unwrap())
            .collect();
        // Deterministic deficit schedule: A pops charge 1/3 as much as B
        // pops, so A gets three slots for each of B's.
        let a_first_8 = order.iter().take(8).filter(|&&t| t == 0).count();
        assert_eq!(a_first_8, 6, "heavy tenant fills early slots 3:1: {order:?}");
        assert_eq!(order[0], 0, "ties go to the oldest task");
        assert!(order.ends_with(&[1, 1, 1, 1]), "light tenant drains last: {order:?}");
        // Within one tenant, order stays FIFO.
        let q2 = TaskQueue::new(4);
        q2.try_push(tenant_task(0, None, Some(7), 2)).unwrap();
        q2.try_push(tenant_task(1, None, Some(7), 2)).unwrap();
        assert_eq!(q2.pop().map(|t| t.id), Some(0));
        assert_eq!(q2.pop().map(|t| t.id), Some(1));
    }

    /// A light tenant submitting into a heavy tenant's flood is served
    /// next, not behind the whole backlog.
    #[test]
    fn light_tenant_jumps_a_flood() {
        let q = TaskQueue::new(64);
        for i in 0..20 {
            q.try_push(tenant_task(i, None, Some(9), 1)).unwrap();
        }
        // Two flood pops advance tenant 9's clock...
        assert_eq!(q.pop().map(|t| t.id), Some(0));
        assert_eq!(q.pop().map(|t| t.id), Some(1));
        // ...so the late-arriving light tenant (seeded at the active
        // floor, which is tenant 9's advanced clock) is NOT unfairly
        // ahead, but competes evenly from here.
        q.try_push(tenant_task(100, None, Some(5), 1)).unwrap();
        let next_two: Vec<u64> = (0..2).map(|_| q.pop().map(|t| t.id).unwrap()).collect();
        assert!(
            next_two.contains(&100),
            "light tenant served within two pops of arriving: {next_two:?}"
        );
    }

    /// A tenant that seeds its clock while the queue is momentarily
    /// empty must not restart at zero virtual time: that would buy it
    /// exclusive service until it caught up with a returning tenant's
    /// accumulated history. The system clock survives the drain, so
    /// service interleaves from the first pops.
    #[test]
    fn empty_queue_join_cannot_starve_a_returning_tenant() {
        let q = TaskQueue::new(16);
        // Tenant 1 works through a burst; the queue drains empty.
        for i in 0..4 {
            q.try_push(tenant_task(i, None, Some(1), 1)).unwrap();
        }
        for _ in 0..4 {
            assert!(q.pop().is_some());
        }
        assert_eq!(q.depth(), 0);
        // Tenant 2 joins at the quiet moment, then tenant 1 returns.
        for i in 0..4 {
            q.try_push(tenant_task(10 + i, None, Some(2), 1)).unwrap();
        }
        for i in 0..4 {
            q.try_push(tenant_task(20 + i, None, Some(1), 1)).unwrap();
        }
        let first_four: Vec<u32> = (0..4)
            .map(|_| q.pop().and_then(|t| t.tenant).unwrap())
            .collect();
        assert!(
            first_four.contains(&1),
            "returning tenant starved behind a fresh-seeded one: {first_four:?}"
        );
    }

    #[test]
    fn drain_remaining_empties_the_queue() {
        let q = TaskQueue::new(8);
        q.try_push(task(0, None)).unwrap();
        q.try_push(task(1, None)).unwrap();
        q.close(false); // graceful: items stay queued for workers
        let stranded = q.drain_remaining();
        assert_eq!(stranded.len(), 2);
        assert_eq!(q.depth(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn rejections_display() {
        assert!(Rejected::QueueFull { capacity: 4 }
            .to_string()
            .contains("capacity 4"));
        assert!(Rejected::TooLarge {
            what: "node",
            limit: 10,
            actual: 11
        }
        .to_string()
        .contains("admission limit"));
        assert!(Rejected::ShuttingDown.to_string().contains("shutting down"));
    }
}
