//! The fault-isolated concurrent job service.
//!
//! [`JobService::start`] spawns a pool of worker threads around a
//! bounded queue and a watchdog. The failure-containment story, layer by
//! layer:
//!
//! * **Admission control** — oversized inputs and submissions to a full
//!   queue are shed synchronously with a typed [`Rejected`]; nothing
//!   unbounded ever enters the system.
//! * **Panic isolation** — each job runs under `catch_unwind`; a panic
//!   is converted into a retry (with exponential backoff and seeded
//!   jitter) and, once the attempt budget is spent, a typed
//!   [`JobError::Panicked`] outcome. A worker that has caught too many
//!   panics is quarantined (retired), and the watchdog respawns a fresh
//!   thread in its place — panics never abort the process and poisoned
//!   worker state never serves another job.
//! * **Deadlines** — a job's deadline is armed at admission. Expired
//!   before a worker picks it up: resolved [`JobOutcome::TimedOut`]
//!   without running. Running exploration jobs get the deadline pushed
//!   into their [`Supervisor`] (and a [`CancelToken`] the watchdog
//!   cancels if they overstay), so they stop early with best-so-far
//!   results rather than being killed.
//! * **Circuit breaker** — consecutive estimator failures trip the
//!   breaker; while open, estimation jobs run with
//!   [`EstimatorConfig::degraded`](slif_estimate::EstimatorConfig::degraded)
//!   (approximate, flagged results) until a cooled-down probe at full
//!   strictness succeeds.
//! * **Graceful drain** — [`JobService::shutdown`] stops admissions and
//!   lets workers drain the queue; [`JobService::shutdown_now`] discards
//!   queued jobs (resolving them [`JobOutcome::Cancelled`]) and cancels
//!   in-flight explorations.

use crate::breaker::{BreakerState, CircuitBreaker};
use crate::handle::{JobHandle, JobOutcome, TerminalHook};
use crate::health::{HealthSnapshot, Metrics};
use crate::job::{Job, JobError, RunLimits};
use crate::queue::{Rejected, Task, TaskQueue};
use crate::retry::RetryPolicy;
use crate::BreakerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use slif_explore::{CancelToken, Supervisor};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for a [`JobService`].
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct ServiceConfig {
    /// Worker threads (default 2, floor 1).
    pub workers: usize,
    /// Queue capacity; submissions beyond it are shed (default 64).
    pub queue_capacity: usize,
    /// Deadline applied by [`JobService::submit`] when the caller does
    /// not pass one (default none).
    pub default_deadline: Option<Duration>,
    /// Retry policy for transient (panic) failures.
    pub retry: RetryPolicy,
    /// Circuit-breaker tuning for the estimation path.
    pub breaker: BreakerConfig,
    /// Resource caps under which every job runs.
    pub limits: RunLimits,
    /// Caught panics after which a worker is quarantined and replaced
    /// (default 3, floor 1).
    pub max_worker_panics: u32,
    /// Watchdog wake-up cadence (default 20 ms).
    pub watchdog_interval: Duration,
    /// Seed for retry jitter; equal seeds give reproducible backoff
    /// schedules (default 0).
    pub seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            default_deadline: None,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            limits: RunLimits::default(),
            max_worker_panics: 3,
            watchdog_interval: Duration::from_millis(20),
            seed: 0,
        }
    }
}

impl ServiceConfig {
    /// The default tuning.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count (floor 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the queue capacity (floor 1).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the default per-job deadline.
    #[must_use]
    pub fn with_default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Sets the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the circuit-breaker tuning.
    #[must_use]
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Sets the resource caps.
    #[must_use]
    pub fn with_limits(mut self, limits: RunLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets the worker quarantine threshold (floor 1).
    #[must_use]
    pub fn with_max_worker_panics(mut self, max_worker_panics: u32) -> Self {
        self.max_worker_panics = max_worker_panics.max(1);
        self
    }

    /// Sets the watchdog cadence (floor 1 ms).
    #[must_use]
    pub fn with_watchdog_interval(mut self, interval: Duration) -> Self {
        self.watchdog_interval = interval.max(Duration::from_millis(1));
        self
    }

    /// Sets the jitter seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn normalized(mut self) -> Self {
        self.workers = self.workers.max(1);
        self.queue_capacity = self.queue_capacity.max(1);
        self.max_worker_panics = self.max_worker_panics.max(1);
        self.watchdog_interval = self.watchdog_interval.max(Duration::from_millis(1));
        self
    }
}

/// An in-flight exploration the watchdog can cancel when overdue.
#[derive(Debug)]
struct InflightJob {
    id: u64,
    deadline: Option<Instant>,
    cancel: CancelToken,
}

#[derive(Debug)]
struct Shared {
    config: ServiceConfig,
    queue: TaskQueue,
    metrics: Metrics,
    breaker: CircuitBreaker,
    shutting_down: AtomicBool,
    watchdog_stop: AtomicBool,
    workers_alive: AtomicUsize,
    worker_seq: AtomicU64,
    worker_handles: Mutex<Vec<JoinHandle<()>>>,
    inflight: Mutex<Vec<InflightJob>>,
}

/// A multi-worker job service with backpressure, retries, a circuit
/// breaker, resource guards, and panic isolation.
///
/// # Examples
///
/// ```
/// use slif_runtime::{Job, JobService, ServiceConfig};
///
/// let svc = JobService::start(ServiceConfig::new().with_workers(1));
/// let handle = svc
///     .submit(Job::ParseSpec {
///         source: "system T;\nvar x : int<8>;\nprocess Main { x = x + 1; }\n".into(),
///     })
///     .map_err(|e| e.to_string())?;
/// assert!(handle.wait().is_completed());
/// svc.shutdown();
/// # Ok::<(), String>(())
/// ```
#[derive(Debug)]
pub struct JobService {
    shared: Arc<Shared>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
    next_id: AtomicU64,
}

impl JobService {
    /// Starts the worker pool and the watchdog.
    pub fn start(config: ServiceConfig) -> Self {
        let config = config.normalized();
        let shared = Arc::new(Shared {
            queue: TaskQueue::new(config.queue_capacity),
            metrics: Metrics::default(),
            breaker: CircuitBreaker::new(config.breaker),
            shutting_down: AtomicBool::new(false),
            watchdog_stop: AtomicBool::new(false),
            workers_alive: AtomicUsize::new(0),
            worker_seq: AtomicU64::new(0),
            worker_handles: Mutex::new(Vec::new()),
            inflight: Mutex::new(Vec::new()),
            config,
        });
        for _ in 0..shared.config.workers {
            spawn_worker(&shared);
        }
        let watchdog = {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("slif-watchdog".to_owned())
                .spawn(move || watchdog_loop(&s))
                .ok()
        };
        Self {
            shared,
            watchdog: Mutex::new(watchdog),
            next_id: AtomicU64::new(0),
        }
    }

    /// Submits a job under the configured default deadline.
    ///
    /// # Errors
    ///
    /// A typed [`Rejected`] when the job is shed at admission: the
    /// service is shutting down, the input exceeds a size guard, or the
    /// queue is full (backpressure — retry later).
    pub fn submit(&self, job: Job) -> Result<JobHandle, Rejected> {
        self.submit_with_deadline(job, self.shared.config.default_deadline)
    }

    /// Submits a job with an explicit deadline (`None` = unbounded).
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit).
    pub fn submit_with_deadline(
        &self,
        job: Job,
        deadline: Option<Duration>,
    ) -> Result<JobHandle, Rejected> {
        self.submit_inner(job, deadline, None, None)
    }

    /// Submits a job billed to a fair-share tenant.
    ///
    /// Tasks of the same `tenant` id share one virtual-time clock in the
    /// queue; under contention, tenants are dequeued in proportion to
    /// `weight` (floor 1) instead of strict FIFO, so one tenant's flood
    /// cannot starve another's trickle. This is the admission hook the
    /// wire server (`slif-serve`) layers its API-key tenancy onto.
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit).
    pub fn submit_for_tenant(
        &self,
        job: Job,
        deadline: Option<Duration>,
        tenant: u32,
        weight: u32,
    ) -> Result<JobHandle, Rejected> {
        self.submit_inner(job, deadline, Some((tenant, weight)), None)
    }

    /// Submits a job with a terminal observer: `hook` is invoked exactly
    /// once with the job's terminal outcome, on whichever path resolves
    /// it (completion, failure, timeout, or cancellation during
    /// shutdown), and strictly *before* any waiter on the returned
    /// handle can observe that outcome.
    ///
    /// This ordering is what makes a write-ahead journal correct: the
    /// hook can fsync the outcome to disk, so by the time a client is
    /// told "done" the result is already durable. A panicking hook is
    /// absorbed — the job still resolves.
    ///
    /// If admission rejects the job the hook is dropped unfired; the
    /// caller still holds the error and can record the rejection itself.
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit).
    pub fn submit_observed(
        &self,
        job: Job,
        deadline: Option<Duration>,
        tenant: Option<(u32, u32)>,
        hook: impl FnOnce(&JobOutcome) + Send + 'static,
    ) -> Result<JobHandle, Rejected> {
        self.submit_inner(job, deadline, tenant, Some(Box::new(hook)))
    }

    fn submit_inner(
        &self,
        job: Job,
        deadline: Option<Duration>,
        tenant: Option<(u32, u32)>,
        hook: Option<TerminalHook>,
    ) -> Result<JobHandle, Rejected> {
        if self.shared.shutting_down.load(Ordering::Relaxed) {
            Metrics::bump(&self.shared.metrics.shed);
            return Err(Rejected::ShuttingDown);
        }
        if let Some(rejection) = admission_size_check(&job, &self.shared.config.limits) {
            Metrics::bump(&self.shared.metrics.shed);
            return Err(rejection);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (handle, state) = JobHandle::new(id);
        if let Some(hook) = hook {
            state.set_hook(hook);
        }
        let task = Task {
            id,
            job,
            attempts: 0,
            not_before: None,
            deadline: deadline.map(|d| Instant::now() + d),
            tenant: tenant.map(|(t, _)| t),
            weight: tenant.map_or(1, |(_, w)| w.max(1)),
            handle: state,
        };
        match self.shared.queue.try_push(task) {
            Ok(()) => {
                Metrics::bump(&self.shared.metrics.submitted);
                Ok(handle)
            }
            Err((_task, rejection)) => {
                Metrics::bump(&self.shared.metrics.shed);
                Err(rejection)
            }
        }
    }

    /// A point-in-time health snapshot.
    pub fn health(&self) -> HealthSnapshot {
        let m = &self.shared.metrics;
        HealthSnapshot {
            queue_depth: self.shared.queue.depth(),
            in_flight: Metrics::read(&m.in_flight),
            workers_alive: self.shared.workers_alive.load(Ordering::Relaxed),
            submitted: Metrics::read(&m.submitted),
            completed: Metrics::read(&m.completed),
            failed: Metrics::read(&m.failed),
            shed: Metrics::read(&m.shed),
            retried: Metrics::read(&m.retried),
            timed_out: Metrics::read(&m.timed_out),
            cancelled: Metrics::read(&m.cancelled),
            worker_panics: Metrics::read(&m.worker_panics),
            degraded_runs: Metrics::read(&m.degraded_runs),
            breaker: self.shared.breaker.state(),
            breaker_trips: self.shared.breaker.trips(),
            latency: crate::lock(&m.latency).clone(),
        }
    }

    /// Graceful shutdown: stops admissions, drains the queue (every
    /// admitted job still reaches a real terminal state), then joins the
    /// workers and the watchdog. Idempotent.
    pub fn shutdown(&self) {
        self.stop(false);
    }

    /// Immediate shutdown: stops admissions, resolves every queued job
    /// [`JobOutcome::Cancelled`], and cancels in-flight explorations so
    /// they stop at their next boundary with best-so-far results.
    pub fn shutdown_now(&self) {
        self.stop(true);
    }

    fn stop(&self, discard: bool) {
        // Close the respawn gate and the admission gate as one step: the
        // flag is flipped under the same lock the watchdog holds while
        // respawning, so once this store is visible no worker can be
        // (re)spawned for jobs admitted after drain began — the watchdog
        // is either finished respawning or has not yet re-checked the
        // flag it is about to see set.
        {
            let _respawn_gate = crate::lock(&self.shared.worker_handles);
            self.shared.shutting_down.store(true, Ordering::SeqCst);
        }
        let leftovers = self.shared.queue.close(discard);
        for task in leftovers {
            Metrics::bump(&self.shared.metrics.cancelled);
            task.handle.resolve(JobOutcome::Cancelled);
        }
        if discard {
            for entry in crate::lock(&self.shared.inflight).iter() {
                entry.cancel.cancel();
            }
        }
        // Stop the watchdog before joining workers so it cannot respawn
        // a worker mid-join.
        self.shared.watchdog_stop.store(true, Ordering::Relaxed);
        if let Some(handle) = crate::lock(&self.watchdog).take() {
            drop(handle.join());
        }
        loop {
            let handles: Vec<JoinHandle<()>> = {
                let mut guard = crate::lock(&self.shared.worker_handles);
                guard.drain(..).collect()
            };
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                drop(handle.join());
            }
        }
        // Drain-race backstop: if every worker quarantined (and the
        // respawn gate rightly stayed shut) while late-admitted jobs were
        // still queued, those jobs have no worker left to run them. They
        // still get exactly one terminal state.
        for task in self.shared.queue.drain_remaining() {
            Metrics::bump(&self.shared.metrics.cancelled);
            task.handle.resolve(JobOutcome::Cancelled);
        }
    }
}

impl Drop for JobService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The admission size guard: refuse inputs whose mere size exceeds the
/// configured caps, before they occupy queue space.
fn admission_size_check(job: &Job, limits: &RunLimits) -> Option<Rejected> {
    match job {
        Job::ParseSpec { source } if source.len() > limits.parse.max_bytes => {
            Some(Rejected::TooLarge {
                what: "spec bytes",
                limit: limits.parse.max_bytes,
                actual: source.len(),
            })
        }
        Job::CompileDesign { design }
        | Job::Estimate { design, .. }
        | Job::Explore { design, .. }
        | Job::Analyze { design, .. }
        | Job::Export { design, .. } => {
            let graph = design.graph();
            if graph.node_count() > limits.graph.max_nodes {
                Some(Rejected::TooLarge {
                    what: "node",
                    limit: limits.graph.max_nodes,
                    actual: graph.node_count(),
                })
            } else if graph.channel_count() > limits.graph.max_channels {
                Some(Rejected::TooLarge {
                    what: "channel",
                    limit: limits.graph.max_channels,
                    actual: graph.channel_count(),
                })
            } else {
                None
            }
        }
        _ => None,
    }
}

fn spawn_worker(shared: &Arc<Shared>) {
    let mut handles = crate::lock(&shared.worker_handles);
    spawn_worker_locked(shared, &mut handles);
}

/// Spawns a worker while the caller already holds the `worker_handles`
/// lock — the same lock `stop` takes to flip the shutdown flag, which is
/// what makes "check the flag, then spawn" atomic against a drain.
fn spawn_worker_locked(shared: &Arc<Shared>, handles: &mut Vec<JoinHandle<()>>) {
    shared.workers_alive.fetch_add(1, Ordering::Relaxed);
    let s = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name("slif-worker".to_owned())
        .spawn(move || worker_loop(&s));
    match spawned {
        Ok(handle) => handles.push(handle),
        Err(_) => {
            shared.workers_alive.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    let seq = shared.worker_seq.fetch_add(1, Ordering::Relaxed);
    let mut rng = StdRng::seed_from_u64(
        shared
            .config
            .seed
            .wrapping_add(seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
    let mut panics_here = 0u32;
    while let Some(mut task) = shared.queue.pop() {
        if let Some(deadline) = task.deadline {
            if Instant::now() >= deadline {
                Metrics::bump(&shared.metrics.timed_out);
                task.handle.resolve(JobOutcome::TimedOut);
                continue;
            }
        }
        task.attempts += 1;
        let is_estimate = matches!(task.job, Job::Estimate { .. });
        let is_explore = matches!(task.job, Job::Explore { .. });
        let cancel = CancelToken::new();
        if is_explore {
            crate::lock(&shared.inflight).push(InflightJob {
                id: task.id,
                deadline: task.deadline,
                cancel: cancel.clone(),
            });
        }
        let degraded = is_estimate && shared.breaker.state() == BreakerState::Open;
        let estimate_override = match (&task.job, degraded) {
            (Job::Estimate { config, .. }, true) => Some(config.degraded()),
            _ => None,
        };
        Metrics::bump(&shared.metrics.in_flight);
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut supervisor = Supervisor::unlimited().with_cancel_token(cancel.clone());
            if let Some(deadline) = task.deadline {
                supervisor = supervisor.with_deadline_at(deadline);
            }
            task.job
                .run(&shared.config.limits, estimate_override, supervisor)
        }));
        shared.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
        if is_explore {
            crate::lock(&shared.inflight).retain(|e| e.id != task.id);
        }
        shared.metrics.record_latency(started.elapsed());
        match outcome {
            Ok(Ok(output)) => {
                if is_estimate && !degraded {
                    shared.breaker.on_success();
                }
                if degraded {
                    Metrics::bump(&shared.metrics.degraded_runs);
                }
                Metrics::bump(&shared.metrics.completed);
                task.handle.resolve(JobOutcome::Completed {
                    output,
                    attempts: task.attempts,
                    degraded,
                });
            }
            Ok(Err(error)) => {
                if is_estimate && !degraded {
                    shared.breaker.on_failure();
                }
                Metrics::bump(&shared.metrics.failed);
                task.handle.resolve(JobOutcome::Failed {
                    error,
                    attempts: task.attempts,
                });
            }
            Err(payload) => {
                panics_here += 1;
                Metrics::bump(&shared.metrics.worker_panics);
                let message = panic_message(payload.as_ref());
                if shared.config.retry.should_retry(task.attempts) {
                    let delay = shared.config.retry.backoff(task.attempts, &mut rng);
                    task.not_before = Some(Instant::now() + delay);
                    let handle = Arc::clone(&task.handle);
                    match shared.queue.requeue(task) {
                        Ok(()) => Metrics::bump(&shared.metrics.retried),
                        Err(_stranded) => {
                            // Discarding shutdown raced the retry: the
                            // job still gets a terminal state.
                            Metrics::bump(&shared.metrics.cancelled);
                            handle.resolve(JobOutcome::Cancelled);
                        }
                    }
                } else {
                    Metrics::bump(&shared.metrics.failed);
                    task.handle.resolve(JobOutcome::Failed {
                        error: JobError::Panicked { message },
                        attempts: task.attempts,
                    });
                }
                if panics_here >= shared.config.max_worker_panics {
                    // Quarantine: this thread has absorbed too many
                    // panics to trust its scratch state. Retire it; the
                    // watchdog spawns a clean replacement.
                    break;
                }
            }
        }
    }
    shared.workers_alive.fetch_sub(1, Ordering::Relaxed);
}

fn watchdog_loop(shared: &Arc<Shared>) {
    while !shared.watchdog_stop.load(Ordering::Relaxed) {
        // Cancel explorations that have overstayed their deadline; they
        // stop at the next supervisor boundary with best-so-far results.
        let now = Instant::now();
        for entry in crate::lock(&shared.inflight).iter() {
            if entry.deadline.is_some_and(|d| now >= d) {
                entry.cancel.cancel();
            }
        }
        // Replace quarantined workers to hold the pool at strength. The
        // shutdown re-check happens *under* the handles lock so it cannot
        // race a beginning drain: `stop` flips the flag under this same
        // lock, so either we respawn before drain begins (and the worker
        // is drained normally) or we observe the flag and stand down —
        // never a fresh worker spawned into a draining service.
        {
            let mut handles = crate::lock(&shared.worker_handles);
            if !shared.shutting_down.load(Ordering::SeqCst) {
                while shared.workers_alive.load(Ordering::Relaxed) < shared.config.workers {
                    spawn_worker_locked(shared, &mut handles);
                }
            }
        }
        std::thread::sleep(shared.config.watchdog_interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobOutput;
    use slif_core::{ClassKind, Design, NodeKind, Partition};
    use slif_estimate::EstimatorConfig;
    use slif_explore::{Algorithm, Objectives};

    const GOOD_SPEC: &str = "system T;\nvar x : int<8>;\nprocess Main { x = x + 1; }\n";

    fn fast_retry() -> RetryPolicy {
        RetryPolicy::new()
            .with_base_delay(Duration::from_millis(1))
            .with_max_delay(Duration::from_millis(2))
    }

    /// A design whose estimation fails at full strictness (no weights)
    /// but succeeds degraded (weights substituted).
    fn weightless_design() -> (Design, Partition) {
        let mut d = Design::new("weightless");
        let class = d.add_class("proc", ClassKind::StdProcessor);
        let n = d.graph_mut().add_node("Main", NodeKind::process());
        let cpu = d.add_processor("cpu0", class);
        let mut p = Partition::new(&d);
        p.assign_node(n, cpu.into());
        (d, p)
    }

    /// A design whose estimation succeeds at full strictness.
    fn healthy_design() -> (Design, Partition) {
        let (mut d, p) = weightless_design();
        let n = d.graph_mut().node_ids().next().unwrap();
        let class = d.class_ids().next().unwrap();
        d.graph_mut().node_mut(n).ict_mut().set(class, 10);
        d.graph_mut().node_mut(n).size_mut().set(class, 100);
        (d, p)
    }

    #[test]
    fn service_matches_inline_execution() {
        let svc = JobService::start(ServiceConfig::new().with_workers(2));
        let (design, partition) = healthy_design();
        let jobs = vec![
            Job::ParseSpec {
                source: GOOD_SPEC.to_owned(),
            },
            Job::CompileDesign {
                design: design.clone(),
            },
            Job::Estimate {
                design: design.clone(),
                partition: partition.clone(),
                config: EstimatorConfig::default(),
            },
            Job::Explore {
                design: design.clone(),
                start: partition.clone(),
                objectives: Objectives::default(),
                algorithm: Algorithm::RandomSearch {
                    iterations: 50,
                    seed: 7,
                },
            },
            Job::Analyze {
                design,
                partition: Some(partition),
                config: slif_analyze::AnalysisConfig::new(),
                source: None,
            },
        ];
        for job in jobs {
            let inline = job.run_inline(&RunLimits::default());
            let handle = svc.submit(job.clone()).unwrap();
            match (handle.wait(), inline) {
                (
                    JobOutcome::Completed {
                        output,
                        attempts,
                        degraded,
                    },
                    Ok(expected),
                ) => {
                    assert_eq!(output, expected, "{} diverged from inline", job.kind());
                    assert_eq!(attempts, 1);
                    assert!(!degraded);
                }
                (outcome, inline) => {
                    panic!("{}: outcome {outcome:?} vs inline {inline:?}", job.kind())
                }
            }
        }
        svc.shutdown();
    }

    #[test]
    fn analyze_jobs_on_injected_defects_complete_with_findings() {
        use slif_core::faults::FaultInjector;
        use slif_core::gen::DesignGenerator;

        let svc = JobService::start(ServiceConfig::new().with_workers(2));
        for seed in 0..4u64 {
            let (mut design, mut partition) = DesignGenerator::new(seed)
                .behaviors(8)
                .variables(5)
                .processors(2)
                .buses(2)
                .build();
            let planted = FaultInjector::new(seed).corrupt_analyzable(&mut design, &mut partition, 2);
            assert!(!planted.is_empty(), "seed {seed} planted nothing");
            let job = Job::Analyze {
                design,
                partition: Some(partition),
                config: slif_analyze::AnalysisConfig::new(),
                source: None,
            };
            let inline = job.run_inline(&RunLimits::default()).unwrap();
            let handle = svc.submit(job).unwrap();
            match handle.wait() {
                JobOutcome::Completed { output, .. } => {
                    // Analysis is total: a defective design is a report,
                    // not a failure, and the service reproduces inline
                    // semantics bit for bit.
                    assert_eq!(output, inline, "seed {seed} diverged from inline");
                }
                other => panic!("seed {seed}: unexpected outcome {other:?}"),
            }
        }
        svc.shutdown();
    }

    #[test]
    fn panics_are_isolated_retried_and_reported() {
        let svc = JobService::start(
            ServiceConfig::new()
                .with_workers(1)
                .with_retry(fast_retry().with_max_attempts(3)),
        );
        let handle = svc
            .submit(Job::InjectedPanic {
                message: "seeded fault".to_owned(),
            })
            .unwrap();
        match handle.wait() {
            JobOutcome::Failed { error, attempts } => {
                assert_eq!(attempts, 3, "all attempts spent");
                assert!(matches!(error, JobError::Panicked { ref message } if message == "seeded fault"));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        // The service still works after absorbing the panics.
        let ok = svc
            .submit(Job::ParseSpec {
                source: GOOD_SPEC.to_owned(),
            })
            .unwrap();
        assert!(ok.wait().is_completed());
        let health = svc.health();
        assert_eq!(health.worker_panics, 3);
        assert_eq!(health.retried, 2);
        svc.shutdown();
    }

    #[test]
    fn quarantined_workers_are_respawned() {
        let svc = JobService::start(
            ServiceConfig::new()
                .with_workers(1)
                .with_max_worker_panics(1)
                .with_retry(fast_retry().with_max_attempts(1))
                .with_watchdog_interval(Duration::from_millis(5)),
        );
        let handle = svc
            .submit(Job::InjectedPanic {
                message: "kill this worker".to_owned(),
            })
            .unwrap();
        assert!(matches!(handle.wait(), JobOutcome::Failed { .. }));
        // The watchdog replaces the retired worker and service continues.
        let ok = svc
            .submit(Job::ParseSpec {
                source: GOOD_SPEC.to_owned(),
            })
            .unwrap();
        assert!(ok.wait().is_completed());
        assert_eq!(svc.health().workers_alive, 1);
        svc.shutdown();
    }

    /// Regression for the drain-ordering race: with the pool quarantined
    /// and the watchdog mid-respawn-cycle, a drain racing a stream of
    /// admissions must neither let the watchdog respawn workers after the
    /// drain began nor strand a late-admitted job without a terminal
    /// state.
    #[test]
    fn drain_races_admission_without_respawn_or_stranding() {
        use std::sync::atomic::AtomicBool;
        for round in 0..10u64 {
            let svc = Arc::new(JobService::start(
                ServiceConfig::new()
                    .with_workers(1)
                    .with_max_worker_panics(1)
                    .with_retry(fast_retry().with_max_attempts(1))
                    .with_watchdog_interval(Duration::from_millis(1))
                    .with_seed(round),
            ));
            // Quarantine the only worker so respawning is in play.
            let boom = svc
                .submit(Job::InjectedPanic {
                    message: "quarantine".to_owned(),
                })
                .unwrap();
            assert!(matches!(boom.wait(), JobOutcome::Failed { .. }));
            let stop_flag = Arc::new(AtomicBool::new(false));
            let submitter = {
                let svc = Arc::clone(&svc);
                let stop_flag = Arc::clone(&stop_flag);
                std::thread::spawn(move || {
                    let mut admitted = Vec::new();
                    loop {
                        match svc.submit(Job::ParseSpec {
                            source: GOOD_SPEC.to_owned(),
                        }) {
                            Ok(handle) => admitted.push(handle),
                            Err(Rejected::ShuttingDown) => break,
                            Err(_) => {}
                        }
                        if stop_flag.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    admitted
                })
            };
            // Vary the interleaving across rounds so the race window
            // lands on different sides of the respawn check.
            std::thread::sleep(Duration::from_micros(100 * round));
            svc.shutdown();
            stop_flag.store(true, Ordering::Relaxed);
            let admitted = submitter.join().unwrap();
            for handle in admitted {
                let outcome = handle
                    .wait_timeout(Duration::from_secs(10))
                    .expect("admitted job stranded without a terminal state");
                assert!(
                    matches!(outcome, JobOutcome::Completed { .. } | JobOutcome::Cancelled),
                    "round {round}: unexpected terminal state {outcome:?}"
                );
            }
            assert_eq!(
                svc.health().workers_alive,
                0,
                "round {round}: a worker was respawned for a draining service"
            );
            assert_eq!(svc.health().queue_depth, 0, "round {round}: queue not swept");
        }
    }

    #[test]
    fn oversized_jobs_are_shed_at_admission() {
        let limits = RunLimits {
            parse: slif_speclang::ParseLimits::default().with_max_bytes(16),
            ..RunLimits::default()
        };
        let svc = JobService::start(ServiceConfig::new().with_workers(1).with_limits(limits));
        let err = svc
            .submit(Job::ParseSpec {
                source: GOOD_SPEC.to_owned(),
            })
            .unwrap_err();
        assert!(matches!(
            err,
            Rejected::TooLarge {
                what: "spec bytes",
                ..
            }
        ));
        assert_eq!(svc.health().shed, 1);
        svc.shutdown();
    }

    #[test]
    fn breaker_degrades_estimation_then_recovers() {
        let svc = JobService::start(
            ServiceConfig::new().with_workers(1).with_breaker(
                BreakerConfig::new()
                    .with_failure_threshold(2)
                    .with_cooldown(Duration::from_millis(10)),
            ),
        );
        let (bad, bad_p) = weightless_design();
        // Two strict failures trip the breaker...
        for _ in 0..2 {
            let h = svc
                .submit(Job::Estimate {
                    design: bad.clone(),
                    partition: bad_p.clone(),
                    config: EstimatorConfig::default(),
                })
                .unwrap();
            assert!(matches!(h.wait(), JobOutcome::Failed { .. }));
        }
        assert_eq!(svc.health().breaker, BreakerState::Open);
        // ...after which the same job is served degraded, with warnings.
        let h = svc
            .submit(Job::Estimate {
                design: bad.clone(),
                partition: bad_p.clone(),
                config: EstimatorConfig::default(),
            })
            .unwrap();
        match h.wait() {
            JobOutcome::Completed {
                output, degraded, ..
            } => {
                assert!(degraded);
                match output {
                    JobOutput::Estimated(report) => {
                        assert!(!report.warnings.is_empty(), "degraded runs warn")
                    }
                    other => panic!("unexpected output {other:?}"),
                }
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(svc.health().degraded_runs >= 1);
        // After the cooldown a healthy probe closes the breaker again.
        std::thread::sleep(Duration::from_millis(15));
        let (good, good_p) = healthy_design();
        let h = svc
            .submit(Job::Estimate {
                design: good,
                partition: good_p,
                config: EstimatorConfig::default(),
            })
            .unwrap();
        match h.wait() {
            JobOutcome::Completed { degraded, .. } => assert!(!degraded, "probe is strict"),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(svc.health().breaker, BreakerState::Closed);
        svc.shutdown();
    }

    #[test]
    fn expired_deadline_resolves_timed_out() {
        let svc = JobService::start(ServiceConfig::new().with_workers(1));
        // Occupy the single worker so the deadline can expire in queue.
        let slow = svc
            .submit(Job::Explore {
                design: healthy_design().0,
                start: healthy_design().1,
                objectives: Objectives::default(),
                algorithm: Algorithm::RandomSearch {
                    iterations: 20_000,
                    seed: 1,
                },
            })
            .unwrap();
        let doomed = svc
            .submit_with_deadline(
                Job::ParseSpec {
                    source: GOOD_SPEC.to_owned(),
                },
                Some(Duration::ZERO),
            )
            .unwrap();
        assert_eq!(doomed.wait(), JobOutcome::TimedOut);
        assert!(slow.wait().is_completed());
        assert_eq!(svc.health().timed_out, 1);
        svc.shutdown();
    }

    #[test]
    fn graceful_shutdown_drains_the_queue() {
        let svc = JobService::start(ServiceConfig::new().with_workers(2));
        let handles: Vec<JobHandle> = (0..20)
            .map(|_| {
                svc.submit(Job::ParseSpec {
                    source: GOOD_SPEC.to_owned(),
                })
                .unwrap()
            })
            .collect();
        svc.shutdown();
        for h in handles {
            assert!(h.wait().is_completed(), "drained job lost");
        }
        assert!(svc.submit(Job::ParseSpec { source: String::new() }).is_err());
    }

    #[test]
    fn immediate_shutdown_cancels_queued_jobs() {
        let svc = JobService::start(ServiceConfig::new().with_workers(1));
        // A slow job keeps the worker busy while we stack the queue.
        let slow = svc
            .submit(Job::Explore {
                design: healthy_design().0,
                start: healthy_design().1,
                objectives: Objectives::default(),
                algorithm: Algorithm::RandomSearch {
                    iterations: 50_000,
                    seed: 2,
                },
            })
            .unwrap();
        let queued: Vec<JobHandle> = (0..10)
            .map(|_| {
                svc.submit(Job::ParseSpec {
                    source: GOOD_SPEC.to_owned(),
                })
                .unwrap()
            })
            .collect();
        svc.shutdown_now();
        let mut cancelled = 0;
        for h in queued {
            match h.wait() {
                JobOutcome::Cancelled => cancelled += 1,
                JobOutcome::Completed { .. } => {} // raced onto the worker
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert!(cancelled > 0, "nothing was cancelled");
        // The in-flight job still reached a terminal state.
        assert!(matches!(
            slow.wait(),
            JobOutcome::Completed { .. } | JobOutcome::Cancelled
        ));
    }

    #[test]
    fn observed_submissions_fire_the_hook_before_the_waiter_returns() {
        use std::sync::atomic::AtomicU64;
        let svc = JobService::start(ServiceConfig::new().with_workers(1));
        let observed = Arc::new(Mutex::new(None::<JobOutcome>));
        let seq = Arc::new(AtomicU64::new(0));
        let slot = Arc::clone(&observed);
        let hook_seq = Arc::clone(&seq);
        let handle = svc
            .submit_observed(
                Job::ParseSpec {
                    source: GOOD_SPEC.to_owned(),
                },
                None,
                Some((1, 1)),
                move |outcome| {
                    *crate::lock(&slot) = Some(outcome.clone());
                    hook_seq.store(1, Ordering::SeqCst);
                },
            )
            .unwrap();
        let outcome = handle.wait();
        // The hook ran (and finished) before wait() could return.
        assert_eq!(seq.load(Ordering::SeqCst), 1);
        assert_eq!(crate::lock(&observed).clone(), Some(outcome));
        svc.shutdown();
    }

    #[test]
    fn hook_fires_on_cancellation_paths_too() {
        let svc = JobService::start(ServiceConfig::new().with_workers(1));
        // Occupy the worker so observed jobs die in the queue.
        let slow = svc
            .submit(Job::Explore {
                design: healthy_design().0,
                start: healthy_design().1,
                objectives: Objectives::default(),
                algorithm: Algorithm::RandomSearch {
                    iterations: 100_000,
                    seed: 4,
                },
            })
            .unwrap();
        let observed = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<JobHandle> = (0..5)
            .map(|_| {
                let sink = Arc::clone(&observed);
                svc.submit_observed(
                    Job::ParseSpec {
                        source: GOOD_SPEC.to_owned(),
                    },
                    None,
                    None,
                    move |outcome| crate::lock(&sink).push(outcome.clone()),
                )
                .unwrap()
            })
            .collect();
        svc.shutdown_now();
        for h in handles {
            h.wait();
        }
        // Every observed job's terminal state reached its hook, even the
        // cancelled ones swept during the discarding shutdown.
        assert_eq!(crate::lock(&observed).len(), 5);
        drop(slow);
    }

    #[test]
    fn tenant_submissions_complete_like_anonymous_ones() {
        let svc = JobService::start(ServiceConfig::new().with_workers(1));
        let job = Job::ParseSpec {
            source: GOOD_SPEC.to_owned(),
        };
        let inline = job.run_inline(&RunLimits::default()).unwrap();
        let tenant = svc.submit_for_tenant(job.clone(), None, 3, 5).unwrap();
        let anon = svc.submit(job).unwrap();
        for handle in [tenant, anon] {
            match handle.wait() {
                JobOutcome::Completed { output, .. } => assert_eq!(output, inline),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        svc.shutdown();
    }

    #[test]
    fn queue_full_sheds_with_backpressure() {
        let svc = JobService::start(
            ServiceConfig::new()
                .with_workers(1)
                .with_queue_capacity(1),
        );
        // Occupy the worker...
        let slow = svc
            .submit(Job::Explore {
                design: healthy_design().0,
                start: healthy_design().1,
                objectives: Objectives::default(),
                algorithm: Algorithm::RandomSearch {
                    iterations: 100_000,
                    seed: 3,
                },
            })
            .unwrap();
        // ...then saturate the 1-slot queue.
        let mut saw_full = false;
        for _ in 0..50 {
            match svc.submit(Job::ParseSpec {
                source: GOOD_SPEC.to_owned(),
            }) {
                Err(Rejected::QueueFull { capacity }) => {
                    assert_eq!(capacity, 1);
                    saw_full = true;
                    break;
                }
                _ => {}
            }
        }
        assert!(saw_full, "queue never filled");
        assert!(svc.health().shed >= 1);
        drop(slow);
        svc.shutdown();
    }
}
