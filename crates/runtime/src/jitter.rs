//! Seeded jitter: the one place randomized spreading is derived.
//!
//! Both the service's retry backoff ([`RetryPolicy`](crate::RetryPolicy))
//! and the wire load generator (`slif-serve`'s `loadgen`) need the same
//! two ingredients: a per-stream RNG derived deterministically from one
//! master seed, and a bounded multiplicative jitter factor that spreads
//! concurrent timers so they do not stampede. Keeping both here means a
//! fault run replayed with the same seed produces the same backoff
//! schedule *and* the same client pacing — reproducibility across the
//! wire, not just inside the process.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The 64-bit golden-ratio increment used to decorrelate streams drawn
/// from one master seed (Weyl-sequence style).
pub const STREAM_INCREMENT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the RNG for stream `stream` of master seed `seed`.
///
/// Streams of the same seed are decorrelated from each other; equal
/// `(seed, stream)` pairs always produce identical sequences. Worker
/// threads, load-generator clients, and fault planners each take their
/// own stream index.
pub fn seeded_rng(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(seed.wrapping_add(stream.wrapping_mul(STREAM_INCREMENT)))
}

/// Draws one multiplicative jitter factor from `[1 - jitter/2, 1 + jitter/2)`.
///
/// `jitter` is clamped to `[0, 1]`; a clamped value of 0 always yields
/// exactly 1.0 (no randomness consumed is *not* guaranteed — callers that
/// need byte-stable replay must keep the jitter setting itself stable).
pub fn jitter_factor(jitter: f64, rng: &mut StdRng) -> f64 {
    let jitter = jitter.clamp(0.0, 1.0);
    if jitter > 0.0 {
        1.0 - jitter / 2.0 + rng.gen_range(0.0..jitter)
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_decorrelated() {
        let mut a1 = seeded_rng(7, 0);
        let mut a2 = seeded_rng(7, 0);
        let mut b = seeded_rng(7, 1);
        let xs: Vec<u64> = (0..4).map(|_| a1.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..4).map(|_| a2.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..4).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys, "same (seed, stream) replays identically");
        assert_ne!(xs, zs, "different streams diverge");
    }

    #[test]
    fn factor_stays_in_band_and_clamps() {
        let mut rng = seeded_rng(3, 9);
        for _ in 0..100 {
            let f = jitter_factor(0.5, &mut rng);
            assert!((0.75..1.25).contains(&f), "{f} outside ±25%");
        }
        assert!((jitter_factor(0.0, &mut rng) - 1.0).abs() < f64::EPSILON);
        let f = jitter_factor(9.0, &mut rng);
        assert!((0.5..1.5).contains(&f), "clamped to jitter 1.0");
    }
}
