//! Service health: counters, latency histogram, and snapshots.
//!
//! A [`Watchdog`](crate::JobService) thread (and any caller of
//! [`JobService::health`](crate::JobService::health)) reads a consistent
//! [`HealthSnapshot`] of the service: queue depth, in-flight count,
//! terminal-state counters, breaker state, worker liveness, and a
//! log-bucketed per-job latency histogram.

use crate::breaker::BreakerState;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of latency buckets: bucket `i` counts jobs whose latency is in
/// `[2^(i-1), 2^i)` microseconds (bucket 0 counts sub-microsecond jobs),
/// with the last bucket open-ended.
pub const LATENCY_BUCKETS: usize = 24;

/// A log₂-bucketed histogram of per-job latencies (µs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one job latency.
    pub fn record(&mut self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - micros.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    /// The raw bucket counts; bucket `i` covers `[2^(i-1), 2^i)` µs
    /// (bucket 0 counts sub-µs jobs, the last bucket is open-ended).
    pub fn buckets(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.buckets
    }

    /// Total recorded jobs.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The median latency upper bound in µs (see
    /// [`quantile_upper_bound_micros`](Self::quantile_upper_bound_micros)).
    pub fn p50_micros(&self) -> Option<u64> {
        self.quantile_upper_bound_micros(0.50)
    }

    /// The 90th-percentile latency upper bound in µs.
    pub fn p90_micros(&self) -> Option<u64> {
        self.quantile_upper_bound_micros(0.90)
    }

    /// The 99th-percentile latency upper bound in µs — the tail the wire
    /// `/metrics` endpoint exports and `BENCH_serve.json` records.
    pub fn p99_micros(&self) -> Option<u64> {
        self.quantile_upper_bound_micros(0.99)
    }

    /// An upper bound (in µs) under which at least fraction `q` of
    /// recorded latencies fall, or `None` while empty. Quantiles from a
    /// log histogram are bucket-upper-bound approximations, good to a
    /// factor of two — enough for watchdog alerting.
    pub fn quantile_upper_bound_micros(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(1u64 << i.min(63));
            }
        }
        Some(u64::MAX)
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} jobs", self.count())?;
        if let Some(p50) = self.quantile_upper_bound_micros(0.5) {
            write!(f, ", p50 ≤ {p50} µs")?;
        }
        if let Some(p99) = self.quantile_upper_bound_micros(0.99) {
            write!(f, ", p99 ≤ {p99} µs")?;
        }
        Ok(())
    }
}

/// Lock-free counters the workers bump; `latency` is the one mutex-held
/// piece (histograms are not atomically updatable).
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub shed: AtomicU64,
    pub retried: AtomicU64,
    pub timed_out: AtomicU64,
    pub cancelled: AtomicU64,
    pub worker_panics: AtomicU64,
    pub degraded_runs: AtomicU64,
    pub in_flight: AtomicU64,
    pub latency: Mutex<LatencyHistogram>,
}

impl Metrics {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    pub(crate) fn record_latency(&self, latency: Duration) {
        crate::lock(&self.latency).record(latency);
    }
}

/// A point-in-time view of service health.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct HealthSnapshot {
    /// Jobs admitted but not yet picked up by a worker.
    pub queue_depth: usize,
    /// Jobs currently executing.
    pub in_flight: u64,
    /// Worker threads currently alive (quarantined workers excluded
    /// until the watchdog respawns them).
    pub workers_alive: usize,
    /// Jobs admitted since the service started.
    pub submitted: u64,
    /// Jobs that completed with a result.
    pub completed: u64,
    /// Jobs that failed with a typed error.
    pub failed: u64,
    /// Submissions shed at admission (queue full, too large, shutdown).
    pub shed: u64,
    /// Retry attempts scheduled after transient failures.
    pub retried: u64,
    /// Jobs whose deadline expired before execution.
    pub timed_out: u64,
    /// Jobs discarded by a non-draining shutdown.
    pub cancelled: u64,
    /// Worker panics caught and isolated.
    pub worker_panics: u64,
    /// Estimation jobs served by the degraded path.
    pub degraded_runs: u64,
    /// Circuit breaker state at snapshot time.
    pub breaker: BreakerState,
    /// Times the breaker has tripped open.
    pub breaker_trips: u64,
    /// Per-job latency distribution (terminal jobs only).
    pub latency: LatencyHistogram,
}

impl fmt::Display for HealthSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queue {} | in-flight {} | workers {} | ok {} | failed {} | shed {} | \
             retried {} | timed-out {} | panics {} | degraded {} | breaker {} | {}",
            self.queue_depth,
            self.in_flight,
            self.workers_alive,
            self.completed,
            self.failed,
            self.shed,
            self.retried,
            self.timed_out,
            self.worker_panics,
            self.degraded_runs,
            self.breaker,
            self.latency,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_micros() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(0)); // bucket 0
        h.record(Duration::from_micros(1)); // bucket 1
        h.record(Duration::from_micros(3)); // bucket 2
        h.record(Duration::from_micros(1000)); // bucket 10
        h.record(Duration::from_secs(3600)); // clamped to last bucket
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 1);
        assert_eq!(h.buckets()[10], 1);
        assert_eq!(h.buckets()[LATENCY_BUCKETS - 1], 1);
    }

    #[test]
    fn quantiles_are_upper_bounds() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile_upper_bound_micros(0.5), None);
        for _ in 0..99 {
            h.record(Duration::from_micros(3)); // bucket 2, bound 4
        }
        h.record(Duration::from_micros(60_000)); // bucket 16
        assert_eq!(h.quantile_upper_bound_micros(0.5), Some(4));
        assert_eq!(h.quantile_upper_bound_micros(1.0), Some(1 << 16));
        let display = h.to_string();
        assert!(display.contains("100 jobs"), "{display}");
    }

    /// Pins the percentile math exactly at bucket boundaries: with the
    /// population split across two buckets, each accessor must land on
    /// the bucket whose cumulative count first reaches `ceil(q·total)`.
    #[test]
    fn percentile_accessors_at_bucket_boundaries() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.p50_micros(), None);
        assert_eq!(h.p90_micros(), None);
        assert_eq!(h.p99_micros(), None);
        // 50 records in bucket 1 (bound 2 µs), 50 in bucket 4 (bound 16 µs).
        for _ in 0..50 {
            h.record(Duration::from_micros(1)); // bucket 1, bound 2
        }
        for _ in 0..50 {
            h.record(Duration::from_micros(10)); // bucket 4, bound 16
        }
        assert_eq!(h.buckets()[1], 50);
        assert_eq!(h.buckets()[4], 50);
        // p50 target = ceil(0.5 · 100) = 50 — reached exactly at the end
        // of bucket 1, so the boundary case stays in the lower bucket.
        assert_eq!(h.p50_micros(), Some(2));
        // p90 target = 90 and p99 target = 99 both fall in bucket 4.
        assert_eq!(h.p90_micros(), Some(16));
        assert_eq!(h.p99_micros(), Some(16));
        // A single straggler in the top bucket owns exactly the p100 tail.
        h.record(Duration::from_secs(3600));
        assert_eq!(h.p99_micros(), Some(16), "99th of 101 is still bucket 4");
        assert_eq!(
            h.quantile_upper_bound_micros(1.0),
            Some(1 << (LATENCY_BUCKETS - 1))
        );
    }
}
