//! # slif-runtime — a fault-isolated concurrent job service for SLIF
//!
//! The paper's promise is *fast* estimation — fast enough that design
//! evaluations become cheap, interactive operations ("a designer can
//! explore many more alternatives"). This crate turns the pipeline the
//! other crates build (parse → compile → estimate → explore) into a
//! *service*: a pool of worker threads behind a bounded queue that keeps
//! serving evaluations while individual jobs misbehave.
//!
//! The failure model is explicit. Every job reaches **exactly one**
//! terminal state ([`JobOutcome`]), and every refusal is typed
//! ([`Rejected`]):
//!
//! * hostile inputs are stopped at admission (size guards) or inside the
//!   lower layers ([`ParseLimits`](slif_speclang::ParseLimits),
//!   [`GraphLimits`](slif_core::GraphLimits)) with typed errors,
//! * worker panics are caught, retried with exponential backoff and
//!   seeded jitter, and finally reported as [`JobError::Panicked`] —
//!   never a process abort; a worker that absorbs too many panics is
//!   quarantined and respawned by the watchdog,
//! * estimator failure bursts trip a circuit breaker that serves
//!   degraded (approximate, warned) estimates until a probe at full
//!   strictness succeeds,
//! * deadlines are armed at admission and pushed into exploration
//!   supervisors, so overdue work stops with best-so-far results,
//! * a full queue sheds load with [`Rejected::QueueFull`] instead of
//!   blocking or growing without bound,
//! * shutdown drains gracefully ([`JobService::shutdown`]) or cancels
//!   crisply ([`JobService::shutdown_now`]).
//!
//! The service adds policy, never semantics: a clean job's result is
//! identical to running it inline with [`Job::run_inline`] — the soak
//! suite enforces this bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use slif_runtime::{Job, JobOutcome, JobService, ServiceConfig};
//!
//! let svc = JobService::start(ServiceConfig::new().with_workers(2));
//! let handle = svc
//!     .submit(Job::ParseSpec {
//!         source: "system T;\nvar x : int<8>;\nprocess Main { x = x + 1; }\n".into(),
//!     })
//!     .map_err(|e| e.to_string())?;
//! match handle.wait() {
//!     JobOutcome::Completed { output, .. } => drop(output),
//!     other => panic!("unexpected terminal state: {other:?}"),
//! }
//! println!("{}", svc.health());
//! svc.shutdown();
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Serving code must degrade, not die: no `expect` on library paths
// (promoted to an error by the verify gate's `-D warnings`).
#![warn(clippy::expect_used)]

mod breaker;
mod handle;
mod health;
pub mod jitter;
mod job;
mod queue;
mod retry;
mod service;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use handle::{JobHandle, JobOutcome};
pub use health::{HealthSnapshot, LatencyHistogram, LATENCY_BUCKETS};
pub use job::{Job, JobError, JobOutput, RunLimits};
pub use queue::Rejected;
pub use retry::RetryPolicy;
pub use service::{JobService, ServiceConfig};

use std::sync::{Mutex, MutexGuard};

/// Locks a mutex, recovering from poisoning: a worker that panicked
/// while holding a lock has already been isolated and quarantined by the
/// service, so the data behind the lock is still the source of truth for
/// everyone else. (Job execution itself never runs under these locks.)
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<JobService>();
        assert_send_sync::<JobHandle>();
        assert_send_sync::<JobOutcome>();
        assert_send_sync::<Rejected>();
        assert_send_sync::<HealthSnapshot>();
        assert_send_sync::<CircuitBreaker>();
    }

    #[test]
    fn lock_recovers_from_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let poisoner = std::sync::Arc::clone(&m);
        drop(
            std::thread::Builder::new()
                .spawn(move || {
                    let _guard = poisoner.lock();
                    panic!("poison the lock");
                })
                .map(std::thread::JoinHandle::join),
        );
        assert_eq!(*lock(&m), 7);
    }
}
