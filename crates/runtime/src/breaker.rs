//! Circuit breaker: trading estimate fidelity for service availability.
//!
//! When estimation jobs fail repeatedly (a burst of annotation-poor
//! designs, a corrupted technology library upstream), re-running every
//! one at full strictness keeps the whole service erroring. After
//! [`BreakerConfig::failure_threshold`] consecutive estimator failures
//! the breaker *opens*: estimation jobs run with the degraded
//! configuration
//! ([`EstimatorConfig::degraded`](slif_estimate::EstimatorConfig::degraded)),
//! which substitutes missing weights and flags the result approximate
//! instead of failing it. After [`BreakerConfig::cooldown`] the breaker
//! *half-opens* and the next estimation probes at full strictness:
//! success re-closes the breaker, failure re-opens it for another
//! cooldown.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation: estimation runs at full strictness.
    Closed,
    /// Tripped: estimation runs degraded until the cooldown passes.
    Open,
    /// Cooldown passed: probing at full strictness.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct BreakerConfig {
    /// Consecutive estimator failures that trip the breaker (default 5).
    pub failure_threshold: u32,
    /// How long the breaker stays open before half-opening (default 1 s).
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 5,
            cooldown: Duration::from_secs(1),
        }
    }
}

impl BreakerConfig {
    /// The default tuning.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the consecutive-failure trip threshold (minimum 1).
    #[must_use]
    pub fn with_failure_threshold(mut self, failure_threshold: u32) -> Self {
        self.failure_threshold = failure_threshold.max(1);
        self
    }

    /// Sets the open-state cooldown.
    #[must_use]
    pub fn with_cooldown(mut self, cooldown: Duration) -> Self {
        self.cooldown = cooldown;
        self
    }
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    open_until: Option<Instant>,
    trips: u64,
}

/// A thread-safe consecutive-failure circuit breaker.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                open_until: None,
                trips: 0,
            }),
        }
    }

    /// The current state. Reading it performs the open → half-open
    /// transition once the cooldown has passed.
    pub fn state(&self) -> BreakerState {
        let mut inner = crate::lock(&self.inner);
        if inner.state == BreakerState::Open
            && inner.open_until.is_none_or(|t| Instant::now() >= t)
        {
            inner.state = BreakerState::HalfOpen;
        }
        inner.state
    }

    /// How many times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        crate::lock(&self.inner).trips
    }

    /// Records a full-strictness estimator success: resets the failure
    /// streak and re-closes a half-open breaker.
    pub fn on_success(&self) {
        let mut inner = crate::lock(&self.inner);
        inner.consecutive_failures = 0;
        if inner.state == BreakerState::HalfOpen {
            inner.state = BreakerState::Closed;
            inner.open_until = None;
        }
    }

    /// Records a full-strictness estimator failure: extends the streak,
    /// trips the breaker at the threshold, and re-opens a half-open
    /// breaker immediately (the probe failed).
    pub fn on_failure(&self) {
        let mut inner = crate::lock(&self.inner);
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let failed_probe = inner.state == BreakerState::HalfOpen;
        if failed_probe || inner.consecutive_failures >= self.config.failure_threshold {
            if inner.state != BreakerState::Open {
                inner.trips += 1;
            }
            inner.state = BreakerState::Open;
            inner.open_until = Some(Instant::now() + self.config.cooldown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_and_recovers_via_probe() {
        let b = CircuitBreaker::new(
            BreakerConfig::new()
                .with_failure_threshold(3)
                .with_cooldown(Duration::from_millis(10)),
        );
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.state(), BreakerState::HalfOpen, "cooldown passed");
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let b = CircuitBreaker::new(
            BreakerConfig::new()
                .with_failure_threshold(2)
                .with_cooldown(Duration::from_millis(5)),
        );
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(8));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open, "one probe failure re-opens");
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn successes_reset_the_streak() {
        let b = CircuitBreaker::new(BreakerConfig::new().with_failure_threshold(2));
        b.on_failure();
        b.on_success();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak was broken");
    }

    #[test]
    fn config_floors_and_display() {
        let c = BreakerConfig::new().with_failure_threshold(0);
        assert_eq!(c.failure_threshold, 1);
        assert_eq!(BreakerState::HalfOpen.to_string(), "half-open");
        assert_eq!(BreakerState::Closed.to_string(), "closed");
        assert_eq!(BreakerState::Open.to_string(), "open");
    }
}
