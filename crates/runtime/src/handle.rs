//! Completion handles: how a submitter observes a job's terminal state.
//!
//! Admission returns a [`JobHandle`]; the service later resolves it with
//! exactly one [`JobOutcome`]. Handles are cheap to clone and safe to
//! wait on from any thread.

use crate::job::{JobError, JobOutput};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// An observer invoked exactly once, with the terminal outcome, *before*
/// any waiter can observe it. This is the durability hook: a journal can
/// fsync the outcome before the submitter is able to acknowledge it.
pub(crate) type TerminalHook = Box<dyn FnOnce(&JobOutcome) + Send>;

/// The terminal state of an admitted job. Every admitted job reaches
/// exactly one of these; a rejected job never gets a handle at all.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum JobOutcome {
    /// The job produced a result.
    Completed {
        /// The result.
        output: JobOutput,
        /// How many execution attempts were made (1 = no retries).
        attempts: u32,
        /// Whether the result came from the degraded estimation path
        /// (circuit breaker open). Degraded results are approximate —
        /// their report carries substitution warnings.
        degraded: bool,
    },
    /// The job failed with a typed error (after exhausting any retries).
    Failed {
        /// The final error.
        error: JobError,
        /// How many execution attempts were made.
        attempts: u32,
    },
    /// The job's deadline expired before a worker could run it.
    TimedOut,
    /// The service shut down without draining and discarded the job.
    Cancelled,
}

impl JobOutcome {
    /// Whether this outcome carries a successful result.
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed { .. })
    }
}

/// The shared slot a worker fills and a submitter waits on.
#[derive(Default)]
pub(crate) struct HandleState {
    slot: Mutex<Option<JobOutcome>>,
    cv: Condvar,
    hook: Mutex<Option<TerminalHook>>,
}

impl std::fmt::Debug for HandleState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HandleState")
            .field("slot", &crate::lock(&self.slot))
            .field("hooked", &crate::lock(&self.hook).is_some())
            .finish()
    }
}

impl HandleState {
    /// Attaches the terminal observer. Called at most once, by the
    /// submit path, before the task can reach any resolve site.
    pub(crate) fn set_hook(&self, hook: TerminalHook) {
        *crate::lock(&self.hook) = Some(hook);
    }

    /// Resolves the handle. Must be called exactly once; a second call is
    /// a service bug and is ignored (first outcome wins), so a submitter
    /// can never observe two terminal states.
    ///
    /// The terminal hook (if any) runs first — a waiter can only observe
    /// an outcome the hook has already seen (and, for a durability hook,
    /// already persisted). A panicking hook is absorbed: resolution must
    /// still happen on every path.
    pub(crate) fn resolve(&self, outcome: JobOutcome) {
        let hook = crate::lock(&self.hook).take();
        if let Some(hook) = hook {
            drop(catch_unwind(AssertUnwindSafe(|| hook(&outcome))));
        }
        let mut slot = crate::lock(&self.slot);
        if slot.is_none() {
            *slot = Some(outcome);
            self.cv.notify_all();
        } else {
            debug_assert!(false, "job resolved twice");
        }
    }
}

/// A cloneable handle to one admitted job.
#[derive(Debug, Clone)]
pub struct JobHandle {
    id: u64,
    state: Arc<HandleState>,
}

impl JobHandle {
    pub(crate) fn new(id: u64) -> (Self, Arc<HandleState>) {
        let state = Arc::new(HandleState::default());
        (
            Self {
                id,
                state: Arc::clone(&state),
            },
            state,
        )
    }

    /// The service-assigned job id (unique per service instance).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The outcome, if the job has already reached a terminal state.
    pub fn try_outcome(&self) -> Option<JobOutcome> {
        crate::lock(&self.state.slot).clone()
    }

    /// Blocks until the job reaches its terminal state.
    pub fn wait(&self) -> JobOutcome {
        let mut slot = crate::lock(&self.state.slot);
        loop {
            if let Some(outcome) = slot.clone() {
                return outcome;
            }
            slot = self
                .state
                .cv
                .wait(slot)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Blocks up to `timeout` for the terminal state.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobOutcome> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = crate::lock(&self.state.slot);
        loop {
            if let Some(outcome) = slot.clone() {
                return Some(outcome);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .state
                .cv
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            slot = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_wakes_waiters_and_is_idempotent() {
        let (handle, state) = JobHandle::new(7);
        assert_eq!(handle.id(), 7);
        assert!(handle.try_outcome().is_none());
        assert!(handle.wait_timeout(Duration::from_millis(5)).is_none());
        state.resolve(JobOutcome::TimedOut);
        assert_eq!(handle.wait(), JobOutcome::TimedOut);
        assert_eq!(handle.try_outcome(), Some(JobOutcome::TimedOut));
    }

    #[test]
    fn hook_fires_once_before_any_waiter_observes_the_outcome() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let (handle, state) = JobHandle::new(1);
        let fired = Arc::new(AtomicU32::new(0));
        // While the hook runs, the slot must still be empty: the hook
        // sees the outcome strictly before any waiter can.
        let probe = handle.clone();
        let fired_in_hook = Arc::clone(&fired);
        state.set_hook(Box::new(move |outcome| {
            assert!(matches!(outcome, JobOutcome::TimedOut));
            assert!(probe.try_outcome().is_none(), "waiter could see outcome before hook");
            fired_in_hook.fetch_add(1, Ordering::SeqCst);
        }));
        state.resolve(JobOutcome::TimedOut);
        assert_eq!(fired.load(Ordering::SeqCst), 1, "hook fires exactly once");
        assert_eq!(handle.wait(), JobOutcome::TimedOut);
    }

    #[test]
    fn panicking_hook_does_not_lose_the_outcome() {
        let (handle, state) = JobHandle::new(2);
        state.set_hook(Box::new(|_| panic!("journal exploded")));
        state.resolve(JobOutcome::Cancelled);
        assert_eq!(handle.wait(), JobOutcome::Cancelled);
    }

    #[test]
    fn wait_blocks_until_a_worker_resolves() {
        let (handle, state) = JobHandle::new(0);
        let waiter = handle.clone();
        let t = std::thread::spawn(move || waiter.wait());
        std::thread::sleep(Duration::from_millis(10));
        state.resolve(JobOutcome::Cancelled);
        assert_eq!(t.join().ok(), Some(JobOutcome::Cancelled));
    }
}
