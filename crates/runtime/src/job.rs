//! The unit of work a [`JobService`](crate::JobService) executes.
//!
//! A [`Job`] is one self-contained request against the SLIF pipeline:
//! parse a specification, compile a design, run the full estimator
//! report, or run a supervised exploration. Jobs own their inputs (no
//! borrowed data crosses the queue) and produce a [`JobOutput`] or a
//! typed [`JobError`] — never a panic, except for the documented
//! [`Job::InjectedPanic`] fault-injection hook.
//!
//! [`Job::run_inline`] executes a job on the caller's thread with no
//! service, no retries, and no deadline. It is the reference semantics:
//! the soak suite asserts that a clean job processed by the service
//! yields a result identical to its inline execution.

use slif_analyze::{
    analyze_compiled, analyze_compiled_with_flow, AnalysisConfig, AnalysisReport,
};
use slif_core::{CompiledDesign, CoreError, Design, GraphLimits, Partition};
use slif_estimate::{DesignReport, EstimatorConfig};
use slif_formats::wirefmt::{
    read_bytes, write_bytes, Encoding, FormatError, FormatLimits, Strictness,
};
use slif_explore::{
    explore, Algorithm, ExploreError, Objectives, SupervisedResult, Supervisor,
};
use slif_session::{EditSession, SessionConfig, SessionHandle, SessionUpdate};
use slif_speclang::{parse_with_limits, pretty, resolve, ParseLimits};
use std::fmt;

/// Resource caps under which every job runs: parser limits for
/// specification inputs, graph limits for design inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct RunLimits {
    /// Caps on specification source (bytes, tokens, nesting depth).
    pub parse: ParseLimits,
    /// Caps on design size (nodes, ports, channels, weight cells).
    pub graph: GraphLimits,
}

impl RunLimits {
    /// Replaces the parser limits.
    #[must_use]
    pub fn with_parse(mut self, parse: ParseLimits) -> Self {
        self.parse = parse;
        self
    }

    /// Replaces the design-graph limits.
    #[must_use]
    pub fn with_graph(mut self, graph: GraphLimits) -> Self {
        self.graph = graph;
        self
    }
}

/// One request against the SLIF pipeline.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Job {
    /// Parse and resolve specification source, returning its canonical
    /// pretty-printed form.
    ParseSpec {
        /// The specification source text.
        source: String,
    },
    /// Compile a design into its query-optimized snapshot and report its
    /// size.
    CompileDesign {
        /// The design to compile.
        design: Design,
    },
    /// Run the full estimator report (Equations 1–6) for a partition.
    Estimate {
        /// The design to estimate.
        design: Design,
        /// The partition to estimate it under.
        partition: Partition,
        /// The estimator configuration. A service may substitute a
        /// degraded configuration while its circuit breaker is open.
        config: EstimatorConfig,
    },
    /// Run a supervised exploration from a starting partition.
    Explore {
        /// The design to explore.
        design: Design,
        /// The starting partition.
        start: Partition,
        /// The cost objectives.
        objectives: Objectives,
        /// The partitioning algorithm (seeds included, so runs are
        /// reproducible).
        algorithm: Algorithm,
    },
    /// Run the `slif-analyze` lint engine (races, dead code, recursion
    /// cycles, bitwidth hazards, annotation gaps) over a design.
    Analyze {
        /// The design to lint.
        design: Design,
        /// An optional partition; with one, the mapping-sensitive lints
        /// (race serialization, bus existence and transfer splitting)
        /// see the mapping too.
        partition: Option<Partition>,
        /// Per-lint levels and thresholds.
        config: AnalysisConfig,
        /// The specification source the design was built from, when the
        /// caller has it. With it, the flow-sensitive dataflow lints
        /// (`A006`–`A009`) run over the lowered behavior bodies, in-spec
        /// `@allow` suppressions are honored, and findings carry source
        /// spans. Source that fails to parse is a typed
        /// [`JobError::Spec`] failure, never a silently flow-less run.
        source: Option<String>,
    },
    /// Open an incremental edit session over specification source. The
    /// output carries a shared [`SessionHandle`]; subsequent edits go
    /// straight to the handle (cheap, slice-based) rather than through
    /// the job queue. Broken source still opens — the session reports
    /// its diagnostics and recovers on the first fixing edit — so this
    /// job only fails on infrastructure errors, never on content.
    EditSession {
        /// The initial specification source text.
        source: String,
    },
    /// Read a design (and optional partition) from `.slif` text or
    /// `.slifb` binary interchange bytes. The encoding is sniffed from
    /// the leading bytes; the read is strict — damage, caps, and
    /// content-key mismatches are typed [`JobError::Format`] failures,
    /// never a silently wrong design.
    Import {
        /// The raw interchange bytes, either encoding.
        bytes: Vec<u8>,
    },
    /// Write a design (and optional partition) as `.slif` text or
    /// `.slifb` binary interchange bytes.
    Export {
        /// The design to encode.
        design: Design,
        /// An optional partition to carry alongside it.
        partition: Option<Partition>,
        /// Which wire encoding to emit.
        encoding: Encoding,
    },
    /// Panics on execution. The fault-injection hook for exercising the
    /// service's panic isolation: a well-behaved service converts it into
    /// a retried-then-failed outcome, never a process abort.
    InjectedPanic {
        /// The panic message.
        message: String,
    },
}

impl Job {
    /// A stable kebab-case name for the job's kind, for logs and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            Job::ParseSpec { .. } => "parse-spec",
            Job::CompileDesign { .. } => "compile-design",
            Job::Estimate { .. } => "estimate",
            Job::Explore { .. } => "explore",
            Job::Analyze { .. } => "analyze",
            Job::EditSession { .. } => "edit-session",
            Job::Import { .. } => "import",
            Job::Export { .. } => "export",
            Job::InjectedPanic { .. } => "injected-panic",
        }
    }

    /// Executes the job on the calling thread with no supervision: default
    /// estimator configuration handling, an unlimited supervisor, no
    /// retries, no deadline. This is the reference semantics the service
    /// must reproduce for clean jobs.
    ///
    /// # Errors
    ///
    /// Any typed failure of the underlying pipeline stage.
    ///
    /// # Panics
    ///
    /// Only for [`Job::InjectedPanic`], by design.
    pub fn run_inline(&self, limits: &RunLimits) -> Result<JobOutput, JobError> {
        self.run(limits, None, Supervisor::unlimited())
    }

    /// Executes the job under explicit control: an optional estimator
    /// configuration override (the degraded path while a breaker is open)
    /// and a caller-built supervisor (deadline and cancellation wiring)
    /// for exploration jobs.
    pub(crate) fn run(
        &self,
        limits: &RunLimits,
        estimate_override: Option<EstimatorConfig>,
        mut supervisor: Supervisor,
    ) -> Result<JobOutput, JobError> {
        match self {
            Job::ParseSpec { source } => {
                let spec = parse_with_limits(source, &limits.parse)
                    .map_err(|e| JobError::Spec(e.to_string()))?;
                let canonical = pretty(&spec);
                let behaviors = spec.behaviors.len();
                resolve(spec).map_err(|e| JobError::Spec(e.to_string()))?;
                Ok(JobOutput::Parsed {
                    canonical,
                    behaviors,
                })
            }
            Job::CompileDesign { design } => {
                let cd = CompiledDesign::compile_bounded(design, &limits.graph)?;
                Ok(JobOutput::Compiled {
                    nodes: cd.node_count(),
                    ports: cd.port_count(),
                    channels: cd.channel_count(),
                    classes: cd.class_count(),
                })
            }
            Job::Estimate {
                design,
                partition,
                config,
            } => {
                design.graph().check_limits(&limits.graph)?;
                let cfg = estimate_override.unwrap_or(*config);
                let report = DesignReport::compute_with(design, partition, cfg)?;
                Ok(JobOutput::Estimated(report))
            }
            Job::Explore {
                design,
                start,
                objectives,
                algorithm,
            } => {
                design.graph().check_limits(&limits.graph)?;
                let result =
                    explore(design, start.clone(), objectives, algorithm, &mut supervisor)?;
                Ok(JobOutput::Explored(result))
            }
            Job::Analyze {
                design,
                partition,
                config,
                source,
            } => {
                let cd = CompiledDesign::compile_bounded(design, &limits.graph)?;
                let report = match source {
                    Some(src) => {
                        let spec = parse_with_limits(src, &limits.parse)
                            .map_err(|e| JobError::Spec(e.to_string()))?;
                        let flow = slif_speclang::FlowProgram::from_spec(&spec);
                        let sources = slif_speclang::SourceMap::from_spec(&spec);
                        analyze_compiled_with_flow(
                            &cd,
                            partition.as_ref(),
                            config,
                            &flow,
                            Some(&sources),
                        )
                    }
                    None => analyze_compiled(&cd, partition.as_ref(), config),
                };
                Ok(JobOutput::Analyzed(report))
            }
            Job::EditSession { source } => {
                let config = SessionConfig {
                    parse_limits: limits.parse,
                    ..SessionConfig::default()
                };
                let (session, update) = EditSession::open(source, config);
                Ok(JobOutput::Session {
                    session: SessionHandle::new(session),
                    update,
                })
            }
            Job::Import { bytes } => {
                let fmt_limits = FormatLimits::default().with_graph(limits.graph);
                let encoding = slif_formats::detect_encoding(bytes)
                    .ok_or(FormatError::BadMagic { offset: 0 })?;
                let outcome = read_bytes(bytes, Strictness::Strict, &fmt_limits)?;
                Ok(JobOutput::Imported {
                    encoding,
                    design: Box::new(outcome.design),
                    partition: outcome.partition,
                    warnings: outcome.diagnostics.len(),
                    verified: outcome.verified,
                })
            }
            Job::Export {
                design,
                partition,
                encoding,
            } => {
                design.graph().check_limits(&limits.graph)?;
                let bytes = write_bytes(design, partition.as_ref(), *encoding)?;
                Ok(JobOutput::Exported {
                    encoding: *encoding,
                    bytes,
                })
            }
            Job::InjectedPanic { message } => panic!("{message}"),
        }
    }
}

/// The successful result of a job.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum JobOutput {
    /// A parsed and resolved specification.
    Parsed {
        /// The canonical pretty-printed form of the parsed spec.
        canonical: String,
        /// How many behaviors (processes and procedures) it declares.
        behaviors: usize,
    },
    /// A compiled design's size summary.
    Compiled {
        /// Node count of the compiled snapshot.
        nodes: usize,
        /// Port count.
        ports: usize,
        /// Channel count.
        channels: usize,
        /// Component-class count.
        classes: usize,
    },
    /// A full estimator report.
    Estimated(DesignReport),
    /// A supervised exploration outcome (best partition seen, stop
    /// reason, checkpoints written).
    Explored(SupervisedResult),
    /// A lint report. Findings are data, not failures: a report full of
    /// denials is still a *successful* analysis job.
    Analyzed(AnalysisReport),
    /// A design read from interchange bytes.
    Imported {
        /// Which encoding the bytes carried.
        encoding: Encoding,
        /// The decoded design. Boxed so the common outputs do not pay
        /// this variant's size in every `JobOutcome`.
        design: Box<Design>,
        /// The decoded partition, when the bytes carried one.
        partition: Option<Partition>,
        /// How many non-fatal diagnostics the reader noted (for example
        /// skipped unknown extension sections).
        warnings: usize,
        /// Whether the embedded content key matched the decoded design.
        verified: bool,
    },
    /// A design encoded as interchange bytes.
    Exported {
        /// Which encoding was emitted.
        encoding: Encoding,
        /// The encoded bytes.
        bytes: Vec<u8>,
    },
    /// An opened edit session: the shared handle plus the opening
    /// update (revision 0 state, diagnostics if the source was broken).
    Session {
        /// The live session, shared with whoever holds the output.
        session: SessionHandle,
        /// What opening computed: tier, cleanliness, initial reports.
        update: SessionUpdate,
    },
}

/// A typed job failure.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum JobError {
    /// The specification failed to parse or resolve; the message carries
    /// every rendered diagnostic.
    Spec(String),
    /// The core/estimation layer rejected the input.
    Core(CoreError),
    /// The exploration layer failed.
    Explore(ExploreError),
    /// Interchange bytes were refused: damage, a cap, or a content-key
    /// mismatch.
    Format(FormatError),
    /// The job panicked (possibly repeatedly, through every retry).
    Panicked {
        /// The final panic's message.
        message: String,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Spec(msg) => write!(f, "specification rejected: {msg}"),
            JobError::Core(e) => write!(f, "{e}"),
            JobError::Explore(e) => write!(f, "{e}"),
            JobError::Format(e) => write!(f, "interchange bytes rejected: {e}"),
            JobError::Panicked { message } => write!(f, "job panicked: {message}"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<CoreError> for JobError {
    fn from(e: CoreError) -> Self {
        JobError::Core(e)
    }
}

impl From<ExploreError> for JobError {
    fn from(e: ExploreError) -> Self {
        JobError::Explore(e)
    }
}

impl From<FormatError> for JobError {
    fn from(e: FormatError) -> Self {
        JobError::Format(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD_SPEC: &str = "system T;\nvar x : int<8>;\nprocess Main { x = x + 1; }\n";

    #[test]
    fn parse_job_runs_inline() {
        let job = Job::ParseSpec {
            source: GOOD_SPEC.to_owned(),
        };
        let out = job.run_inline(&RunLimits::default()).unwrap();
        match out {
            JobOutput::Parsed { behaviors, .. } => assert_eq!(behaviors, 1),
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn malformed_spec_is_a_typed_error() {
        let job = Job::ParseSpec {
            source: "system ; process {".to_owned(),
        };
        let err = job.run_inline(&RunLimits::default()).unwrap_err();
        assert!(matches!(err, JobError::Spec(_)));
        assert!(err.to_string().starts_with("specification rejected"));
    }

    #[test]
    fn over_limit_spec_is_a_typed_error() {
        let limits = RunLimits {
            parse: ParseLimits::default().with_max_bytes(8),
            ..RunLimits::default()
        };
        let job = Job::ParseSpec {
            source: GOOD_SPEC.to_owned(),
        };
        let err = job.run_inline(&limits).unwrap_err();
        assert!(err.to_string().contains("P004"), "{err}");
    }

    #[test]
    fn analyze_job_reports_findings_inline() {
        use slif_analyze::LintId;
        use slif_core::{AccessKind, NodeKind};

        let mut d = Design::new("cyclic");
        let main = d.graph_mut().add_node("Main", NodeKind::process());
        let a = d.graph_mut().add_node("a", NodeKind::procedure());
        let b = d.graph_mut().add_node("b", NodeKind::procedure());
        d.graph_mut()
            .add_channel(main, a.into(), AccessKind::Call)
            .unwrap();
        d.graph_mut().add_channel(a, b.into(), AccessKind::Call).unwrap();
        d.graph_mut().add_channel(b, a.into(), AccessKind::Call).unwrap();

        let job = Job::Analyze {
            design: d,
            partition: None,
            config: AnalysisConfig::new(),
            source: None,
        };
        assert_eq!(job.kind(), "analyze");
        match job.run_inline(&RunLimits::default()).unwrap() {
            JobOutput::Analyzed(report) => {
                assert!(report.has_denials(), "{report}");
                assert_eq!(report.of(LintId::RecursionCycle).count(), 1, "{report}");
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn analyze_job_on_clean_design_is_clean() {
        use slif_core::{AccessKind, NodeKind};

        let mut d = Design::new("clean");
        let main = d.graph_mut().add_node("Main", NodeKind::process());
        let v = d.graph_mut().add_node("v", NodeKind::scalar(8));
        d.graph_mut()
            .add_channel(main, v.into(), AccessKind::Write)
            .unwrap();
        let job = Job::Analyze {
            design: d,
            partition: None,
            config: AnalysisConfig::new(),
            source: None,
        };
        match job.run_inline(&RunLimits::default()).unwrap() {
            JobOutput::Analyzed(report) => assert!(report.is_clean(), "{report}"),
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn over_limit_analyze_job_is_a_typed_error() {
        use slif_core::NodeKind;

        let mut d = Design::new("big");
        d.graph_mut().add_node("Main", NodeKind::process());
        d.graph_mut().add_node("v", NodeKind::scalar(8));
        let limits = RunLimits {
            graph: GraphLimits::default().with_max_nodes(1),
            ..RunLimits::default()
        };
        let job = Job::Analyze {
            design: d,
            partition: None,
            config: AnalysisConfig::new(),
            source: None,
        };
        let err = job.run_inline(&limits).unwrap_err();
        assert!(matches!(err, JobError::Core(_)), "{err}");
    }

    #[test]
    fn analyze_job_with_source_runs_flow_passes() {
        use slif_analyze::LintId;
        use slif_core::NodeKind;

        // The dead store is only visible to the flow-sensitive passes,
        // which need the source; the design itself is clean.
        let spec = "system T;\nprocess Main { wait 1; }\nproc P() { var t : int<8>; t = 1; }\n";
        let mut d = Design::new("flow");
        d.graph_mut().add_node("Main", NodeKind::process());
        let job = Job::Analyze {
            design: d,
            partition: None,
            config: AnalysisConfig::new(),
            source: Some(spec.to_owned()),
        };
        match job.run_inline(&RunLimits::default()).unwrap() {
            JobOutput::Analyzed(report) => {
                assert_eq!(report.of(LintId::DeadStore).count(), 1, "{report}");
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn analyze_job_with_unparseable_source_is_a_typed_error() {
        let job = Job::Analyze {
            design: Design::new("broken-source"),
            partition: None,
            config: AnalysisConfig::new(),
            source: Some("system ???".to_owned()),
        };
        let err = job.run_inline(&RunLimits::default()).unwrap_err();
        assert!(matches!(err, JobError::Spec(_)), "{err}");
    }

    #[test]
    fn edit_session_job_opens_and_accepts_edits() {
        let job = Job::EditSession {
            source: GOOD_SPEC.to_owned(),
        };
        assert_eq!(job.kind(), "edit-session");
        let (session, update) = match job.run_inline(&RunLimits::default()).unwrap() {
            JobOutput::Session { session, update } => (session, update),
            other => panic!("unexpected output {other:?}"),
        };
        assert!(update.clean, "{:?}", update.diagnostics);
        assert!(update.estimate.is_some());
        // Edits flow through the shared handle, not the job queue.
        let end = GOOD_SPEC.len();
        let edited = session
            .lock()
            .apply_edit(&slif_session::EditDelta::new(end, end, "// note\n"))
            .unwrap();
        assert!(edited.clean);
        assert_eq!(edited.revision, 1);
    }

    #[test]
    fn edit_session_job_on_broken_source_still_opens() {
        let job = Job::EditSession {
            source: "system ; process {".to_owned(),
        };
        match job.run_inline(&RunLimits::default()).unwrap() {
            JobOutput::Session { update, .. } => {
                assert!(!update.clean);
                assert!(!update.diagnostics.is_empty());
                assert!(update.estimate.is_none());
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn session_outputs_compare_by_state() {
        let job = Job::EditSession {
            source: GOOD_SPEC.to_owned(),
        };
        let a = job.run_inline(&RunLimits::default()).unwrap();
        let b = job.run_inline(&RunLimits::default()).unwrap();
        // Distinct handles over identical state: equal, as the service
        // soak's inline-equivalence check requires.
        assert_eq!(a, b);
    }

    #[test]
    fn export_then_import_round_trips_both_encodings() {
        use slif_core::NodeKind;

        let mut d = Design::new("wire");
        let main = d.graph_mut().add_node("Main", NodeKind::process());
        let v = d.graph_mut().add_node("v", NodeKind::scalar(8));
        d.graph_mut()
            .add_channel(main, v.into(), slif_core::AccessKind::Write)
            .unwrap();

        for encoding in [Encoding::Text, Encoding::Binary] {
            let job = Job::Export {
                design: d.clone(),
                partition: None,
                encoding,
            };
            assert_eq!(job.kind(), "export");
            let bytes = match job.run_inline(&RunLimits::default()).unwrap() {
                JobOutput::Exported { encoding: e, bytes } => {
                    assert_eq!(e, encoding);
                    bytes
                }
                other => panic!("unexpected output {other:?}"),
            };
            let job = Job::Import { bytes };
            assert_eq!(job.kind(), "import");
            match job.run_inline(&RunLimits::default()).unwrap() {
                JobOutput::Imported {
                    encoding: e,
                    design,
                    partition,
                    verified,
                    ..
                } => {
                    assert_eq!(e, encoding);
                    assert_eq!(*design, d);
                    assert_eq!(partition, None);
                    assert!(verified);
                }
                other => panic!("unexpected output {other:?}"),
            }
        }
    }

    #[test]
    fn garbage_import_is_a_typed_format_error() {
        let job = Job::Import {
            bytes: b"definitely not slif".to_vec(),
        };
        let err = job.run_inline(&RunLimits::default()).unwrap_err();
        assert!(matches!(err, JobError::Format(_)), "{err}");
        assert!(err.to_string().starts_with("interchange bytes rejected"));
    }

    #[test]
    fn over_limit_import_is_a_typed_format_error() {
        use slif_core::NodeKind;

        let mut d = Design::new("big");
        d.graph_mut().add_node("Main", NodeKind::process());
        d.graph_mut().add_node("v", NodeKind::scalar(8));
        let bytes = match (Job::Export {
            design: d,
            partition: None,
            encoding: Encoding::Text,
        })
        .run_inline(&RunLimits::default())
        .unwrap()
        {
            JobOutput::Exported { bytes, .. } => bytes,
            other => panic!("unexpected output {other:?}"),
        };
        let limits = RunLimits {
            graph: GraphLimits::default().with_max_nodes(1),
            ..RunLimits::default()
        };
        let err = Job::Import { bytes }.run_inline(&limits).unwrap_err();
        assert!(matches!(err, JobError::Format(_)), "{err}");
    }

    #[test]
    fn job_kinds_are_kebab_case() {
        let job = Job::InjectedPanic {
            message: "boom".to_owned(),
        };
        assert_eq!(job.kind(), "injected-panic");
    }

    #[test]
    fn injected_panic_panics() {
        let job = Job::InjectedPanic {
            message: "seeded fault".to_owned(),
        };
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = job.run_inline(&RunLimits::default());
        }));
        assert!(res.is_err());
    }
}
