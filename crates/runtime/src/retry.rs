//! Retry policy: exponential backoff with seeded jitter.
//!
//! The retryable failure class is the *transient* one — a worker panic —
//! not typed pipeline errors, which are deterministic: a spec that fails
//! to parse will fail identically on every attempt, so retrying it only
//! burns queue time. Backoff doubles per attempt up to a cap, and jitter
//! (drawn via [`crate::jitter`] from the service's seeded RNG, so soak
//! runs are reproducible) spreads concurrent retries so they do not
//! stampede. The wire load generator paces with the same helper, so a
//! replayed fault run matches on both sides of the socket.

use crate::jitter::jitter_factor;
use rand::rngs::StdRng;
use std::time::Duration;

/// How (and how often) a transient failure is retried.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct RetryPolicy {
    /// Total execution attempts, the first included (default 3). A value
    /// of 1 disables retries.
    pub max_attempts: u32,
    /// Backoff before the first retry (default 10 ms); doubles each
    /// further retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff (default 1 s).
    pub max_delay: Duration,
    /// Jitter fraction in `[0, 1]` (default 0.5): each backoff is scaled
    /// by a factor drawn uniformly from `[1 - jitter/2, 1 + jitter/2]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(1),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// The default policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the total attempt count (minimum 1).
    #[must_use]
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Sets the first backoff delay.
    #[must_use]
    pub fn with_base_delay(mut self, base_delay: Duration) -> Self {
        self.base_delay = base_delay;
        self
    }

    /// Sets the backoff cap.
    #[must_use]
    pub fn with_max_delay(mut self, max_delay: Duration) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Sets the jitter fraction (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// Whether another attempt is allowed after `attempts` have failed.
    pub fn should_retry(&self, attempts: u32) -> bool {
        attempts < self.max_attempts
    }

    /// The backoff to wait before retry number `attempts` (1-based count
    /// of failures so far): `base · 2^(attempts-1)`, capped at
    /// [`max_delay`](Self::max_delay), scaled by the jitter factor.
    pub fn backoff(&self, attempts: u32, rng: &mut StdRng) -> Duration {
        let doublings = attempts.saturating_sub(1).min(32);
        let raw = self.base_delay.as_secs_f64() * f64::from(1u32 << doublings.min(31));
        let capped = raw.min(self.max_delay.as_secs_f64());
        let factor = jitter_factor(self.jitter, rng);
        Duration::from_secs_f64((capped * factor).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn defaults_and_builders() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 3);
        assert_eq!(p.base_delay, Duration::from_millis(10));
        let p = RetryPolicy::new()
            .with_max_attempts(0)
            .with_jitter(7.0)
            .with_base_delay(Duration::from_millis(1))
            .with_max_delay(Duration::from_millis(8));
        assert_eq!(p.max_attempts, 1, "attempt floor");
        assert!((p.jitter - 1.0).abs() < f64::EPSILON, "jitter clamp");
    }

    #[test]
    fn retry_budget_counts_total_attempts() {
        let p = RetryPolicy::new().with_max_attempts(3);
        assert!(p.should_retry(1));
        assert!(p.should_retry(2));
        assert!(!p.should_retry(3));
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy::new()
            .with_base_delay(Duration::from_millis(10))
            .with_max_delay(Duration::from_millis(40))
            .with_jitter(0.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(p.backoff(1, &mut rng), Duration::from_millis(10));
        assert_eq!(p.backoff(2, &mut rng), Duration::from_millis(20));
        assert_eq!(p.backoff(3, &mut rng), Duration::from_millis(40));
        assert_eq!(p.backoff(4, &mut rng), Duration::from_millis(40), "cap");
        assert_eq!(p.backoff(64, &mut rng), Duration::from_millis(40), "no overflow");
    }

    #[test]
    fn jitter_stays_in_band_and_is_seeded() {
        let p = RetryPolicy::new()
            .with_base_delay(Duration::from_millis(100))
            .with_max_delay(Duration::from_secs(10))
            .with_jitter(0.5);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for attempt in 1..=4 {
            let da = p.backoff(attempt, &mut a);
            let db = p.backoff(attempt, &mut b);
            assert_eq!(da, db, "same seed, same backoff");
            let nominal = 100.0 * f64::from(1u32 << (attempt - 1));
            let ms = da.as_secs_f64() * 1000.0;
            assert!(
                ms >= nominal * 0.75 - 1e-6 && ms <= nominal * 1.25 + 1e-6,
                "attempt {attempt}: {ms} ms outside ±25% of {nominal}"
            );
        }
    }
}
