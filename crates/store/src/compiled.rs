//! Binary encoding for [`CompiledDesign`] — the cache entry that lets a
//! warm hit skip *compilation*, not just parsing.
//!
//! The canonical [`Design`](slif_core::Design) encoding already spares
//! repeat traffic the parse and frontend build; this encoding spares it
//! the [`CompiledDesign::compile`] pass too, by persisting the compiled
//! view's raw slabs (CSR adjacency, channel/component slabs, dense
//! weight tables) via [`CompiledDesign::to_parts`].
//!
//! Safety model: the payload embeds the content key of the design it
//! was compiled from, so a cache can cross-check the entry against the
//! design object it claims to accelerate; decoding is strict
//! (bounds-checked, trailing bytes rejected); and reassembly goes
//! through [`CompiledDesign::try_from_parts`], which re-audits every
//! structural invariant. Anything that fails any of those checks is a
//! typed [`StoreError`] the cache converts into a quarantined miss —
//! the caller recompiles from the verified design, so a damaged entry
//! can cost time but never a wrong answer.

use crate::codec::{Dec, Enc};
use crate::error::StoreError;
use crate::sha256::ContentKey;
use slif_core::atomic_io::{le_u32, le_u64};
use slif_core::{
    AccessFreq, AccessKind, AccessTarget, ChannelId, ClassId, ClassKind, CompiledDesign,
    CompiledParts, ConcurrencyTag, CoreError, NodeId, NodeKind, PortId,
};

/// The compiled encoding's own version byte (bumped on any layout
/// change; the cache's frame carries a second, container-level
/// version).
pub const COMPILED_VERSION: u8 = 1;

fn opt_u64(e: &mut Enc, v: Option<u64>) {
    match v {
        Some(x) => {
            e.u8(1);
            e.u64(x);
        }
        None => e.u8(0),
    }
}

fn dec_opt_u64(d: &mut Dec<'_>, context: &'static str) -> Result<Option<u64>, StoreError> {
    match d.u8(context)? {
        0 => Ok(None),
        1 => Ok(Some(d.u64(context)?)),
        _ => Err(StoreError::Corrupt { context }),
    }
}

/// Encodes a compiled design (with the content key of the design it was
/// compiled from) to cacheable bytes.
///
/// Returns `None` for the rare compiled view this encoding cannot
/// represent: a stored bottom-up traversal error other than the
/// recursion cycle [`CompiledDesign::compile`] can actually produce.
/// Callers simply skip caching such a view.
pub fn encode_compiled(design_key: &ContentKey, cd: &CompiledDesign) -> Option<Vec<u8>> {
    let p = cd.to_parts();
    let bottom_up = match &p.bottom_up {
        Ok(order) => Ok(order),
        Err(CoreError::RecursiveAccess { node }) => Err(*node),
        Err(_) => return None,
    };
    let mut e = Enc::default();
    e.u8(COMPILED_VERSION);
    e.buf.extend_from_slice(&design_key.0);
    for count in [
        p.node_count,
        p.port_count,
        p.channel_count,
        p.class_count,
        p.processor_count,
        p.memory_count,
        p.bus_count,
    ] {
        e.u64(count as u64);
    }
    for offsets in [&p.out_offsets, &p.in_offsets, &p.port_offsets] {
        e.u32(offsets.len() as u32);
        for &o in offsets {
            e.u32(o);
        }
    }
    for adj in [&p.out_adj, &p.in_adj, &p.port_adj] {
        e.u32(adj.len() as u32);
        for &c in adj {
            e.u32(c.index() as u32);
        }
    }
    for &n in &p.chan_src {
        e.u32(n.index() as u32);
    }
    for &dst in &p.chan_dst {
        match dst {
            AccessTarget::Node(n) => {
                e.u8(0);
                e.u32(n.index() as u32);
            }
            AccessTarget::Port(q) => {
                e.u8(1);
                e.u32(q.index() as u32);
            }
        }
    }
    for &k in &p.chan_kind {
        e.u8(match k {
            AccessKind::Call => 0,
            AccessKind::Read => 1,
            AccessKind::Write => 2,
            AccessKind::Message => 3,
        });
    }
    for &b in &p.chan_bits {
        e.u32(b);
    }
    for f in &p.chan_freq {
        e.f64(f.avg);
        e.u64(f.min);
        e.u64(f.max);
    }
    for t in &p.chan_tag {
        match t.id() {
            None => e.u8(0),
            Some(group) => {
                e.u8(1);
                e.u32(group);
            }
        }
    }
    for &k in &p.node_kind {
        match k {
            NodeKind::Behavior { process } => e.u8(u8::from(!process)),
            NodeKind::Variable { words, word_bits } => {
                e.u8(2);
                e.u64(words);
                e.u32(word_bits);
            }
        }
    }
    for name in &p.names {
        e.bytes(name.as_bytes());
    }
    for &i in &p.name_order {
        e.u32(i);
    }
    // The dense weight tables go as a presence bitmap followed by the
    // populated values only — a tag byte per cell would cost 12% more
    // space on full tables and a branch per cell on decode.
    for table in [&p.ict, &p.size_val, &p.size_datapath] {
        let mut bitmap = vec![0u8; table.len().div_ceil(8)];
        for (i, cell) in table.iter().enumerate() {
            if cell.is_some() {
                bitmap[i / 8] |= 1 << (i % 8);
            }
        }
        e.buf.extend_from_slice(&bitmap);
        for &cell in table.iter().flatten() {
            e.u64(cell);
        }
    }
    for &k in &p.class_kind {
        e.u8(match k {
            ClassKind::StdProcessor => 0,
            ClassKind::CustomHw => 1,
            ClassKind::Memory => 2,
        });
    }
    for &k in &p.pm_class {
        e.u32(k.index() as u32);
    }
    for &s in &p.proc_size_constraint {
        opt_u64(&mut e, s);
    }
    for &pins in &p.proc_pin_constraint {
        match pins {
            Some(x) => {
                e.u8(1);
                e.u32(x);
            }
            None => e.u8(0),
        }
    }
    for &s in &p.mem_size_constraint {
        opt_u64(&mut e, s);
    }
    for &w in &p.bus_bitwidth {
        e.u32(w);
    }
    for &ts in &p.bus_ts {
        e.u64(ts);
    }
    for &td in &p.bus_td {
        e.u64(td);
    }
    for &cap in &p.bus_capacity {
        match cap {
            Some(x) => {
                e.u8(1);
                e.f64(x);
            }
            None => e.u8(0),
        }
    }
    match bottom_up {
        Ok(order) => {
            e.u8(0);
            e.u32(order.len() as u32);
            for &n in order {
                e.u32(n.index() as u32);
            }
        }
        Err(node) => {
            e.u8(1);
            e.u32(node.index() as u32);
        }
    }
    e.u32(p.process_nodes.len() as u32);
    for &n in &p.process_nodes {
        e.u32(n.index() as u32);
    }
    Some(e.buf)
}

/// Decodes cacheable bytes back into a compiled design plus the content
/// key of the design it was compiled from. Strict: every count is
/// bounds-checked, trailing bytes are rejected, and the reassembled
/// parts are re-audited by [`CompiledDesign::try_from_parts`].
///
/// # Errors
///
/// A typed [`StoreError::Corrupt`] on any malformed input.
pub fn decode_compiled(bytes: &[u8]) -> Result<(ContentKey, CompiledDesign), StoreError> {
    let corrupt = |context: &'static str| StoreError::Corrupt { context };
    let mut d = Dec::new(bytes);
    if d.u8("compiled version")? != COMPILED_VERSION {
        return Err(corrupt("compiled version"));
    }
    let mut key = [0u8; 32];
    key.copy_from_slice(d.take(32, "compiled design key")?);
    let design_key = ContentKey(key);

    let mut counts = [0usize; 7];
    for c in &mut counts {
        *c = usize::try_from(d.u64("compiled count")?).map_err(|_| corrupt("compiled count"))?;
    }
    let [node_count, port_count, channel_count, class_count, processor_count, memory_count, bus_count] =
        counts;

    // Bulk slab reads: one bounds check (`take`) per slab, then a
    // straight little-endian sweep — a decoded count is only trusted
    // after the take it implies has succeeded, so a hostile length
    // costs a typed error, not an allocation.
    let read_u32s = |d: &mut Dec<'_>, context: &'static str| -> Result<Vec<u32>, StoreError> {
        let n = d.u32(context)? as usize;
        let raw = d.take(n.checked_mul(4).ok_or(corrupt(context))?, context)?;
        Ok(raw.chunks_exact(4).map(le_u32).collect())
    };
    let out_offsets = read_u32s(&mut d, "out offsets")?;
    let in_offsets = read_u32s(&mut d, "in offsets")?;
    let port_offsets = read_u32s(&mut d, "port offsets")?;
    let to_chan = |v: Vec<u32>| -> Vec<ChannelId> {
        v.into_iter().map(ChannelId::from_raw).collect()
    };
    let out_adj = to_chan(read_u32s(&mut d, "out adjacency")?);
    let in_adj = to_chan(read_u32s(&mut d, "in adjacency")?);
    let port_adj = to_chan(read_u32s(&mut d, "port adjacency")?);

    fn take_n<'a>(
        d: &mut Dec<'a>,
        count: usize,
        each: usize,
        context: &'static str,
    ) -> Result<&'a [u8], StoreError> {
        let total = count
            .checked_mul(each)
            .ok_or(StoreError::Corrupt { context })?;
        d.take(total, context)
    }
    let chan_src: Vec<NodeId> = take_n(&mut d, channel_count, 4, "channel source")?
        .chunks_exact(4)
        .map(|c| NodeId::from_raw(le_u32(c)))
        .collect();
    let mut chan_dst = Vec::with_capacity(channel_count.min(d.remaining() / 5));
    for _ in 0..channel_count {
        let dst = match d.u8("channel dst tag")? {
            0 => AccessTarget::Node(NodeId::from_raw(d.u32("channel dst")?)),
            1 => AccessTarget::Port(PortId::from_raw(d.u32("channel dst")?)),
            _ => return Err(corrupt("channel dst tag")),
        };
        chan_dst.push(dst);
    }
    let chan_kind = take_n(&mut d, channel_count, 1, "channel kind")?
        .iter()
        .map(|&b| match b {
            0 => Ok(AccessKind::Call),
            1 => Ok(AccessKind::Read),
            2 => Ok(AccessKind::Write),
            3 => Ok(AccessKind::Message),
            _ => Err(corrupt("channel kind")),
        })
        .collect::<Result<Vec<_>, _>>()?;
    let chan_bits: Vec<u32> = take_n(&mut d, channel_count, 4, "channel bits")?
        .chunks_exact(4)
        .map(le_u32)
        .collect();
    let chan_freq: Vec<AccessFreq> = take_n(&mut d, channel_count, 24, "channel freq")?
        .chunks_exact(24)
        .map(|c| {
            AccessFreq::new(
                f64::from_bits(le_u64(&c[0..8])),
                le_u64(&c[8..16]),
                le_u64(&c[16..24]),
            )
        })
        .collect();
    let mut chan_tag = Vec::with_capacity(channel_count.min(d.remaining()));
    for _ in 0..channel_count {
        chan_tag.push(match d.u8("channel tag")? {
            0 => ConcurrencyTag::SEQUENTIAL,
            1 => ConcurrencyTag::group(d.u32("channel tag group")?),
            _ => return Err(corrupt("channel tag")),
        });
    }
    let mut node_kind = Vec::with_capacity(node_count.min(d.remaining()));
    for _ in 0..node_count {
        node_kind.push(match d.u8("node kind")? {
            0 => NodeKind::process(),
            1 => NodeKind::procedure(),
            2 => {
                let words = d.u64("variable words")?;
                let word_bits = d.u32("variable word bits")?;
                NodeKind::array(words, word_bits)
            }
            _ => return Err(corrupt("node kind")),
        });
    }
    let name_count = node_count.saturating_add(port_count);
    let mut names = Vec::with_capacity(name_count.min(d.remaining() / 4));
    for _ in 0..name_count {
        let raw = d.bytes("compiled name")?;
        names.push(
            String::from_utf8(raw.to_vec()).map_err(|_| corrupt("compiled name utf-8"))?,
        );
    }
    let raw = d.take(
        names.len().checked_mul(4).ok_or(corrupt("name order"))?,
        "name order",
    )?;
    let name_order: Vec<u32> = raw.chunks_exact(4).map(le_u32).collect();
    let cells = node_count.saturating_mul(class_count);
    let mut tables = Vec::with_capacity(3);
    for _ in 0..3 {
        let bitmap = d.take(cells.div_ceil(8), "weight bitmap")?;
        // Padding bits past `cells` must be zero: the encoding stays
        // canonical (one byte stream per table) and a flipped pad bit
        // is caught here rather than silently ignored.
        if cells % 8 != 0 {
            let last = bitmap[bitmap.len() - 1];
            if last >> (cells % 8) != 0 {
                return Err(corrupt("weight bitmap padding"));
            }
        }
        let populated: usize = bitmap.iter().map(|b| b.count_ones() as usize).sum();
        let raw = d.take(
            populated.checked_mul(8).ok_or(corrupt("weight cells"))?,
            "weight cells",
        )?;
        // The bitmap take above already bounds `cells` by the payload
        // size, so this allocation cannot outrun the input.
        let mut values = raw.chunks_exact(8).map(le_u64);
        let mut t = Vec::with_capacity(cells);
        for i in 0..cells {
            let present = bitmap[i / 8] & (1 << (i % 8)) != 0;
            t.push(if present { values.next() } else { None });
        }
        tables.push(t);
    }
    let size_datapath = tables.pop().unwrap_or_default();
    let size_val = tables.pop().unwrap_or_default();
    let ict = tables.pop().unwrap_or_default();

    let mut class_kind = Vec::new();
    for _ in 0..class_count {
        class_kind.push(match d.u8("class kind")? {
            0 => ClassKind::StdProcessor,
            1 => ClassKind::CustomHw,
            2 => ClassKind::Memory,
            _ => return Err(corrupt("class kind")),
        });
    }
    let mut pm_class = Vec::new();
    for _ in 0..processor_count.saturating_add(memory_count) {
        pm_class.push(ClassId::from_raw(d.u32("component class")?));
    }
    let mut proc_size_constraint = Vec::new();
    for _ in 0..processor_count {
        proc_size_constraint.push(dec_opt_u64(&mut d, "processor size constraint")?);
    }
    let mut proc_pin_constraint = Vec::new();
    for _ in 0..processor_count {
        proc_pin_constraint.push(match d.u8("processor pin constraint")? {
            0 => None,
            1 => Some(d.u32("processor pin constraint")?),
            _ => return Err(corrupt("processor pin constraint")),
        });
    }
    let mut mem_size_constraint = Vec::new();
    for _ in 0..memory_count {
        mem_size_constraint.push(dec_opt_u64(&mut d, "memory size constraint")?);
    }
    let mut bus_bitwidth = Vec::new();
    for _ in 0..bus_count {
        bus_bitwidth.push(d.u32("bus bitwidth")?);
    }
    let mut bus_ts = Vec::new();
    for _ in 0..bus_count {
        bus_ts.push(d.u64("bus ts")?);
    }
    let mut bus_td = Vec::new();
    for _ in 0..bus_count {
        bus_td.push(d.u64("bus td")?);
    }
    let mut bus_capacity = Vec::new();
    for _ in 0..bus_count {
        bus_capacity.push(match d.u8("bus capacity")? {
            0 => None,
            1 => Some(d.f64("bus capacity")?),
            _ => return Err(corrupt("bus capacity")),
        });
    }
    let read_node_ids = |d: &mut Dec<'_>, context: &'static str| -> Result<Vec<NodeId>, StoreError> {
        let n = d.u32(context)? as usize;
        let raw = d.take(n.checked_mul(4).ok_or(corrupt(context))?, context)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| NodeId::from_raw(le_u32(c)))
            .collect())
    };
    let bottom_up = match d.u8("bottom-up tag")? {
        0 => Ok(read_node_ids(&mut d, "bottom-up order")?),
        1 => Err(CoreError::RecursiveAccess {
            node: NodeId::from_raw(d.u32("bottom-up cycle node")?),
        }),
        _ => return Err(corrupt("bottom-up tag")),
    };
    let process_nodes = read_node_ids(&mut d, "process nodes")?;
    d.finish()?;

    let parts = CompiledParts {
        node_count,
        port_count,
        channel_count,
        class_count,
        processor_count,
        memory_count,
        bus_count,
        out_offsets,
        out_adj,
        in_offsets,
        in_adj,
        port_offsets,
        port_adj,
        chan_src,
        chan_dst,
        chan_kind,
        chan_bits,
        chan_freq,
        chan_tag,
        node_kind,
        names,
        name_order,
        ict,
        size_val,
        size_datapath,
        class_kind,
        pm_class,
        proc_size_constraint,
        proc_pin_constraint,
        mem_size_constraint,
        bus_bitwidth,
        bus_ts,
        bus_td,
        bus_capacity,
        bottom_up,
        process_nodes,
    };
    let cd = CompiledDesign::try_from_parts(parts)
        .map_err(|_| corrupt("compiled parts invariant"))?;
    Ok((design_key, cd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::encode_design;
    use slif_core::gen::DesignGenerator;
    use slif_core::Design;

    fn compiled(seed: u64) -> (ContentKey, CompiledDesign) {
        let (design, _) = DesignGenerator::new(seed)
            .behaviors(10)
            .variables(6)
            .processors(2)
            .memories(1)
            .buses(2)
            .build();
        let key = ContentKey::of(&encode_design(&design));
        (key, CompiledDesign::compile(&design))
    }

    #[test]
    fn decode_encode_is_identity() {
        for seed in [1u64, 2, 3, 40] {
            let (key, cd) = compiled(seed);
            let bytes = encode_compiled(&key, &cd).expect("encodable");
            let (back_key, back) = decode_compiled(&bytes).expect("decodes");
            assert_eq!(back_key, key, "seed {seed}");
            assert_eq!(back, cd, "seed {seed}");
        }
    }

    #[test]
    fn recursive_designs_encode_their_stored_cycle() {
        use slif_core::{AccessKind, ClassKind, NodeKind};
        let mut d = Design::new("rec");
        d.add_class("p", ClassKind::StdProcessor);
        let a = d.graph_mut().add_node("A", NodeKind::process());
        let b = d.graph_mut().add_node("B", NodeKind::procedure());
        d.graph_mut()
            .add_channel(a, b.into(), AccessKind::Call)
            .unwrap();
        d.graph_mut()
            .add_channel(b, a.into(), AccessKind::Call)
            .unwrap();
        let cd = CompiledDesign::compile(&d);
        let key = ContentKey::of(&encode_design(&d));
        let bytes = encode_compiled(&key, &cd).expect("recursion is representable");
        let (_, back) = decode_compiled(&bytes).expect("decodes");
        assert_eq!(back, cd);
    }

    #[test]
    fn every_truncation_is_rejected_not_panicking() {
        let (key, cd) = compiled(7);
        let bytes = encode_compiled(&key, &cd).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                decode_compiled(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn random_mutations_never_panic_and_never_lie() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let (key, cd) = compiled(9);
        let bytes = encode_compiled(&key, &cd).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..400 {
            let mut m = bytes.clone();
            let flips = rng.gen_range(1usize..4);
            for _ in 0..flips {
                let pos = rng.gen_range(0usize..m.len());
                let bit = rng.gen_range(0u32..8);
                m[pos] ^= 1 << bit;
            }
            // Either a typed refusal, or a decode whose parts passed the
            // full invariant audit; both are acceptable — a panic or a
            // structurally broken view is not.
            if let Ok((_, back)) = decode_compiled(&m) {
                let _ = back.node_count();
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let (key, cd) = compiled(11);
        let mut bytes = encode_compiled(&key, &cd).unwrap();
        bytes.push(0);
        assert!(decode_compiled(&bytes).is_err());
    }

    #[test]
    fn bad_version_is_rejected() {
        let (key, cd) = compiled(12);
        let mut bytes = encode_compiled(&key, &cd).unwrap();
        bytes[0] = COMPILED_VERSION + 1;
        assert!(decode_compiled(&bytes).is_err());
    }
}
