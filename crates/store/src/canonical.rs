//! Canonical binary encoding for [`Design`].
//!
//! The content-addressed cache needs one byte string per design: equal
//! designs must encode to equal bytes (so they hash to equal keys), and
//! decoding must reproduce the design *exactly* —
//! `decode_design(&encode_design(d)) == d`. The textual format
//! ([`slif_core::text`]) already round-trips exactly but renders floats
//! through decimal; this encoding is fully bit-level:
//!
//! * an interned-name table up front (every object name appears once, in
//!   first-use order), then ordinal references everywhere else;
//! * a fixed field order matching the iteration order of the design's
//!   own accessors, so equal designs produce identical bytes;
//! * `f64` fields stored as raw IEEE-754 bits — no decimal round trip;
//! * little-endian fixed-width integers throughout.
//!
//! The decoder treats its input as untrusted: every count is
//! bounds-checked against the remaining buffer (no allocation from a
//! decoded length), every ordinal is range-checked, and trailing bytes
//! are rejected — malformed input yields a typed
//! [`StoreError`](crate::StoreError), never a panic.

use crate::codec::{Dec, Enc};
use crate::error::StoreError;
use slif_core::{
    AccessFreq, AccessKind, AccessTarget, Bus, ClassKind, ConcurrencyTag, Design, Memory,
    NodeKind, PortDirection, Processor, WeightEntry,
};
use std::collections::HashMap;

/// The canonical encoding's own version byte (bumped on any layout
/// change; the cache's object frame carries a second, container-level
/// version).
pub const CANONICAL_VERSION: u8 = 1;

#[derive(Default)]
struct Interner {
    order: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.index.get(s) {
            return i;
        }
        let i = self.order.len() as u32;
        self.order.push(s.to_owned());
        self.index.insert(s.to_owned(), i);
        i
    }
}

/// Encodes a design to its canonical bytes.
pub fn encode_design(design: &Design) -> Vec<u8> {
    let g = design.graph();
    let mut names = Interner::default();
    let mut body = Enc::default();

    // Ordinal maps: position in iteration order, which is insertion
    // order for every arena in the design.
    let class_ord: HashMap<_, _> = design
        .class_ids()
        .enumerate()
        .map(|(i, k)| (k, i as u32))
        .collect();
    let node_ord: HashMap<_, _> = g
        .node_ids()
        .enumerate()
        .map(|(i, n)| (n, i as u32))
        .collect();
    let port_ord: HashMap<_, _> = g
        .port_ids()
        .enumerate()
        .map(|(i, p)| (p, i as u32))
        .collect();

    body.u32(names.intern(design.name()));

    body.u32(class_ord.len() as u32);
    for k in design.class_ids() {
        let c = design.class(k);
        body.u32(names.intern(c.name()));
        body.u8(match c.kind() {
            ClassKind::StdProcessor => 0,
            ClassKind::CustomHw => 1,
            ClassKind::Memory => 2,
        });
    }

    body.u32(port_ord.len() as u32);
    for p in g.port_ids() {
        let port = g.port(p);
        body.u32(names.intern(port.name()));
        body.u8(match port.direction() {
            PortDirection::In => 0,
            PortDirection::Out => 1,
            PortDirection::InOut => 2,
        });
        body.u32(port.bits());
    }

    body.u32(node_ord.len() as u32);
    for n in g.node_ids() {
        let node = g.node(n);
        body.u32(names.intern(node.name()));
        match node.kind() {
            NodeKind::Behavior { process } => body.u8(u8::from(!process)),
            NodeKind::Variable { words, word_bits } => {
                body.u8(2);
                body.u64(words);
                body.u32(word_bits);
            }
        }
        let icts: Vec<_> = node.ict().iter().collect();
        body.u32(icts.len() as u32);
        for e in icts {
            body.u32(class_ord[&e.class]);
            body.u64(e.val);
        }
        let sizes: Vec<_> = node.size().iter().collect();
        body.u32(sizes.len() as u32);
        for e in sizes {
            body.u32(class_ord[&e.class]);
            body.u64(e.val);
            match e.datapath {
                Some(dp) => {
                    body.u8(1);
                    body.u64(dp);
                }
                None => body.u8(0),
            }
        }
    }

    body.u32(g.channel_count() as u32);
    for c in g.channel_ids() {
        let ch = g.channel(c);
        body.u32(node_ord[&ch.src()]);
        match ch.dst() {
            AccessTarget::Node(n) => {
                body.u8(0);
                body.u32(node_ord[&n]);
            }
            AccessTarget::Port(p) => {
                body.u8(1);
                body.u32(port_ord[&p]);
            }
        }
        body.u8(match ch.kind() {
            AccessKind::Call => 0,
            AccessKind::Read => 1,
            AccessKind::Write => 2,
            AccessKind::Message => 3,
        });
        body.f64(ch.freq().avg);
        body.u64(ch.freq().min);
        body.u64(ch.freq().max);
        body.u32(ch.bits());
        match ch.tag().id() {
            None => body.u8(0),
            Some(group) => {
                body.u8(1);
                body.u32(group);
            }
        }
    }

    body.u32(design.processor_count() as u32);
    for p in design.processor_ids() {
        let proc = design.processor(p);
        body.u32(names.intern(proc.name()));
        body.u32(class_ord[&proc.class()]);
        let flags = u8::from(proc.size_constraint().is_some())
            | (u8::from(proc.pin_constraint().is_some()) << 1);
        body.u8(flags);
        if let Some(s) = proc.size_constraint() {
            body.u64(s);
        }
        if let Some(pins) = proc.pin_constraint() {
            body.u32(pins);
        }
    }

    body.u32(design.memory_count() as u32);
    for m in design.memory_ids() {
        let mem = design.memory(m);
        body.u32(names.intern(mem.name()));
        body.u32(class_ord[&mem.class()]);
        match mem.size_constraint() {
            Some(s) => {
                body.u8(1);
                body.u64(s);
            }
            None => body.u8(0),
        }
    }

    body.u32(design.bus_count() as u32);
    for b in design.bus_ids() {
        let bus = design.bus(b);
        body.u32(names.intern(bus.name()));
        body.u32(bus.bitwidth());
        body.u64(bus.ts());
        body.u64(bus.td());
        match bus.capacity() {
            Some(cap) => {
                body.u8(1);
                body.f64(cap);
            }
            None => body.u8(0),
        }
    }

    // Assemble: version, name table, body.
    let mut out = Enc::default();
    out.u8(CANONICAL_VERSION);
    out.u32(names.order.len() as u32);
    for s in &names.order {
        out.bytes(s.as_bytes());
    }
    out.buf.extend_from_slice(&body.buf);
    out.buf
}

/// Decodes canonical bytes back into a design.
///
/// # Errors
///
/// A typed [`StoreError::Corrupt`] on any malformed input: bad version,
/// truncation, out-of-range ordinals, invalid UTF-8 names, structurally
/// invalid channels, or trailing bytes.
pub fn decode_design(bytes: &[u8]) -> Result<Design, StoreError> {
    let corrupt = |context: &'static str| StoreError::Corrupt { context };
    let mut d = Dec::new(bytes);
    if d.u8("canonical version")? != CANONICAL_VERSION {
        return Err(corrupt("canonical version"));
    }

    let name_count = d.u32("name table length")?;
    let mut names: Vec<String> = Vec::new();
    for _ in 0..name_count {
        let raw = d.bytes("interned name")?;
        let s = String::from_utf8(raw.to_vec()).map_err(|_| corrupt("interned name utf-8"))?;
        names.push(s);
    }
    let name = |idx: u32| -> Result<&str, StoreError> {
        names
            .get(idx as usize)
            .map(String::as_str)
            .ok_or(corrupt("name ordinal"))
    };

    let mut design = Design::new(name(d.u32("design name")?)?);

    let class_count = d.u32("class count")?;
    let mut classes = Vec::new();
    for _ in 0..class_count {
        let n = d.u32("class name")?;
        let kind = match d.u8("class kind")? {
            0 => ClassKind::StdProcessor,
            1 => ClassKind::CustomHw,
            2 => ClassKind::Memory,
            _ => return Err(corrupt("class kind")),
        };
        classes.push(design.add_class(name(n)?, kind));
    }
    let class = |idx: u32| -> Result<_, StoreError> {
        classes
            .get(idx as usize)
            .copied()
            .ok_or(corrupt("class ordinal"))
    };

    let port_count = d.u32("port count")?;
    for _ in 0..port_count {
        let n = d.u32("port name")?;
        let dir = match d.u8("port direction")? {
            0 => PortDirection::In,
            1 => PortDirection::Out,
            2 => PortDirection::InOut,
            _ => return Err(corrupt("port direction")),
        };
        let bits = d.u32("port bits")?;
        design
            .graph_mut()
            .try_add_port(name(n)?, dir, bits)
            .map_err(|_| corrupt("duplicate port name"))?;
    }
    let ports: Vec<_> = design.graph().port_ids().collect();

    let node_count = d.u32("node count")?;
    let mut nodes = Vec::new();
    for _ in 0..node_count {
        let n = d.u32("node name")?;
        let kind = match d.u8("node kind")? {
            0 => NodeKind::process(),
            1 => NodeKind::procedure(),
            2 => {
                let words = d.u64("variable words")?;
                let word_bits = d.u32("variable word bits")?;
                NodeKind::array(words, word_bits)
            }
            _ => return Err(corrupt("node kind")),
        };
        let id = design
            .graph_mut()
            .try_add_node(name(n)?, kind)
            .map_err(|_| corrupt("duplicate node name"))?;
        nodes.push(id);
        let ict_count = d.u32("ict count")?;
        for _ in 0..ict_count {
            let k = class(d.u32("ict class")?)?;
            let val = d.u64("ict value")?;
            design.graph_mut().node_mut(id).ict_mut().set(k, val);
        }
        let size_count = d.u32("size count")?;
        for _ in 0..size_count {
            let k = class(d.u32("size class")?)?;
            let val = d.u64("size value")?;
            let entry = match d.u8("size datapath flag")? {
                0 => WeightEntry::new(k, val),
                1 => {
                    let dp = d.u64("size datapath")?;
                    if dp > val {
                        return Err(corrupt("size datapath"));
                    }
                    WeightEntry::with_datapath(k, val, dp)
                }
                _ => return Err(corrupt("size datapath flag")),
            };
            design.graph_mut().node_mut(id).size_mut().insert(entry);
        }
    }

    let channel_count = d.u32("channel count")?;
    for _ in 0..channel_count {
        let src = nodes
            .get(d.u32("channel src")? as usize)
            .copied()
            .ok_or(corrupt("channel src ordinal"))?;
        let dst: AccessTarget = match d.u8("channel dst tag")? {
            0 => nodes
                .get(d.u32("channel dst")? as usize)
                .copied()
                .ok_or(corrupt("channel dst ordinal"))?
                .into(),
            1 => ports
                .get(d.u32("channel dst")? as usize)
                .copied()
                .ok_or(corrupt("channel dst ordinal"))?
                .into(),
            _ => return Err(corrupt("channel dst tag")),
        };
        let kind = match d.u8("channel kind")? {
            0 => AccessKind::Call,
            1 => AccessKind::Read,
            2 => AccessKind::Write,
            3 => AccessKind::Message,
            _ => return Err(corrupt("channel kind")),
        };
        let avg = d.f64("channel freq avg")?;
        let min = d.u64("channel freq min")?;
        let max = d.u64("channel freq max")?;
        let bits = d.u32("channel bits")?;
        let tag = match d.u8("channel tag")? {
            0 => ConcurrencyTag::SEQUENTIAL,
            1 => ConcurrencyTag::group(d.u32("channel tag group")?),
            _ => return Err(corrupt("channel tag")),
        };
        let c = design
            .graph_mut()
            .add_channel(src, dst, kind)
            .map_err(|_| corrupt("channel endpoints"))?;
        let ch = design.graph_mut().channel_mut(c);
        *ch.freq_mut() = AccessFreq::new(avg, min, max);
        ch.set_bits(bits);
        ch.set_tag(tag);
    }

    let proc_count = d.u32("processor count")?;
    for _ in 0..proc_count {
        let n = d.u32("processor name")?;
        let k = class(d.u32("processor class")?)?;
        if design.class(k).kind() == ClassKind::Memory {
            return Err(corrupt("processor class kind"));
        }
        let flags = d.u8("processor flags")?;
        if flags > 3 {
            return Err(corrupt("processor flags"));
        }
        let mut proc = Processor::new(name(n)?, k);
        if flags & 1 != 0 {
            proc = proc.with_size_constraint(d.u64("processor size constraint")?);
        }
        if flags & 2 != 0 {
            proc = proc.with_pin_constraint(d.u32("processor pin constraint")?);
        }
        design.add_processor_instance(proc);
    }

    let mem_count = d.u32("memory count")?;
    for _ in 0..mem_count {
        let n = d.u32("memory name")?;
        let k = class(d.u32("memory class")?)?;
        if design.class(k).kind() != ClassKind::Memory {
            return Err(corrupt("memory class kind"));
        }
        let mut mem = Memory::new(name(n)?, k);
        match d.u8("memory size flag")? {
            0 => {}
            1 => mem = mem.with_size_constraint(d.u64("memory size constraint")?),
            _ => return Err(corrupt("memory size flag")),
        }
        design.add_memory_instance(mem);
    }

    let bus_count = d.u32("bus count")?;
    for _ in 0..bus_count {
        let n = d.u32("bus name")?;
        let width = d.u32("bus width")?;
        if width == 0 {
            return Err(corrupt("bus width"));
        }
        let ts = d.u64("bus ts")?;
        let td = d.u64("bus td")?;
        let mut bus = Bus::new(name(n)?, width, ts, td);
        match d.u8("bus capacity flag")? {
            0 => {}
            1 => bus = bus.with_capacity(d.f64("bus capacity")?),
            _ => return Err(corrupt("bus capacity flag")),
        }
        design.add_bus(bus);
    }

    d.finish()?;
    Ok(design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_core::gen::DesignGenerator;
    use slif_core::text;

    fn corpus() -> Vec<Design> {
        let mut designs = Vec::new();
        for seed in [0u64, 1, 2, 7, 42, 99] {
            let (d, _) = DesignGenerator::new(seed).build();
            designs.push(d);
        }
        let (big, _) = DesignGenerator::new(5)
            .behaviors(20)
            .variables(12)
            .processors(3)
            .memories(2)
            .buses(3)
            .build();
        designs.push(big);
        designs.push(Design::new("empty"));
        designs
    }

    #[test]
    fn decode_encode_is_identity() {
        for (i, d) in corpus().iter().enumerate() {
            let bytes = encode_design(d);
            let back = decode_design(&bytes).unwrap_or_else(|e| panic!("design {i}: {e}"));
            assert_eq!(&back, d, "design {i} did not round-trip");
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        for d in corpus() {
            assert_eq!(encode_design(&d), encode_design(&d));
            // A fresh structural copy via the text round trip encodes to
            // the same bytes: content addressing keys on value, not on
            // construction history.
            let copy = text::parse_design(&text::write_design(&d));
            if let Ok(copy) = copy {
                assert_eq!(encode_design(&d), encode_design(&copy));
            }
        }
    }

    #[test]
    fn different_designs_encode_differently() {
        let designs = corpus();
        for (i, a) in designs.iter().enumerate() {
            for (j, b) in designs.iter().enumerate() {
                if i != j && a != b {
                    assert_ne!(encode_design(a), encode_design(b), "designs {i}/{j}");
                }
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected_not_panicking() {
        let (d, _) = DesignGenerator::new(3).build();
        let bytes = encode_design(&d);
        for len in 0..bytes.len() {
            assert!(
                decode_design(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let (d, _) = DesignGenerator::new(3).build();
        let mut bytes = encode_design(&d);
        bytes.push(0x00);
        assert_eq!(
            decode_design(&bytes),
            Err(StoreError::Corrupt {
                context: "trailing bytes"
            })
        );
    }

    #[test]
    fn random_mutations_never_panic() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let (d, _) = DesignGenerator::new(11).build();
        let good = encode_design(&d);
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..500 {
            let mut bad = good.clone();
            for _ in 0..rng.gen_range(1usize..8) {
                let pos = rng.gen_range(0usize..bad.len());
                bad[pos] = rng.gen_range(0u32..256) as u8;
            }
            // Either decodes to some design or errors — never panics.
            let _ = decode_design(&bad);
        }
    }

    #[test]
    fn bad_version_is_rejected() {
        let (d, _) = DesignGenerator::new(1).build();
        let mut bytes = encode_design(&d);
        bytes[0] = 9;
        assert!(decode_design(&bytes).is_err());
    }
}
