//! The typed failure surface of the durable store.

use std::fmt;

/// Why a store operation could not complete.
///
/// Corruption of *already-written* data never produces one of these at
/// read time — the journal truncates and quarantines, the cache counts a
/// miss. A `StoreError` means the store could not do its job *now*: a
/// file could not be created, written, fsynced, renamed, or decoded as a
/// container at all.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The operating-system error text.
        message: String,
    },
    /// A record being appended exceeds the journal's size bound.
    RecordTooLarge {
        /// The oversized payload's byte count.
        bytes: usize,
    },
    /// A decoded blob violated its own format in a way recovery cannot
    /// route around (used by strict decode paths, e.g. tests).
    Corrupt {
        /// What was being decoded.
        context: &'static str,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, message } => write!(f, "store i/o on {path}: {message}"),
            Self::RecordTooLarge { bytes } => {
                write!(f, "journal record too large ({bytes} bytes)")
            }
            Self::Corrupt { context } => write!(f, "store data corrupt: invalid {context}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    /// Builds an [`Io`](Self::Io) from a path and an `io::Error`.
    pub(crate) fn io(path: &std::path::Path, e: &std::io::Error) -> Self {
        Self::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        }
    }
}
