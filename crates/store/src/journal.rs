//! The write-ahead job journal.
//!
//! An append-only file of job state transitions, fsynced on every
//! append so that an acknowledgement sent over the wire is always backed
//! by durable bytes. The file layout:
//!
//! ```text
//! header   magic b"SLIFJRNL" (8) | version u32 LE (currently 1)
//! record*  len u32 LE | crc u64 LE | id u64 LE | kind u8 | payload
//! ```
//!
//! `len` counts everything after itself (crc through payload); `crc` is
//! FNV-1a 64 over `id | kind | payload`. Record kinds: `1` Accepted
//! (payload = the re-runnable request bytes), `2` Completed (payload =
//! status `u16` LE + result body), `3` Cancelled (empty payload).
//!
//! # Recovery
//!
//! [`Journal::open`] scans the file front to back and classifies every
//! prefix of bytes exactly one way:
//!
//! * a bad or stale **header** quarantines the *whole file* (renamed to
//!   `<name>.corrupt`) and starts fresh — a version this build does not
//!   read cannot be partially trusted;
//! * the first torn, oversized, or CRC-failing **record** truncates the
//!   journal at that record's start; the damaged tail goes to the
//!   `.corrupt` sidecar. Everything before it — the acknowledged
//!   prefix — replays normally. A record is only acknowledged after its
//!   fsync returns, so a real torn write can cost at most the final,
//!   unacknowledged record;
//! * a clean end-of-file replays everything.
//!
//! No input byte sequence panics, and no corrupt record is ever
//! replayed.

use crate::codec::{Dec, Enc};
use crate::error::StoreError;
use slif_core::atomic_io::{self, fnv1a, le_u32, le_u64};
use std::collections::HashSet;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The 8-byte journal file magic.
pub const JOURNAL_MAGIC: [u8; 8] = *b"SLIFJRNL";
/// The current (and only) journal format version.
pub const JOURNAL_VERSION: u32 = 1;
const HEADER_LEN: usize = 12;
/// Fixed bytes of a record body before the payload: crc + id + kind.
const RECORD_FIXED: usize = 8 + 8 + 1;
/// Upper bound on a single record, as a corruption tripwire: a declared
/// length past this is treated as damage, not as an allocation request.
pub const MAX_RECORD_BYTES: usize = 16 * 1024 * 1024;

/// One journal state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JobRecord {
    /// A job was admitted; `payload` holds the re-runnable request.
    Accepted {
        /// The durable job id.
        id: u64,
        /// Opaque request bytes (enough to re-run the job on recovery).
        payload: Vec<u8>,
    },
    /// A job reached a terminal result.
    Completed {
        /// The durable job id.
        id: u64,
        /// The wire status the result was (or will be) served with.
        status: u16,
        /// The result body.
        body: Vec<u8>,
    },
    /// A job was cancelled (shutdown, drain, or admission rollback).
    Cancelled {
        /// The durable job id.
        id: u64,
    },
}

impl JobRecord {
    /// The job id the record concerns.
    pub fn id(&self) -> u64 {
        match self {
            Self::Accepted { id, .. } | Self::Completed { id, .. } | Self::Cancelled { id } => *id,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        match self {
            Self::Accepted { id, payload } => {
                e.u64(*id);
                e.u8(1);
                e.buf.extend_from_slice(payload);
            }
            Self::Completed { id, status, body } => {
                e.u64(*id);
                e.u8(2);
                e.u16(*status);
                e.buf.extend_from_slice(body);
            }
            Self::Cancelled { id } => {
                e.u64(*id);
                e.u8(3);
            }
        }
        e.buf
    }

    /// Decodes the `id | kind | payload` tail of a record body.
    fn decode(body: &[u8]) -> Result<Self, StoreError> {
        let mut d = Dec::new(body);
        let id = d.u64("record id")?;
        let kind = d.u8("record kind")?;
        let rest = d.take(body.len() - 9, "record payload")?;
        match kind {
            1 => Ok(Self::Accepted {
                id,
                payload: rest.to_vec(),
            }),
            2 => {
                let mut p = Dec::new(rest);
                let status = p.u16("completed status")?;
                let b = p.take(rest.len() - 2, "completed body")?;
                Ok(Self::Completed {
                    id,
                    status,
                    body: b.to_vec(),
                })
            }
            3 => {
                if !rest.is_empty() {
                    return Err(StoreError::Corrupt {
                        context: "cancelled payload",
                    });
                }
                Ok(Self::Cancelled { id })
            }
            _ => Err(StoreError::Corrupt {
                context: "record kind",
            }),
        }
    }
}

/// A job that was accepted but never reached a terminal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingJob {
    /// The durable job id.
    pub id: u64,
    /// The request bytes journaled at acceptance.
    pub payload: Vec<u8>,
}

/// What [`Journal::open`] found on disk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact records replayed.
    pub records_replayed: u64,
    /// Byte offset of the first damaged record, if the file was
    /// truncated there.
    pub truncated_at: Option<u64>,
    /// Bytes quarantined to the `.corrupt` sidecar (damaged tail or
    /// whole file).
    pub quarantined_bytes: u64,
    /// The whole file was quarantined for a bad or stale header.
    pub header_quarantined: bool,
    /// Jobs accepted but never terminal, in acceptance order — the
    /// recovery pass re-enqueues these.
    pub pending: Vec<PendingJob>,
    /// Terminal results: `(id, status, body)`.
    pub done: Vec<(u64, u16, Vec<u8>)>,
    /// Cancelled job ids.
    pub cancelled: Vec<u64>,
    /// One past the highest id seen (safe next id to allocate).
    pub next_id: u64,
}

/// An open, append-only job journal.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: fs::File,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, running the
    /// recovery scan described in the module docs.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the file cannot be read, created, repaired,
    /// or quarantined. Corruption of journal *content* is never an
    /// error — it is truncated, quarantined, and reported.
    pub fn open(path: &Path) -> Result<(Self, RecoveryReport), StoreError> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, &e))?;
        }
        let mut report = RecoveryReport::default();
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(StoreError::io(path, &e)),
        };

        let fresh = |path: &Path| -> Result<(), StoreError> {
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(&JOURNAL_MAGIC);
            header.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
            atomic_io::write_atomic(path, &header).map_err(|e| StoreError::io(path, &e))
        };

        if bytes.is_empty() {
            fresh(path)?;
        } else if bytes.len() < HEADER_LEN
            || bytes[..8] != JOURNAL_MAGIC
            || le_u32(&bytes[8..12]) != JOURNAL_VERSION
        {
            // A header this build cannot vouch for poisons every byte
            // after it: quarantine the whole file and start fresh.
            Self::quarantine_whole(path, bytes.len() as u64, &mut report)?;
            fresh(path)?;
        } else {
            Self::scan(path, &bytes, &mut report)?;
        }

        let file = fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| StoreError::io(path, &e))?;
        Ok((
            Self {
                path: path.to_path_buf(),
                file,
            },
            report,
        ))
    }

    /// Appends a record and fsyncs it. Only after this returns may the
    /// transition it records be acknowledged to anyone.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the write or fsync fails,
    /// [`StoreError::RecordTooLarge`] past [`MAX_RECORD_BYTES`].
    pub fn append(&mut self, record: &JobRecord) -> Result<(), StoreError> {
        let body = record.encode();
        if body.len() > MAX_RECORD_BYTES {
            return Err(StoreError::RecordTooLarge { bytes: body.len() });
        }
        let mut framed = Vec::with_capacity(4 + 8 + body.len());
        framed.extend_from_slice(&(body.len() as u32 + 8).to_le_bytes());
        framed.extend_from_slice(&fnv1a(&body).to_le_bytes());
        framed.extend_from_slice(&body);
        self.file
            .write_all(&framed)
            .and_then(|()| self.file.sync_data())
            .map_err(|e| StoreError::io(&self.path, &e))
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn sidecar(path: &Path) -> PathBuf {
        let mut name = path.as_os_str().to_os_string();
        name.push(".corrupt");
        PathBuf::from(name)
    }

    fn quarantine_whole(
        path: &Path,
        len: u64,
        report: &mut RecoveryReport,
    ) -> Result<(), StoreError> {
        let sidecar = Self::sidecar(path);
        fs::rename(path, &sidecar).map_err(|e| StoreError::io(path, &e))?;
        report.header_quarantined = true;
        report.quarantined_bytes = len;
        Ok(())
    }

    /// Walks the records after a verified header, truncating at the
    /// first damage.
    fn scan(path: &Path, bytes: &[u8], report: &mut RecoveryReport) -> Result<(), StoreError> {
        let mut off = HEADER_LEN;
        let mut accepted: Vec<PendingJob> = Vec::new();
        let mut terminal: HashSet<u64> = HashSet::new();
        let mut damage = None;
        while off < bytes.len() {
            let rest = &bytes[off..];
            if rest.len() < 4 {
                damage = Some(off);
                break;
            }
            let len = le_u32(&rest[..4]) as usize;
            if !(RECORD_FIXED..=MAX_RECORD_BYTES + 8).contains(&len) || rest.len() < 4 + len {
                damage = Some(off);
                break;
            }
            let crc = le_u64(&rest[4..12]);
            let body = &rest[12..4 + len];
            if fnv1a(body) != crc {
                damage = Some(off);
                break;
            }
            let record = match JobRecord::decode(body) {
                Ok(r) => r,
                Err(_) => {
                    damage = Some(off);
                    break;
                }
            };
            report.records_replayed += 1;
            report.next_id = report.next_id.max(record.id() + 1);
            match record {
                JobRecord::Accepted { id, payload } => {
                    if !terminal.contains(&id) && !accepted.iter().any(|p| p.id == id) {
                        accepted.push(PendingJob { id, payload });
                    }
                }
                JobRecord::Completed { id, status, body } => {
                    terminal.insert(id);
                    report.done.push((id, status, body));
                }
                JobRecord::Cancelled { id } => {
                    terminal.insert(id);
                    report.cancelled.push(id);
                }
            }
            off += 4 + len;
        }
        if let Some(at) = damage {
            let tail = &bytes[at..];
            report.truncated_at = Some(at as u64);
            report.quarantined_bytes = tail.len() as u64;
            atomic_io::write_atomic(&Self::sidecar(path), tail)
                .map_err(|e| StoreError::io(path, &e))?;
            let file = fs::OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| StoreError::io(path, &e))?;
            file.set_len(at as u64)
                .and_then(|()| file.sync_all())
                .map_err(|e| StoreError::io(path, &e))?;
        }
        report.pending = accepted
            .into_iter()
            .filter(|p| !terminal.contains(&p.id))
            .collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "slif-journal-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir.join("jobs.journal")
    }

    fn cleanup(path: &Path) {
        if let Some(dir) = path.parent() {
            let _ = fs::remove_dir_all(dir);
        }
    }

    fn sample_records() -> Vec<JobRecord> {
        vec![
            JobRecord::Accepted {
                id: 1,
                payload: b"estimate spec-a".to_vec(),
            },
            JobRecord::Completed {
                id: 1,
                status: 200,
                body: b"result body one".to_vec(),
            },
            JobRecord::Accepted {
                id: 2,
                payload: b"explore spec-b with a longer payload".to_vec(),
            },
            JobRecord::Accepted {
                id: 3,
                payload: b"analyze spec-c".to_vec(),
            },
            JobRecord::Cancelled { id: 3 },
        ]
    }

    fn written_file(path: &Path) -> Vec<u8> {
        let (mut j, report) = Journal::open(path).unwrap();
        assert_eq!(report, RecoveryReport::default());
        for r in sample_records() {
            j.append(&r).unwrap();
        }
        drop(j);
        fs::read(path).unwrap()
    }

    #[test]
    fn replay_classifies_every_job() {
        let path = temp_path("replay");
        let _ = written_file(&path);
        let (_, report) = Journal::open(&path).unwrap();
        assert_eq!(report.records_replayed, 5);
        assert_eq!(report.truncated_at, None);
        assert!(!report.header_quarantined);
        assert_eq!(report.pending.len(), 1);
        assert_eq!(report.pending[0].id, 2);
        assert_eq!(report.pending[0].payload, b"explore spec-b with a longer payload");
        assert_eq!(report.done, vec![(1, 200, b"result body one".to_vec())]);
        assert_eq!(report.cancelled, vec![3]);
        assert_eq!(report.next_id, 4);
        cleanup(&path);
    }

    #[test]
    fn kill_at_every_byte_offset_recovers_exactly_the_written_prefix() {
        let scratch = temp_path("every-offset");
        let full = written_file(&scratch);
        cleanup(&scratch);

        // Record boundaries: offsets at which a prefix is "clean".
        let mut boundaries = vec![HEADER_LEN];
        let mut off = HEADER_LEN;
        while off < full.len() {
            let len = le_u32(&full[off..off + 4]) as usize;
            off += 4 + len;
            boundaries.push(off);
        }

        let path = temp_path("every-offset-run");
        for cut in 0..=full.len() {
            cleanup(&path);
            if let Some(dir) = path.parent() {
                fs::create_dir_all(dir).unwrap();
            }
            fs::write(&path, &full[..cut]).unwrap();
            let (mut j, report) = Journal::open(&path).unwrap();
            if cut == 0 {
                // Empty file: fresh start, nothing quarantined.
                assert_eq!(report, RecoveryReport::default(), "cut {cut}");
            } else if cut < HEADER_LEN {
                assert!(report.header_quarantined, "cut {cut}");
                assert_eq!(report.records_replayed, 0, "cut {cut}");
            } else {
                // Exactly the fully-written records replay.
                let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
                assert_eq!(report.records_replayed, complete as u64, "cut {cut}");
                let clean = boundaries.contains(&cut);
                assert_eq!(report.truncated_at.is_none(), clean, "cut {cut}");
                if !clean {
                    let at = *boundaries.iter().filter(|&&b| b <= cut).max().unwrap();
                    assert_eq!(report.truncated_at, Some(at as u64), "cut {cut}");
                    assert_eq!(report.quarantined_bytes, (cut - at) as u64, "cut {cut}");
                }
            }
            // The repaired journal is append-clean: a new record lands and
            // a further reopen finds no damage.
            j.append(&JobRecord::Cancelled { id: 99 }).unwrap();
            drop(j);
            let (_, again) = Journal::open(&path).unwrap();
            assert_eq!(again.truncated_at, None, "cut {cut} left damage behind");
            assert!(!again.header_quarantined, "cut {cut}");
            assert!(again.cancelled.contains(&99), "cut {cut}");
        }
        cleanup(&path);
    }

    #[test]
    fn bit_flip_truncates_at_the_damaged_record() {
        let path = temp_path("bitflip");
        let full = written_file(&path);
        // Flip a bit inside the second record's body.
        let first_len = le_u32(&full[HEADER_LEN..HEADER_LEN + 4]) as usize;
        let second_start = HEADER_LEN + 4 + first_len;
        let mut bad = full.clone();
        bad[second_start + 20] ^= 0x10;
        fs::write(&path, &bad).unwrap();
        let (_, report) = Journal::open(&path).unwrap();
        assert_eq!(report.records_replayed, 1);
        assert_eq!(report.truncated_at, Some(second_start as u64));
        // The sidecar holds the damaged tail bit-for-bit.
        let sidecar = fs::read(Journal::sidecar(&path)).unwrap();
        assert_eq!(sidecar, &bad[second_start..]);
        // The journal itself was truncated to the intact prefix.
        assert_eq!(fs::read(&path).unwrap(), &full[..second_start]);
        cleanup(&path);
    }

    #[test]
    fn stale_version_quarantines_the_whole_file() {
        let path = temp_path("stale");
        let full = written_file(&path);
        let mut bad = full.clone();
        bad[8..12].copy_from_slice(&7u32.to_le_bytes());
        fs::write(&path, &bad).unwrap();
        let (_, report) = Journal::open(&path).unwrap();
        assert!(report.header_quarantined);
        assert_eq!(report.records_replayed, 0);
        assert_eq!(report.quarantined_bytes, bad.len() as u64);
        assert_eq!(fs::read(Journal::sidecar(&path)).unwrap(), bad);
        // The replacement journal is a bare, valid header.
        let (_, again) = Journal::open(&path).unwrap();
        assert_eq!(again, RecoveryReport::default());
        cleanup(&path);
    }

    #[test]
    fn oversized_declared_length_is_damage_not_allocation() {
        let path = temp_path("oversize");
        let full = written_file(&path);
        let mut bad = full[..HEADER_LEN].to_vec();
        bad.extend_from_slice(&(u32::MAX).to_le_bytes());
        bad.extend_from_slice(&full[HEADER_LEN + 4..HEADER_LEN + 40]);
        fs::write(&path, &bad).unwrap();
        let (_, report) = Journal::open(&path).unwrap();
        assert_eq!(report.records_replayed, 0);
        assert_eq!(report.truncated_at, Some(HEADER_LEN as u64));
        cleanup(&path);
    }

    #[test]
    fn append_rejects_oversized_records() {
        let path = temp_path("toolarge");
        let (mut j, _) = Journal::open(&path).unwrap();
        let err = j
            .append(&JobRecord::Accepted {
                id: 1,
                payload: vec![0; MAX_RECORD_BYTES + 1],
            })
            .unwrap_err();
        assert!(matches!(err, StoreError::RecordTooLarge { .. }));
        cleanup(&path);
    }

    #[test]
    fn duplicate_accepted_and_out_of_order_terminals_are_tolerated() {
        let path = temp_path("dupes");
        let (mut j, _) = Journal::open(&path).unwrap();
        j.append(&JobRecord::Accepted {
            id: 5,
            payload: b"x".to_vec(),
        })
        .unwrap();
        j.append(&JobRecord::Accepted {
            id: 5,
            payload: b"y".to_vec(),
        })
        .unwrap();
        j.append(&JobRecord::Cancelled { id: 8 }).unwrap();
        drop(j);
        let (_, report) = Journal::open(&path).unwrap();
        assert_eq!(report.pending.len(), 1);
        assert_eq!(report.pending[0].payload, b"x");
        assert_eq!(report.next_id, 9);
        cleanup(&path);
    }
}
