//! Bounds-checked little-endian payload codec shared by the canonical
//! design encoding, the compiled-design encoding, the journal record
//! payloads, and (downstream) the `slif-formats` wire encodings.
//!
//! The decoder never trusts a decoded count: callers loop-and-push
//! rather than pre-allocating from untrusted lengths, and [`Dec::take`]
//! guarantees termination because every read advances or errors.

use crate::error::StoreError;
use slif_core::atomic_io::{le_u32, le_u64};

/// Little-endian payload writer.
#[derive(Debug, Default)]
pub struct Enc {
    /// The bytes written so far. Public so composite encoders can
    /// splice finished sub-payloads together.
    pub buf: Vec<u8>,
}

impl Enc {
    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    /// Appends a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends an `f64` as its raw IEEE-754 bits (exact round trip, no
    /// decimal detour).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
}

/// Bounds-checked little-endian payload reader.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Starts reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Takes the next `n` raw bytes, or a typed
    /// [`StoreError::Corrupt`] naming `context` if fewer remain.
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(StoreError::Corrupt { context })?;
        if end > self.buf.len() {
            return Err(StoreError::Corrupt { context });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] naming `context` on exhausted input.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, StoreError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] naming `context` on exhausted input.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, StoreError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] naming `context` on exhausted input.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, StoreError> {
        Ok(le_u32(self.take(4, context)?))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] naming `context` on exhausted input.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, StoreError> {
        Ok(le_u64(self.take(8, context)?))
    }

    /// Reads an `f64` from its raw IEEE-754 bits.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] naming `context` on exhausted input.
    pub fn f64(&mut self, context: &'static str) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Reads a length-prefixed byte string; the length is
    /// bounds-checked against the remaining buffer before any
    /// allocation.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] naming `context` on exhausted input.
    pub fn bytes(&mut self, context: &'static str) -> Result<&'a [u8], StoreError> {
        let len = self.u32(context)? as usize;
        self.take(len, context)
    }

    /// Bytes not yet consumed — the hostile-safe ceiling for any
    /// pre-allocation driven by a decoded count.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Requires the input to be fully consumed.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] if trailing bytes remain.
    pub fn finish(self) -> Result<(), StoreError> {
        if self.pos != self.buf.len() {
            return Err(StoreError::Corrupt {
                context: "trailing bytes",
            });
        }
        Ok(())
    }
}
