//! Bounds-checked little-endian payload codec shared by the canonical
//! design encoding and the journal record payloads.
//!
//! The decoder never trusts a decoded count: callers loop-and-push
//! rather than pre-allocating from untrusted lengths, and [`Dec::take`]
//! guarantees termination because every read advances or errors.

use crate::error::StoreError;
use slif_core::atomic_io::{le_u32, le_u64};

/// Little-endian payload writer.
#[derive(Debug, Default)]
pub(crate) struct Enc {
    pub(crate) buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    /// A length-prefixed byte string.
    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
}

/// Bounds-checked little-endian payload reader.
#[derive(Debug)]
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(StoreError::Corrupt { context })?;
        if end > self.buf.len() {
            return Err(StoreError::Corrupt { context });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, context: &'static str) -> Result<u8, StoreError> {
        Ok(self.take(1, context)?[0])
    }

    pub(crate) fn u16(&mut self, context: &'static str) -> Result<u16, StoreError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self, context: &'static str) -> Result<u32, StoreError> {
        Ok(le_u32(self.take(4, context)?))
    }

    pub(crate) fn u64(&mut self, context: &'static str) -> Result<u64, StoreError> {
        Ok(le_u64(self.take(8, context)?))
    }

    pub(crate) fn f64(&mut self, context: &'static str) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// A length-prefixed byte string; the length is bounds-checked
    /// against the remaining buffer before any allocation.
    pub(crate) fn bytes(&mut self, context: &'static str) -> Result<&'a [u8], StoreError> {
        let len = self.u32(context)? as usize;
        self.take(len, context)
    }

    pub(crate) fn finish(self) -> Result<(), StoreError> {
        if self.pos != self.buf.len() {
            return Err(StoreError::Corrupt {
                context: "trailing bytes",
            });
        }
        Ok(())
    }
}
