//! The content-addressed compiled-design cache.
//!
//! Layout under the cache directory:
//!
//! ```text
//! objects/<sha256-of-canonical-bytes>   framed canonical Design
//! refs/<sha256-of-spec-source>          framed 32-byte content key
//! ```
//!
//! A spec's *source bytes* hash to a ref, the ref names the canonical
//! object, and the object's file name **is** the SHA-256 of its payload
//! — so re-hashing the payload on every read verifies, for free, that a
//! hit is bit-identical to what was cached. The chain a hit walks is
//! verified end to end: ref frame checksum → object frame checksum →
//! content hash → strict canonical decode.
//!
//! Failures never reach a client: any unreadable, misframed, or
//! hash-mismatched file is renamed to a `.corrupt` sidecar, counted in
//! [`CacheStats::quarantined`], and reported as a plain miss. The next
//! cold compile re-populates the slot through an atomic write.
//!
//! Alongside the canonical object, a design's [`CompiledDesign`] can be
//! cached too (`compiled/<same-key>`), so a warm hit skips the compile
//! pass as well as the parse. A compiled entry is an *accelerator*, not
//! a source of truth: it is only served after its frame checksum, its
//! embedded design key, a strict decode, and the full
//! [`CompiledDesign::try_from_parts`] invariant audit all pass, and any
//! failure quarantines the entry and falls back to recompiling from the
//! verified design.

use crate::canonical::{decode_design, encode_design};
use crate::compiled::{decode_compiled, encode_compiled};
use crate::error::StoreError;
use crate::sha256::ContentKey;
use slif_core::atomic_io;
use slif_core::{CompiledDesign, Design};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The 8-byte magic of an object file (a framed canonical design).
pub const OBJECT_MAGIC: [u8; 8] = *b"SLIFCOBJ";
/// The 8-byte magic of a ref file (a framed content key).
pub const REF_MAGIC: [u8; 8] = *b"SLIFCREF";
/// The 8-byte magic of a compiled-design file (a framed compiled
/// encoding).
pub const COMPILED_MAGIC: [u8; 8] = *b"SLIFCCMP";
/// The current (and only) cache container version.
pub const CACHE_VERSION: u32 = 1;

/// Counter snapshot for `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Verified hits served.
    pub hits: u64,
    /// Lookups that found nothing usable (including quarantines).
    pub misses: u64,
    /// Files renamed to `.corrupt` after failing verification.
    pub quarantined: u64,
    /// Designs written.
    pub puts: u64,
    /// Verified compiled-design hits (the compile pass was skipped).
    pub compiled_hits: u64,
    /// Design hits that had to recompile: no compiled entry, or one
    /// that failed verification.
    pub compiled_misses: u64,
}

/// An open cache directory. Cheap to share behind an `Arc`; all methods
/// take `&self`.
#[derive(Debug)]
pub struct DesignCache {
    objects: PathBuf,
    refs: PathBuf,
    compiled: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    quarantined: AtomicU64,
    puts: AtomicU64,
    compiled_hits: AtomicU64,
    compiled_misses: AtomicU64,
}

impl DesignCache {
    /// Opens (creating if absent) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the subdirectories cannot be created.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        let objects = dir.join("objects");
        let refs = dir.join("refs");
        let compiled = dir.join("compiled");
        fs::create_dir_all(&objects).map_err(|e| StoreError::io(&objects, &e))?;
        fs::create_dir_all(&refs).map_err(|e| StoreError::io(&refs, &e))?;
        fs::create_dir_all(&compiled).map_err(|e| StoreError::io(&compiled, &e))?;
        Ok(Self {
            objects,
            refs,
            compiled,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            compiled_hits: AtomicU64::new(0),
            compiled_misses: AtomicU64::new(0),
        })
    }

    /// Caches `design` under the given spec source, returning the
    /// design's content key.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if either file cannot be written atomically.
    pub fn put(&self, source: &[u8], design: &Design) -> Result<ContentKey, StoreError> {
        let canonical = encode_design(design);
        let key = ContentKey::of(&canonical);
        let object = self.objects.join(key.to_hex());
        if !object.exists() {
            atomic_io::write_atomic(&object, &atomic_io::frame(&OBJECT_MAGIC, CACHE_VERSION, &canonical))
                .map_err(|e| StoreError::io(&object, &e))?;
        }
        let reference = self.refs.join(ContentKey::of(source).to_hex());
        atomic_io::write_atomic(&reference, &atomic_io::frame(&REF_MAGIC, CACHE_VERSION, &key.0))
            .map_err(|e| StoreError::io(&reference, &e))?;
        self.puts.fetch_add(1, Ordering::Relaxed);
        Ok(key)
    }

    /// Looks up the design cached for a spec source. Returns a design
    /// only after the full verification chain passes; everything else —
    /// absent files, frame damage, hash mismatch, decode failure — is a
    /// counted miss (with quarantine where there was a file to blame).
    pub fn get(&self, source: &[u8]) -> Option<Design> {
        self.get_verified(source).map(|(_, design)| design)
    }

    /// The verification chain behind [`get`](Self::get), also handing
    /// back the design's content key so callers that need it (the
    /// compiled-view lookup) do not re-encode and re-hash a design the
    /// chain just proved matches that key.
    fn get_verified(&self, source: &[u8]) -> Option<(ContentKey, Design)> {
        let reference = self.refs.join(ContentKey::of(source).to_hex());
        let key = match self.read_framed(&reference, &REF_MAGIC) {
            Lookup::Absent => return self.miss(),
            Lookup::Damaged => return self.miss(),
            Lookup::Payload(p) => {
                if p.len() != 32 {
                    self.quarantine(&reference);
                    return self.miss();
                }
                let mut k = [0u8; 32];
                k.copy_from_slice(&p);
                ContentKey(k)
            }
        };
        let object = self.objects.join(key.to_hex());
        let canonical = match self.read_framed(&object, &OBJECT_MAGIC) {
            Lookup::Absent | Lookup::Damaged => return self.miss(),
            Lookup::Payload(p) => p,
        };
        // The file name is the hash of the payload: re-hashing proves
        // the bytes are identical to what was cached.
        if ContentKey::of(&canonical) != key {
            self.quarantine(&object);
            return self.miss();
        }
        match decode_design(&canonical) {
            Ok(design) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((key, design))
            }
            Err(_) => {
                self.quarantine(&object);
                self.miss()
            }
        }
    }

    /// [`put`](Self::put), plus the design's compiled view, so a later
    /// [`get_with_compiled`](Self::get_with_compiled) can skip the
    /// compile pass entirely. The compiled entry is filed under the
    /// *design's* content key (not the source's), so equal designs
    /// reached through different sources share one compiled object.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if a file cannot be written atomically.
    pub fn put_with_compiled(
        &self,
        source: &[u8],
        design: &Design,
        compiled: &CompiledDesign,
    ) -> Result<ContentKey, StoreError> {
        let key = self.put(source, design)?;
        let path = self.compiled.join(key.to_hex());
        if !path.exists() {
            if let Some(payload) = encode_compiled(&key, compiled) {
                atomic_io::write_atomic(
                    &path,
                    &atomic_io::frame(&COMPILED_MAGIC, CACHE_VERSION, &payload),
                )
                .map_err(|e| StoreError::io(&path, &e))?;
            }
        }
        Ok(key)
    }

    /// Looks up the design cached for a spec source *and*, when a
    /// verified compiled entry exists for it, the compiled view. The
    /// second element is `None` when the compiled entry is absent or
    /// failed any verification step (frame checksum, embedded design
    /// key, strict decode, structural audit) — the caller recompiles
    /// from the returned design, which has itself passed the full
    /// design chain.
    pub fn get_with_compiled(&self, source: &[u8]) -> Option<(Design, Option<CompiledDesign>)> {
        let (key, design) = self.get_verified(source)?;
        let compiled = self.verified_compiled(&key, &design);
        if compiled.is_some() {
            self.compiled_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.compiled_misses.fetch_add(1, Ordering::Relaxed);
        }
        Some((design, compiled))
    }

    /// Looks up a design directly by its content key (the hash a
    /// [`put`](Self::put) returned), bypassing the source-ref layer —
    /// the `GET /designs/{hash}` path. Verification is the same as for
    /// [`get`](Self::get) minus the ref hop: frame checksum → content
    /// re-hash → strict decode; anything damaged is quarantined and
    /// reported as a counted miss.
    pub fn get_by_key(&self, key: &ContentKey) -> Option<Design> {
        let object = self.objects.join(key.to_hex());
        let canonical = match self.read_framed(&object, &OBJECT_MAGIC) {
            Lookup::Absent | Lookup::Damaged => return self.miss(),
            Lookup::Payload(p) => p,
        };
        if ContentKey::of(&canonical) != *key {
            self.quarantine(&object);
            return self.miss();
        }
        match decode_design(&canonical) {
            Ok(design) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(design)
            }
            Err(_) => {
                self.quarantine(&object);
                self.miss()
            }
        }
    }

    /// Fetches only the compiled view for a design key — the hot path
    /// for a consumer that runs estimators off the immutable compiled
    /// layout and never touches the `Design` itself. Skipping the
    /// design object skips its decode *and* its content re-hash, so
    /// this is the cheapest warm read the store offers.
    ///
    /// Verification: frame checksum, then strict decode (which
    /// re-audits every structural invariant via `try_from_parts`), then
    /// the embedded design key must equal `key` — the entry was written
    /// under the SHA-256 of the design it accelerates, so a key match
    /// binds it to exactly that design. Anything damaged or misfiled is
    /// quarantined and reported as a compiled miss; the caller falls
    /// back to [`get_by_key`](Self::get_by_key) plus a fresh compile.
    pub fn get_compiled_by_key(&self, key: &ContentKey) -> Option<CompiledDesign> {
        let path = self.compiled.join(key.to_hex());
        let payload = match self.read_framed(&path, &COMPILED_MAGIC) {
            Lookup::Absent | Lookup::Damaged => {
                self.compiled_misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Lookup::Payload(p) => p,
        };
        match decode_compiled(&payload) {
            Ok((embedded, cd)) if embedded == *key => {
                self.compiled_hits.fetch_add(1, Ordering::Relaxed);
                Some(cd)
            }
            Ok(_) | Err(_) => {
                self.quarantine(&path);
                self.compiled_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Reads, verifies, and cross-checks the compiled entry for `key`.
    fn verified_compiled(&self, key: &ContentKey, design: &Design) -> Option<CompiledDesign> {
        let path = self.compiled.join(key.to_hex());
        let payload = match self.read_framed(&path, &COMPILED_MAGIC) {
            Lookup::Absent | Lookup::Damaged => return None,
            Lookup::Payload(p) => p,
        };
        let (embedded, cd) = match decode_compiled(&payload) {
            Ok(pair) => pair,
            Err(_) => {
                self.quarantine(&path);
                return None;
            }
        };
        // The entry must claim the design we verified, and its counts
        // must agree with that design — a cheap final cross-check that
        // a stale or misfiled accelerator cannot pass.
        let g = design.graph();
        let consistent = embedded == *key
            && cd.node_count() == g.node_count()
            && cd.port_count() == g.port_count()
            && cd.channel_count() == g.channel_count()
            && cd.class_count() == design.class_count()
            && cd.processor_count() == design.processor_count()
            && cd.memory_count() == design.memory_count()
            && cd.bus_count() == design.bus_count();
        if !consistent {
            self.quarantine(&path);
            return None;
        }
        Some(cd)
    }

    /// Current counter values.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            compiled_hits: self.compiled_hits.load(Ordering::Relaxed),
            compiled_misses: self.compiled_misses.load(Ordering::Relaxed),
        }
    }

    fn miss<T>(&self) -> Option<T> {
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Reads and unframes a cache file, quarantining it on any damage.
    fn read_framed(&self, path: &Path, magic: &[u8; 8]) -> Lookup {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Lookup::Absent,
            Err(_) => {
                self.quarantine(path);
                return Lookup::Damaged;
            }
        };
        match atomic_io::unframe(magic, CACHE_VERSION, &bytes) {
            Ok(payload) => Lookup::Payload(payload.to_vec()),
            Err(_) => {
                self.quarantine(path);
                Lookup::Damaged
            }
        }
    }

    fn quarantine(&self, path: &Path) {
        let mut name = path.as_os_str().to_os_string();
        name.push(".corrupt");
        if fs::rename(path, &name).is_ok() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
        }
    }
}

enum Lookup {
    Absent,
    Damaged,
    Payload(Vec<u8>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_core::gen::DesignGenerator;

    fn temp_cache(tag: &str) -> (PathBuf, DesignCache) {
        let dir = std::env::temp_dir().join(format!("slif-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = DesignCache::open(&dir).unwrap();
        (dir, cache)
    }

    #[test]
    fn hit_is_bit_identical_to_what_was_put() {
        let (dir, cache) = temp_cache("roundtrip");
        let (design, _) = DesignGenerator::new(4).build();
        let source = b"spec source text";
        assert!(cache.get(source).is_none());
        cache.put(source, &design).unwrap();
        let back = cache.get(source).unwrap();
        assert_eq!(back, design);
        assert_eq!(encode_design(&back), encode_design(&design));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.puts), (1, 1, 1));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn cache_survives_reopen() {
        let (dir, cache) = temp_cache("reopen");
        let (design, _) = DesignGenerator::new(5).build();
        cache.put(b"src", &design).unwrap();
        drop(cache);
        let cache = DesignCache::open(&dir).unwrap();
        assert_eq!(cache.get(b"src").unwrap(), design);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_object_is_a_quarantined_miss_then_repopulates() {
        let (dir, cache) = temp_cache("corrupt-object");
        let (design, _) = DesignGenerator::new(6).build();
        let key = cache.put(b"src", &design).unwrap();
        let object = dir.join("objects").join(key.to_hex());
        let mut bytes = fs::read(&object).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&object, &bytes).unwrap();

        assert!(cache.get(b"src").is_none(), "corrupt object served");
        assert!(!object.exists(), "corrupt object not quarantined");
        assert!(dir
            .join("objects")
            .join(format!("{}.corrupt", key.to_hex()))
            .exists());
        assert_eq!(cache.stats().quarantined, 1);

        cache.put(b"src", &design).unwrap();
        assert_eq!(cache.get(b"src").unwrap(), design);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn hash_mismatch_with_valid_frame_is_caught() {
        // A frame that checksums fine but whose payload is not what the
        // file name promises — e.g. after a botched manual copy.
        let (dir, cache) = temp_cache("hash-mismatch");
        let (design, _) = DesignGenerator::new(7).build();
        let (other, _) = DesignGenerator::new(8).build();
        let key = cache.put(b"src", &design).unwrap();
        let object = dir.join("objects").join(key.to_hex());
        let forged = atomic_io::frame(&OBJECT_MAGIC, CACHE_VERSION, &encode_design(&other));
        fs::write(&object, forged).unwrap();
        assert!(cache.get(b"src").is_none());
        assert_eq!(cache.stats().quarantined, 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_ref_is_a_quarantined_miss() {
        let (dir, cache) = temp_cache("corrupt-ref");
        let (design, _) = DesignGenerator::new(9).build();
        cache.put(b"src", &design).unwrap();
        let reference = dir.join("refs").join(ContentKey::of(b"src").to_hex());
        let mut bytes = fs::read(&reference).unwrap();
        bytes.truncate(bytes.len() / 2);
        fs::write(&reference, &bytes).unwrap();
        assert!(cache.get(b"src").is_none());
        assert!(!reference.exists());
        assert_eq!(cache.stats().quarantined, 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn stale_container_version_is_a_miss_not_an_error() {
        let (dir, cache) = temp_cache("stale-version");
        let (design, _) = DesignGenerator::new(10).build();
        let key = cache.put(b"src", &design).unwrap();
        let object = dir.join("objects").join(key.to_hex());
        let mut bytes = fs::read(&object).unwrap();
        bytes[8..12].copy_from_slice(&9u32.to_le_bytes());
        fs::write(&object, &bytes).unwrap();
        assert!(cache.get(b"src").is_none());
        assert_eq!(cache.stats().quarantined, 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn compiled_warm_hit_matches_fresh_compile() {
        let (dir, cache) = temp_cache("compiled-hit");
        let (design, _) = DesignGenerator::new(14).build();
        let cd = CompiledDesign::compile(&design);
        let key = cache.put_with_compiled(b"src", &design, &cd).unwrap();
        assert!(dir.join("compiled").join(key.to_hex()).exists());
        let (back, warm) = cache.get_with_compiled(b"src").unwrap();
        assert_eq!(back, design);
        assert_eq!(warm.as_ref(), Some(&cd), "warm view differs from fresh compile");
        let stats = cache.stats();
        assert_eq!((stats.compiled_hits, stats.compiled_misses), (1, 0));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_compiled_entry_degrades_to_a_design_hit() {
        let (dir, cache) = temp_cache("compiled-corrupt");
        let (design, _) = DesignGenerator::new(15).build();
        let cd = CompiledDesign::compile(&design);
        let key = cache.put_with_compiled(b"src", &design, &cd).unwrap();
        let path = dir.join("compiled").join(key.to_hex());
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&path, &bytes).unwrap();

        let (back, warm) = cache.get_with_compiled(b"src").unwrap();
        assert_eq!(back, design, "design hit must survive compiled damage");
        assert!(warm.is_none(), "damaged compiled entry served");
        assert!(!path.exists(), "damaged compiled entry not quarantined");
        let stats = cache.stats();
        assert_eq!(stats.compiled_misses, 1);
        assert_eq!(stats.quarantined, 1);

        // Re-put repopulates the accelerator slot.
        cache.put_with_compiled(b"src", &design, &cd).unwrap();
        let (_, warm) = cache.get_with_compiled(b"src").unwrap();
        assert_eq!(warm, Some(cd));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn misfiled_compiled_entry_is_refused_by_the_key_cross_check() {
        // A frame that checksums and decodes fine, but was compiled
        // from a *different* design (a botched manual copy between
        // slots). The embedded-key cross-check must refuse it.
        let (dir, cache) = temp_cache("compiled-misfiled");
        let (design, _) = DesignGenerator::new(16).build();
        let (other, _) = DesignGenerator::new(17).build();
        let cd = CompiledDesign::compile(&design);
        let other_cd = CompiledDesign::compile(&other);
        let key = cache.put_with_compiled(b"src", &design, &cd).unwrap();
        let other_key = ContentKey::of(&encode_design(&other));
        let forged = encode_compiled(&other_key, &other_cd).unwrap();
        fs::write(
            dir.join("compiled").join(key.to_hex()),
            atomic_io::frame(&COMPILED_MAGIC, CACHE_VERSION, &forged),
        )
        .unwrap();
        let (_, warm) = cache.get_with_compiled(b"src").unwrap();
        assert!(warm.is_none(), "misfiled compiled entry served");
        assert_eq!(cache.stats().quarantined, 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn get_compiled_by_key_skips_the_design_object_entirely() {
        let (dir, cache) = temp_cache("compiled-by-key");
        let (design, _) = DesignGenerator::new(19).build();
        let cd = CompiledDesign::compile(&design);
        let key = cache.put_with_compiled(b"src", &design, &cd).unwrap();

        // The hit equals a fresh compile without touching the design
        // object — even after the design object is destroyed.
        fs::remove_file(dir.join("objects").join(key.to_hex())).unwrap();
        assert_eq!(cache.get_compiled_by_key(&key).unwrap(), cd);
        assert!(cache.get_compiled_by_key(&ContentKey::of(b"unknown")).is_none());

        // Damage is quarantined, not served.
        let path = dir.join("compiled").join(key.to_hex());
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        fs::write(&path, &bytes).unwrap();
        assert!(cache.get_compiled_by_key(&key).is_none());
        assert!(!path.exists(), "damaged compiled entry not quarantined");

        // A well-formed entry filed under the wrong key is refused by
        // the embedded-key binding.
        let (other, _) = DesignGenerator::new(20).build();
        let other_cd = CompiledDesign::compile(&other);
        let other_key = ContentKey::of(&encode_design(&other));
        let forged = encode_compiled(&other_key, &other_cd).unwrap();
        fs::write(&path, atomic_io::frame(&COMPILED_MAGIC, CACHE_VERSION, &forged)).unwrap();
        assert!(cache.get_compiled_by_key(&key).is_none());
        assert!(!path.exists(), "misfiled compiled entry not quarantined");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn get_by_key_serves_and_verifies_the_object_directly() {
        let (dir, cache) = temp_cache("by-key");
        let (design, _) = DesignGenerator::new(18).build();
        let key = cache.put(b"src", &design).unwrap();
        assert_eq!(cache.get_by_key(&key).unwrap(), design);
        assert!(cache.get_by_key(&ContentKey::of(b"unknown")).is_none());

        let object = dir.join("objects").join(key.to_hex());
        let mut bytes = fs::read(&object).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&object, &bytes).unwrap();
        assert!(cache.get_by_key(&key).is_none(), "corrupt object served");
        assert!(!object.exists(), "corrupt object not quarantined");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn distinct_sources_share_one_object_for_equal_designs() {
        let (dir, cache) = temp_cache("dedup");
        let (design, _) = DesignGenerator::new(11).build();
        let k1 = cache.put(b"source one", &design).unwrap();
        let k2 = cache.put(b"source two", &design).unwrap();
        assert_eq!(k1, k2);
        assert_eq!(fs::read_dir(dir.join("objects")).unwrap().count(), 1);
        assert_eq!(fs::read_dir(dir.join("refs")).unwrap().count(), 2);
        assert_eq!(cache.get(b"source one").unwrap(), design);
        assert_eq!(cache.get(b"source two").unwrap(), design);
        let _ = fs::remove_dir_all(dir);
    }
}
