//! The content-addressed compiled-design cache.
//!
//! Layout under the cache directory:
//!
//! ```text
//! objects/<sha256-of-canonical-bytes>   framed canonical Design
//! refs/<sha256-of-spec-source>          framed 32-byte content key
//! ```
//!
//! A spec's *source bytes* hash to a ref, the ref names the canonical
//! object, and the object's file name **is** the SHA-256 of its payload
//! — so re-hashing the payload on every read verifies, for free, that a
//! hit is bit-identical to what was cached. The chain a hit walks is
//! verified end to end: ref frame checksum → object frame checksum →
//! content hash → strict canonical decode.
//!
//! Failures never reach a client: any unreadable, misframed, or
//! hash-mismatched file is renamed to a `.corrupt` sidecar, counted in
//! [`CacheStats::quarantined`], and reported as a plain miss. The next
//! cold compile re-populates the slot through an atomic write.

use crate::canonical::{decode_design, encode_design};
use crate::error::StoreError;
use crate::sha256::ContentKey;
use slif_core::atomic_io;
use slif_core::Design;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The 8-byte magic of an object file (a framed canonical design).
pub const OBJECT_MAGIC: [u8; 8] = *b"SLIFCOBJ";
/// The 8-byte magic of a ref file (a framed content key).
pub const REF_MAGIC: [u8; 8] = *b"SLIFCREF";
/// The current (and only) cache container version.
pub const CACHE_VERSION: u32 = 1;

/// Counter snapshot for `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Verified hits served.
    pub hits: u64,
    /// Lookups that found nothing usable (including quarantines).
    pub misses: u64,
    /// Files renamed to `.corrupt` after failing verification.
    pub quarantined: u64,
    /// Designs written.
    pub puts: u64,
}

/// An open cache directory. Cheap to share behind an `Arc`; all methods
/// take `&self`.
#[derive(Debug)]
pub struct DesignCache {
    objects: PathBuf,
    refs: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    quarantined: AtomicU64,
    puts: AtomicU64,
}

impl DesignCache {
    /// Opens (creating if absent) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the subdirectories cannot be created.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        let objects = dir.join("objects");
        let refs = dir.join("refs");
        fs::create_dir_all(&objects).map_err(|e| StoreError::io(&objects, &e))?;
        fs::create_dir_all(&refs).map_err(|e| StoreError::io(&refs, &e))?;
        Ok(Self {
            objects,
            refs,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            puts: AtomicU64::new(0),
        })
    }

    /// Caches `design` under the given spec source, returning the
    /// design's content key.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if either file cannot be written atomically.
    pub fn put(&self, source: &[u8], design: &Design) -> Result<ContentKey, StoreError> {
        let canonical = encode_design(design);
        let key = ContentKey::of(&canonical);
        let object = self.objects.join(key.to_hex());
        if !object.exists() {
            atomic_io::write_atomic(&object, &atomic_io::frame(&OBJECT_MAGIC, CACHE_VERSION, &canonical))
                .map_err(|e| StoreError::io(&object, &e))?;
        }
        let reference = self.refs.join(ContentKey::of(source).to_hex());
        atomic_io::write_atomic(&reference, &atomic_io::frame(&REF_MAGIC, CACHE_VERSION, &key.0))
            .map_err(|e| StoreError::io(&reference, &e))?;
        self.puts.fetch_add(1, Ordering::Relaxed);
        Ok(key)
    }

    /// Looks up the design cached for a spec source. Returns a design
    /// only after the full verification chain passes; everything else —
    /// absent files, frame damage, hash mismatch, decode failure — is a
    /// counted miss (with quarantine where there was a file to blame).
    pub fn get(&self, source: &[u8]) -> Option<Design> {
        let reference = self.refs.join(ContentKey::of(source).to_hex());
        let key = match self.read_framed(&reference, &REF_MAGIC) {
            Lookup::Absent => return self.miss(),
            Lookup::Damaged => return self.miss(),
            Lookup::Payload(p) => {
                if p.len() != 32 {
                    self.quarantine(&reference);
                    return self.miss();
                }
                let mut k = [0u8; 32];
                k.copy_from_slice(&p);
                ContentKey(k)
            }
        };
        let object = self.objects.join(key.to_hex());
        let canonical = match self.read_framed(&object, &OBJECT_MAGIC) {
            Lookup::Absent | Lookup::Damaged => return self.miss(),
            Lookup::Payload(p) => p,
        };
        // The file name is the hash of the payload: re-hashing proves
        // the bytes are identical to what was cached.
        if ContentKey::of(&canonical) != key {
            self.quarantine(&object);
            return self.miss();
        }
        match decode_design(&canonical) {
            Ok(design) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(design)
            }
            Err(_) => {
                self.quarantine(&object);
                self.miss()
            }
        }
    }

    /// Current counter values.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
        }
    }

    fn miss(&self) -> Option<Design> {
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Reads and unframes a cache file, quarantining it on any damage.
    fn read_framed(&self, path: &Path, magic: &[u8; 8]) -> Lookup {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Lookup::Absent,
            Err(_) => {
                self.quarantine(path);
                return Lookup::Damaged;
            }
        };
        match atomic_io::unframe(magic, CACHE_VERSION, &bytes) {
            Ok(payload) => Lookup::Payload(payload.to_vec()),
            Err(_) => {
                self.quarantine(path);
                Lookup::Damaged
            }
        }
    }

    fn quarantine(&self, path: &Path) {
        let mut name = path.as_os_str().to_os_string();
        name.push(".corrupt");
        if fs::rename(path, &name).is_ok() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
        }
    }
}

enum Lookup {
    Absent,
    Damaged,
    Payload(Vec<u8>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_core::gen::DesignGenerator;

    fn temp_cache(tag: &str) -> (PathBuf, DesignCache) {
        let dir = std::env::temp_dir().join(format!("slif-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = DesignCache::open(&dir).unwrap();
        (dir, cache)
    }

    #[test]
    fn hit_is_bit_identical_to_what_was_put() {
        let (dir, cache) = temp_cache("roundtrip");
        let (design, _) = DesignGenerator::new(4).build();
        let source = b"spec source text";
        assert!(cache.get(source).is_none());
        cache.put(source, &design).unwrap();
        let back = cache.get(source).unwrap();
        assert_eq!(back, design);
        assert_eq!(encode_design(&back), encode_design(&design));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.puts), (1, 1, 1));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn cache_survives_reopen() {
        let (dir, cache) = temp_cache("reopen");
        let (design, _) = DesignGenerator::new(5).build();
        cache.put(b"src", &design).unwrap();
        drop(cache);
        let cache = DesignCache::open(&dir).unwrap();
        assert_eq!(cache.get(b"src").unwrap(), design);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_object_is_a_quarantined_miss_then_repopulates() {
        let (dir, cache) = temp_cache("corrupt-object");
        let (design, _) = DesignGenerator::new(6).build();
        let key = cache.put(b"src", &design).unwrap();
        let object = dir.join("objects").join(key.to_hex());
        let mut bytes = fs::read(&object).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&object, &bytes).unwrap();

        assert!(cache.get(b"src").is_none(), "corrupt object served");
        assert!(!object.exists(), "corrupt object not quarantined");
        assert!(dir
            .join("objects")
            .join(format!("{}.corrupt", key.to_hex()))
            .exists());
        assert_eq!(cache.stats().quarantined, 1);

        cache.put(b"src", &design).unwrap();
        assert_eq!(cache.get(b"src").unwrap(), design);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn hash_mismatch_with_valid_frame_is_caught() {
        // A frame that checksums fine but whose payload is not what the
        // file name promises — e.g. after a botched manual copy.
        let (dir, cache) = temp_cache("hash-mismatch");
        let (design, _) = DesignGenerator::new(7).build();
        let (other, _) = DesignGenerator::new(8).build();
        let key = cache.put(b"src", &design).unwrap();
        let object = dir.join("objects").join(key.to_hex());
        let forged = atomic_io::frame(&OBJECT_MAGIC, CACHE_VERSION, &encode_design(&other));
        fs::write(&object, forged).unwrap();
        assert!(cache.get(b"src").is_none());
        assert_eq!(cache.stats().quarantined, 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_ref_is_a_quarantined_miss() {
        let (dir, cache) = temp_cache("corrupt-ref");
        let (design, _) = DesignGenerator::new(9).build();
        cache.put(b"src", &design).unwrap();
        let reference = dir.join("refs").join(ContentKey::of(b"src").to_hex());
        let mut bytes = fs::read(&reference).unwrap();
        bytes.truncate(bytes.len() / 2);
        fs::write(&reference, &bytes).unwrap();
        assert!(cache.get(b"src").is_none());
        assert!(!reference.exists());
        assert_eq!(cache.stats().quarantined, 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn stale_container_version_is_a_miss_not_an_error() {
        let (dir, cache) = temp_cache("stale-version");
        let (design, _) = DesignGenerator::new(10).build();
        let key = cache.put(b"src", &design).unwrap();
        let object = dir.join("objects").join(key.to_hex());
        let mut bytes = fs::read(&object).unwrap();
        bytes[8..12].copy_from_slice(&9u32.to_le_bytes());
        fs::write(&object, &bytes).unwrap();
        assert!(cache.get(b"src").is_none());
        assert_eq!(cache.stats().quarantined, 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn distinct_sources_share_one_object_for_equal_designs() {
        let (dir, cache) = temp_cache("dedup");
        let (design, _) = DesignGenerator::new(11).build();
        let k1 = cache.put(b"source one", &design).unwrap();
        let k2 = cache.put(b"source two", &design).unwrap();
        assert_eq!(k1, k2);
        assert_eq!(fs::read_dir(dir.join("objects")).unwrap().count(), 1);
        assert_eq!(fs::read_dir(dir.join("refs")).unwrap().count(), 2);
        assert_eq!(cache.get(b"source one").unwrap(), design);
        assert_eq!(cache.get(b"source two").unwrap(), design);
        let _ = fs::remove_dir_all(dir);
    }
}
