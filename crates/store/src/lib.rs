//! Crash-safe SLIF persistence.
//!
//! Everything the serving stack accumulates — accepted jobs, their
//! results, compiled designs — used to live only in process memory, so a
//! crash lost all acknowledged work and forced every tenant back through
//! cold parse/compile. This crate is the durable layer underneath:
//!
//! * [`Journal`] — a write-ahead job journal: an append-only file of
//!   per-record CRC-checksummed `Accepted`/`Completed`/`Cancelled`
//!   transitions, fsynced before any acknowledgement leaves the process.
//!   Reopening after a crash replays the journal, hands back the jobs
//!   that never reached a terminal state, and truncates at the first
//!   torn or corrupt record — quarantining the damaged tail to a
//!   `.corrupt` sidecar instead of panicking or serving garbage.
//! * [`DesignCache`] — a content-addressed compiled-design cache keyed
//!   by the SHA-256 of a [`canonical`] byte encoding of
//!   [`Design`](slif_core::Design). Repeat traffic for a known spec
//!   skips parse and build entirely. Every read re-hashes the stored
//!   bytes against the key it was filed under, so a verified hit is
//!   *bit-identical* to the design that was cached; any mismatch is a
//!   miss plus a quarantine, never an error surfaced to a client.
//! * [`canonical`] — the deterministic `Design` encoding itself:
//!   interned-name table, fixed field order, exact round-trip
//!   (`decode(encode(d)) == d`).
//!
//! All file writes go through
//! [`slif_core::atomic_io`](slif_core::atomic_io) (temp file → fsync →
//! rename) or are appends followed by an fsync, so no crash can leave a
//! half-written blob under a live name. All reads verify magic, version,
//! and checksum before a single payload byte is decoded; corruption of
//! any kind surfaces as a typed [`StoreError`] or as a counted cache
//! miss.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::expect_used)]

pub mod cache;
pub mod canonical;
pub mod codec;
pub mod compiled;
mod error;
pub mod journal;
pub mod sha256;

pub use cache::{CacheStats, DesignCache};
pub use canonical::{decode_design, encode_design};
pub use compiled::{decode_compiled, encode_compiled};
pub use error::StoreError;
pub use journal::{Journal, JobRecord, PendingJob, RecoveryReport};
pub use sha256::ContentKey;
