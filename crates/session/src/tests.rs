//! Session-level bit-identity: whatever path an edit takes through the
//! tiers, the session's design, estimate, and lint reports must be `==`
//! to a cold rebuild of the current text.

use crate::{EditDelta, EditError, EditSession, RecomputeTier, SessionConfig};
use proptest::prelude::*;
use slif_analyze::{analyze_with_sources, AnalysisReport};
use slif_core::Design;
use slif_estimate::DesignReport;
use slif_frontend::{all_software_partition, build_design, try_allocate_proc_asic};
use slif_speclang::{parse_partial_with_limits, resolve, SourceMap};

const BASE: &str = concat!(
    "system Demo;\n",
    "port in1 : in int<8>;\n",
    "const K = 4;\n",
    "var shared : int<8>;\n",
    "func Helper(x : int<8>) -> int<8> {\n",
    "  return x + K;\n",
    "}\n",
    "process Main {\n",
    "  var t : int<8>;\n",
    "  t = Helper(in1);\n",
    "  shared = t;\n",
    "  wait 5;\n",
    "}\n",
    "process Aux {\n",
    "  shared = 0;\n",
    "  wait 9;\n",
    "}\n",
);

/// The from-scratch pipeline the session must be indistinguishable
/// from: parse, resolve, build (uncached), allocate, estimate, lint.
fn cold(
    source: &str,
    config: &SessionConfig,
) -> Option<(Design, DesignReport, AnalysisReport)> {
    let (spec, diags) = parse_partial_with_limits(source, &config.parse_limits);
    if !diags.is_empty() {
        return None;
    }
    let rs = resolve(spec).ok()?;
    let mut design = build_design(&rs, &config.library);
    let arch = try_allocate_proc_asic(&mut design).ok()?;
    let partition = all_software_partition(&design, arch);
    let estimate = DesignReport::compute_with(&design, &partition, config.estimator).ok()?;
    let analysis = analyze_with_sources(
        &design,
        Some(&partition),
        &config.analysis,
        &SourceMap::from_spec(rs.spec()),
    );
    Some((design, estimate, analysis))
}

/// Asserts the session's state matches a cold rebuild of its text.
fn assert_matches_cold(session: &EditSession, config: &SessionConfig, what: &str) {
    match cold(session.source(), config) {
        Some((design, estimate, analysis)) => {
            assert!(
                session.is_clean(),
                "{what}: cold pipeline succeeded but session is broken: {:?}",
                session.diagnostics()
            );
            assert_eq!(session.design(), Some(&design), "{what}: design diverged");
            assert_eq!(
                session.estimate(),
                Some(&estimate),
                "{what}: estimate diverged"
            );
            assert_eq!(
                session.analysis(),
                Some(&analysis),
                "{what}: analysis diverged"
            );
        }
        None => assert!(
            !session.is_clean(),
            "{what}: cold pipeline failed but session claims clean"
        ),
    }
}

#[test]
fn open_runs_the_full_pipeline() {
    let config = SessionConfig::default();
    let (session, update) = EditSession::open(BASE, config.clone());
    assert!(update.clean);
    assert_eq!(update.revision, 0);
    assert_eq!(update.tier, RecomputeTier::Recompiled);
    assert!(update.estimate.is_some());
    assert!(update.analysis.is_some());
    assert_matches_cold(&session, &config, "open");
}

#[test]
fn body_edit_takes_the_patch_tier() {
    let config = SessionConfig::default();
    let (mut session, _) = EditSession::open(BASE, config.clone());
    // `x + K` -> `x * K`: same accesses, different ict weight (a
    // multiply costs more cycles), so the topology holds but Helper's
    // annotation row — and every memo depending on it — goes dirty.
    let at = BASE.find("x + K").unwrap() + 2;
    let update = session.apply_edit(&EditDelta::new(at, at + 1, "*")).unwrap();
    assert!(update.clean);
    assert_eq!(update.revision, 1);
    assert_eq!(update.tier, RecomputeTier::Patched, "operator edit keeps topology");
    assert!(update.dirty_nodes >= 1, "the edited behavior must be dirty");
    assert!(
        matches!(update.scope, slif_speclang::ReparseScope::Region { .. }),
        "a body edit reparses one item, got {:?}",
        update.scope
    );
    assert_eq!(session.full_rebuilds(), 1, "only the open was cold");
    assert_matches_cold(&session, &config, "body edit");
}

#[test]
fn structural_edit_recompiles_cold() {
    let config = SessionConfig::default();
    let (mut session, _) = EditSession::open(BASE, config.clone());
    let update = session
        .apply_edit(&EditDelta::new(
            BASE.len(),
            BASE.len(),
            "process Extra {\n  shared = 1;\n  wait 3;\n}\n",
        ))
        .unwrap();
    assert!(update.clean);
    assert_eq!(update.tier, RecomputeTier::Recompiled, "new node changes topology");
    assert_eq!(session.full_rebuilds(), 2);
    assert_matches_cold(&session, &config, "structural edit");
}

#[test]
fn breaking_edit_defers_and_keeps_stale_reports() {
    let config = SessionConfig::default();
    let (mut session, open_update) = EditSession::open(BASE, config.clone());
    let at = BASE.find("process Main").unwrap();
    let update = session.apply_edit(&EditDelta::new(at, at, "{")).unwrap();
    assert!(!update.clean);
    assert_eq!(update.tier, RecomputeTier::Deferred);
    assert!(!update.diagnostics.is_empty());
    // The last good reports stay visible while the text is broken.
    assert_eq!(update.estimate, open_update.estimate);
    assert_eq!(update.analysis, open_update.analysis);

    // Fixing the text recovers without a cold estimator rebuild: the
    // repaired text is annotation-identical to the last good revision.
    let update = session.apply_edit(&EditDelta::new(at, at + 1, "")).unwrap();
    assert!(update.clean, "{:?}", update.diagnostics);
    assert_eq!(update.tier, RecomputeTier::Patched);
    assert_matches_cold(&session, &config, "after fix");
}

#[test]
fn resolve_errors_are_deferred_but_reparse_stays_incremental() {
    let config = SessionConfig::default();
    let (mut session, _) = EditSession::open(BASE, config.clone());
    // `shared = undefined_name;` parses fine but fails resolution.
    let at = BASE.find("shared = 0;").unwrap();
    let update = session
        .apply_edit(&EditDelta::new(at, at + "shared = 0;".len(), "shared = nosuch;"))
        .unwrap();
    assert!(!update.clean);
    assert_eq!(update.tier, RecomputeTier::Deferred);
    assert!(
        update.diagnostics.iter().any(|d| d.contains("nosuch")),
        "{:?}",
        update.diagnostics
    );
    // The parse itself was clean, so the next edit may use the
    // dirty-region path rather than a from-scratch parse.
    let fix = session
        .apply_edit(&EditDelta::new(at, at + "shared = nosuch;".len(), "shared = 0;"))
        .unwrap();
    assert!(fix.clean);
    assert!(
        matches!(fix.scope, slif_speclang::ReparseScope::Region { .. }),
        "got {:?}",
        fix.scope
    );
    assert_matches_cold(&session, &config, "after resolve fix");
}

#[test]
fn invalid_deltas_leave_the_session_untouched() {
    let (mut session, _) = EditSession::open(BASE, SessionConfig::default());
    let before_rev = session.revision();
    let err = session
        .apply_edit(&EditDelta::new(5, BASE.len() + 10, "x"))
        .unwrap_err();
    assert!(matches!(err, EditError::OutOfBounds { .. }));
    assert_eq!(session.revision(), before_rev);
    assert_eq!(session.source(), BASE);
    assert!(session.is_clean());
}

#[test]
fn open_on_broken_text_recovers_on_first_fix() {
    let config = SessionConfig::default();
    let broken = "system T;\nprocess Main { wait 5;\n"; // missing brace
    let (mut session, update) = EditSession::open(broken, config.clone());
    assert!(!update.clean);
    assert!(update.estimate.is_none(), "no good revision yet");
    let update = session
        .apply_edit(&EditDelta::new(broken.len(), broken.len(), "}\n"))
        .unwrap();
    assert!(update.clean, "{:?}", update.diagnostics);
    assert_eq!(update.tier, RecomputeTier::Recompiled);
    assert_matches_cold(&session, &config, "first clean revision");
}

#[test]
fn corpus_specs_open_and_edit_cleanly() {
    let config = SessionConfig::default();
    for entry in slif_speclang::corpus::all() {
        let (mut session, update) = EditSession::open(entry.source, config.clone());
        assert!(update.clean, "{}: {:?}", entry.name, update.diagnostics);
        assert_matches_cold(&session, &config, entry.name);
        // Append a comment: a no-op for every derived product.
        let end = session.source().len();
        let update = session
            .apply_edit(&EditDelta::new(end, end, "// trailing note\n"))
            .unwrap();
        assert!(update.clean);
        assert_eq!(update.tier, RecomputeTier::Patched, "{}", entry.name);
        assert_eq!(update.dirty_nodes, 0, "{}: comment dirtied nodes", entry.name);
        assert_matches_cold(&session, &config, entry.name);
    }
}

/// A tiny deterministic RNG (xorshift64*), mirroring the speclang
/// incremental suite so edit sequences are reproducible from a seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn random_edit_sequences_match_cold_rebuild(seed in 0u64..10_000) {
        let config = SessionConfig::default();
        let (mut session, _) = EditSession::open(BASE, config.clone());
        let mut rng = Rng(seed ^ 0x5e55_1011);
        // Inserts skew toward valid fragments so a useful share of the
        // walk is clean; the braces guarantee broken interludes.
        const INSERTS: &[&str] = &[
            "z",
            "\n",
            " ",
            "{",
            "}",
            "wait 3;\n",
            "shared = 1;\n",
            "var extra : int<8>;\n",
            "process P9 {\n  shared = 2;\n  wait 2;\n}\n",
            "// note\n",
        ];
        for step in 0..60 {
            let len = session.source().len();
            let delta = if rng.below(3) == 0 && len > 2 {
                // Delete a short range (ASCII fixture: every offset is a
                // char boundary).
                let start = rng.below(len - 1);
                let span = 1 + rng.below(3.min(len - start - 1).max(1));
                EditDelta::new(start, (start + span).min(len), "")
            } else {
                let at = rng.below(len + 1);
                EditDelta::new(at, at, INSERTS[rng.below(INSERTS.len())])
            };
            let update = session.apply_edit(&delta).expect("in-bounds ASCII edit");
            assert_eq!(update.revision, session.revision());
            assert_matches_cold(&session, &config, &format!("seed {seed} step {step}"));
        }
    }
}
