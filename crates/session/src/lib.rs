//! # slif-session — incremental edit sessions over the SLIF pipeline
//!
//! The paper's interactivity claim is that SLIF makes estimation fast
//! enough "for interactive system design". An interactive tool does not
//! re-run the whole pipeline per keystroke: it holds the pipeline state
//! — source text, AST, annotated design, compiled view, estimator memos,
//! lint report — and recomputes only the slice an edit invalidates.
//!
//! [`EditSession`] is that handle. [`EditSession::apply_edit`] takes a
//! byte-range [`EditDelta`] and routes it down the cheapest sound path:
//!
//! 1. **Parse** — dirty-region reparse
//!    ([`reparse_with_edit`](slif_speclang::reparse_with_edit)): only the
//!    top-level items the edit touches are re-lexed and re-parsed,
//!    downstream spans are rebased.
//! 2. **Build** — per-behavior construction cache
//!    ([`BuildCache`](slif_frontend::BuildCache)): only behaviors whose
//!    declarations changed are re-lowered, re-compiled, re-synthesized.
//! 3. **Estimate** — annotation patch
//!    ([`rebase_annotations`](IncrementalEstimator::rebase_annotations)):
//!    when the edit left the graph topology intact, the compiled view is
//!    patched in place and only memo entries depending on dirty nodes
//!    recompute; a topology change falls back to a cold compile.
//! 4. **Lint** — the analyzer re-runs over the patched compiled view
//!    with spans re-attached from the rebased [`SourceMap`].
//!
//! Whatever the path, the state after `apply_edit` is **bit-identical**
//! to rebuilding cold from the final text — the property suite holds the
//! session to `==` on the design, the estimate report, and the analysis
//! report.
//!
//! Broken text is a first-class state, not an error: an edit that breaks
//! the parse (or resolution) keeps the last good reports available for
//! display, and the session recovers incrementally once an edit makes
//! the text clean again.
//!
//! # Examples
//!
//! ```
//! use slif_session::{EditDelta, EditSession, SessionConfig};
//!
//! let src = "system T;\nvar x : int<8>;\nprocess Main { x = x + 1; wait 10; }\n";
//! let (mut session, update) = EditSession::open(src, SessionConfig::default());
//! assert!(update.clean);
//!
//! // Edit the wait: only Main's slice recomputes.
//! let at = src.find("10").unwrap();
//! let update = session.apply_edit(&EditDelta::new(at, at + 2, "25"))?;
//! assert!(update.clean);
//! assert!(session.estimate().is_some());
//! # Ok::<(), slif_session::EditError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Sessions sit behind a server: every degenerate input must surface as
// data (diagnostics, stale state), never a panic.
#![warn(clippy::expect_used)]
#![warn(clippy::unwrap_used)]

use slif_analyze::{
    analyze_compiled_memoized_with_flow, AnalysisConfig, AnalysisDirt, AnalysisMemo,
    AnalysisReport,
};
use slif_core::{CompiledDesign, Design, Partition};
use slif_estimate::{DesignReport, EstimatorConfig, IncrementalEstimator};
use slif_frontend::{
    all_software_partition, build_design_cached, try_allocate_proc_asic, try_patch_design,
    BuildCache, BuildOptions,
};
use slif_speclang::{
    parse_partial_with_limits, try_resolve, Diagnostic, FlowProgram, ParseLimits, Reparse,
    ReparseScope, ResolvedSpec, SourceMap, Spec,
};
use slif_techlib::TechnologyLibrary;

pub use slif_speclang::{EditDelta, EditError};

/// Everything an [`EditSession`] pins for its lifetime: parser caps, the
/// technology library, and the estimator/analyzer configurations. All
/// recomputation happens under these exact settings, which is what makes
/// warm results comparable to cold ones.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Caps on specification source (bytes, tokens, nesting depth).
    pub parse_limits: ParseLimits,
    /// The technology library designs are built against.
    pub library: TechnologyLibrary,
    /// The estimator configuration.
    pub estimator: EstimatorConfig,
    /// Per-lint levels and thresholds.
    pub analysis: AnalysisConfig,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            parse_limits: ParseLimits::default(),
            library: TechnologyLibrary::proc_asic(),
            estimator: EstimatorConfig::default(),
            analysis: AnalysisConfig::new(),
        }
    }
}

/// Which recompute path an edit took, cheapest to most expensive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecomputeTier {
    /// The text is broken (parse or resolution diagnostics): pipeline
    /// state was left at the last good revision, nothing recomputed.
    Deferred,
    /// Topology unchanged: the compiled view was patched in place and
    /// only memo entries depending on dirty nodes recomputed.
    Patched,
    /// Topology changed (or there was no prior state): the design was
    /// recompiled and the estimator rebuilt cold. The build-level
    /// behavior cache still applies.
    Recompiled,
}

/// What one [`EditSession::apply_edit`] (or [`EditSession::open`]) did
/// and produced. Reports are clones of the session's current state:
/// stale-but-displayable when `clean` is false.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SessionUpdate {
    /// Monotonic revision of the session's text, starting at 0.
    pub revision: u64,
    /// Whether the current text parses and resolves cleanly.
    pub clean: bool,
    /// The recompute path taken.
    pub tier: RecomputeTier,
    /// How much of the document was re-lexed/re-parsed.
    pub scope: ReparseScope,
    /// Estimator nodes invalidated by the edit (0 for cold rebuilds and
    /// deferred updates).
    pub dirty_nodes: usize,
    /// Rendered parse/resolution diagnostics (empty when `clean`).
    pub diagnostics: Vec<String>,
    /// The estimate report for the last *clean* revision, if any.
    pub estimate: Option<DesignReport>,
    /// The lint report for the last *clean* revision, if any.
    pub analysis: Option<AnalysisReport>,
}

/// Pipeline state of the last clean revision.
#[derive(Debug)]
struct GoodState {
    design: Design,
    partition: Partition,
    estimator: IncrementalEstimator<'static>,
    estimate: DesignReport,
    analysis: AnalysisReport,
    /// Per-pass lint cache; sliced by the annotation delta on warm edits.
    memo: AnalysisMemo,
}

/// A long-lived handle over one evolving specification and every derived
/// pipeline product. See the crate docs for the recompute tiers.
#[derive(Debug)]
pub struct EditSession {
    config: SessionConfig,
    source: String,
    revision: u64,
    /// AST of the current text when its *parse* is clean (resolution may
    /// still have failed) — the precondition for dirty-region reparse.
    parsed: Option<Spec>,
    /// Current parse/resolution diagnostics (empty iff clean).
    diagnostics: Vec<Diagnostic>,
    good: Option<GoodState>,
    cache: BuildCache,
    /// Edits that took the cold path, for operational metrics.
    full_rebuilds: u64,
}

impl EditSession {
    /// Opens a session over `source`, running the full pipeline once.
    /// Broken text is accepted: the session opens with diagnostics and
    /// no reports, and recovers when an edit fixes the text.
    pub fn open(source: impl Into<String>, config: SessionConfig) -> (Self, SessionUpdate) {
        let source = source.into();
        let (spec, diags) = parse_partial_with_limits(&source, &config.parse_limits);
        let mut session = Self {
            config,
            source: String::new(),
            revision: 0,
            parsed: None,
            diagnostics: Vec::new(),
            good: None,
            cache: BuildCache::new(),
            full_rebuilds: 0,
        };
        let update = session.ingest(source, spec, diags, ReparseScope::Full);
        (session, update)
    }

    /// The current text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Monotonic revision counter: 0 at open, +1 per applied edit.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Whether the current text parses and resolves cleanly.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Current parse/resolution diagnostics (empty when clean).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// The estimate report for the last clean revision.
    pub fn estimate(&self) -> Option<&DesignReport> {
        self.good.as_ref().map(|g| &g.estimate)
    }

    /// The lint report for the last clean revision.
    pub fn analysis(&self) -> Option<&AnalysisReport> {
        self.good.as_ref().map(|g| &g.analysis)
    }

    /// The annotated design of the last clean revision.
    pub fn design(&self) -> Option<&Design> {
        self.good.as_ref().map(|g| &g.design)
    }

    /// The all-software partition of the last clean revision.
    pub fn partition(&self) -> Option<&Partition> {
        self.good.as_ref().map(|g| &g.partition)
    }

    /// Edits (including the open) that rebuilt the estimator cold.
    pub fn full_rebuilds(&self) -> u64 {
        self.full_rebuilds
    }

    /// Applies one text edit and recomputes the affected slice.
    ///
    /// # Errors
    ///
    /// [`EditError`] when the delta's byte range is out of bounds or
    /// splits a UTF-8 character. The session is unchanged by such an
    /// edit — the revision does not advance.
    pub fn apply_edit(&mut self, delta: &EditDelta) -> Result<SessionUpdate, EditError> {
        let reparse = match self.parsed.take() {
            Some(spec) => {
                // The owned reparse moves untouched declarations into
                // the new AST instead of cloning the document.
                let r = slif_speclang::reparse_with_edit_owned(
                    &self.source,
                    spec,
                    delta,
                    &self.config.parse_limits,
                );
                match r {
                    Ok(reparse) => reparse,
                    Err((spec, e)) => {
                        self.parsed = Some(spec);
                        return Err(e);
                    }
                }
            }
            // Broken document: no clean AST to reparse against, so
            // splice and parse from scratch.
            None => {
                let source = delta.apply(&self.source)?;
                let (spec, diags) = parse_partial_with_limits(&source, &self.config.parse_limits);
                Reparse {
                    source,
                    spec,
                    diags,
                    scope: ReparseScope::Full,
                }
            }
        };
        self.revision += 1;
        let Reparse {
            source,
            spec,
            diags,
            scope,
        } = reparse;
        Ok(self.ingest(source, spec, diags, scope))
    }

    /// Installs a reparsed revision: records text/AST/diagnostics, then
    /// pushes clean revisions down the pipeline.
    fn ingest(
        &mut self,
        source: String,
        spec: Spec,
        diags: Vec<Diagnostic>,
        scope: ReparseScope,
    ) -> SessionUpdate {
        // Whether the *previous* revision was clean and built: the
        // precondition for the in-place patch path, whose region-derived
        // dirty set only covers this one edit. After a broken revision
        // the accumulated changes are unknown, so the build-cache path
        // (which re-checks every behavior) takes over.
        let prev_good = self.diagnostics.is_empty() && self.good.is_some();
        self.source = source;
        if !diags.is_empty() {
            self.parsed = None;
            self.diagnostics = diags;
            return self.update(RecomputeTier::Deferred, scope, 0);
        }
        // `try_resolve` hands the AST back on failure, so the session
        // keeps its reparse seed without cloning a whole spec per edit
        // (the clone was the single largest warm-path cost at 1k nodes).
        let resolved = match try_resolve(spec) {
            Ok(rs) => rs,
            Err((spec, e)) => {
                self.parsed = Some(spec);
                self.diagnostics = e.diagnostics().to_vec();
                return self.update(RecomputeTier::Deferred, scope, 0);
            }
        };
        self.diagnostics.clear();
        let update = self.recompute(&resolved, scope, prev_good);
        self.parsed = Some(resolved.into_spec());
        update
    }

    /// The post-resolution half of [`ingest`](Self::ingest): fast-path
    /// dispatch, cold rebuild, pipeline routing.
    fn recompute(
        &mut self,
        resolved: &ResolvedSpec,
        scope: ReparseScope,
        prev_good: bool,
    ) -> SessionUpdate {
        // Fast path: a region-confined edit over a warm clean session
        // patches the existing design in place — no rebuild, no
        // re-allocation, no partition rebuild, per-pass lint slicing.
        if let ReparseScope::Region { start, end } = scope {
            if prev_good {
                match self.patch_slice(resolved, start, end) {
                    Some(Ok(dirty_nodes)) => {
                        return self.update(RecomputeTier::Patched, scope, dirty_nodes);
                    }
                    Some(Err(e)) => {
                        self.good = None;
                        self.diagnostics = vec![Diagnostic::new(
                            slif_speclang::Span::dummy(),
                            format!("estimation failed: {e}"),
                        )];
                        return self.update(RecomputeTier::Deferred, scope, 0);
                    }
                    None => {} // not patchable: fall through to the rebuild
                }
            }
        }

        let mut design = build_design_cached(
            resolved,
            &self.config.library,
            &BuildOptions::default(),
            &mut self.cache,
        );
        let arch = match try_allocate_proc_asic(&mut design) {
            Ok(arch) => arch,
            Err(e) => {
                // An incomplete library cannot estimate anything; treat
                // it like a diagnostic rather than poisoning the session.
                self.diagnostics = vec![Diagnostic::new(
                    slif_speclang::Span::dummy(),
                    e.to_string(),
                )];
                return self.update(RecomputeTier::Deferred, scope, 0);
            }
        };
        let partition = all_software_partition(&design, arch);
        let sources = SourceMap::from_spec(resolved.spec());
        let flow = FlowProgram::from_spec(resolved.spec());

        match self.pipeline(design, partition, &sources, &flow) {
            Ok((tier, dirty_nodes)) => self.update(tier, scope, dirty_nodes),
            Err(e) => {
                // A design the estimator rejects outright (e.g. a weight
                // overflow the library cannot express) leaves the session
                // report-less but alive, like broken text does.
                self.good = None;
                self.diagnostics = vec![Diagnostic::new(
                    slif_speclang::Span::dummy(),
                    format!("estimation failed: {e}"),
                )];
                self.update(RecomputeTier::Deferred, scope, 0)
            }
        }
    }

    /// The in-place recompute slice for an edit whose reparse was
    /// confined to `[start, end)` of the new source and whose previous
    /// revision was clean. Returns `None` when the edit is not
    /// patchable (the caller rebuilds through the cache), `Some(Err)`
    /// when re-estimation itself failed, and `Some(Ok(dirty_nodes))` on
    /// success.
    fn patch_slice(
        &mut self,
        resolved: &ResolvedSpec,
        start: usize,
        end: usize,
    ) -> Option<Result<usize, slif_core::CoreError>> {
        let g = self.good.as_mut()?;
        let spec = resolved.spec();
        let candidates = region_candidates(spec, start, end)?;
        try_patch_design(
            resolved,
            &self.config.library,
            &BuildOptions::default(),
            &mut self.cache,
            &mut g.design,
            &candidates,
        )?;
        // The patch holds topology invariant by construction, so the
        // rebase cannot reject it; treat a rejection as "not patchable"
        // anyway — the rebuild path recomputes everything from scratch.
        let delta = g.estimator.rebase_annotations_delta(&g.design).ok()?;
        let lint_cfg = self.config.analysis;
        Some((|| {
            // An annotation-neutral edit (renamed constant, comment,
            // equal-weight operator swap) leaves every estimator memo
            // valid: the reports are already current.
            if !delta.is_empty() {
                g.estimate = DesignReport::compute_from_incremental(&g.design, &mut g.estimator)?;
            }
            // The edit re-lowered the flow program, so the flow passes
            // are always marked stale — the per-behavior solve cache
            // inside the memo re-solves only behaviors whose structure
            // actually changed, and re-materializes moved spans for the
            // rest.
            let flow = FlowProgram::from_spec(spec);
            let mut dirt = AnalysisDirt::from(&delta);
            dirt.flow = true;
            // The span map costs O(decls) to build but only findings
            // anchored to a node consume it, and most edits lint clean.
            // Assemble span-less first; rebuild with real spans (memo
            // warm, so only re-assembly) when something needs them.
            let empty = SourceMap::default();
            let analysis = analyze_compiled_memoized_with_flow(
                g.estimator.compiled(),
                Some(&g.partition),
                &lint_cfg,
                &empty,
                Some(&flow),
                &mut g.memo,
                &dirt,
            );
            g.analysis = if analysis.findings().iter().any(|f| f.node.is_some()) {
                let sources = SourceMap::from_spec(spec);
                analyze_compiled_memoized_with_flow(
                    g.estimator.compiled(),
                    Some(&g.partition),
                    &lint_cfg,
                    &sources,
                    Some(&flow),
                    &mut g.memo,
                    &AnalysisDirt::none(),
                )
            } else {
                analysis
            };
            Ok(delta.dirty_nodes.len())
        })())
    }

    /// Tier routing below the frontend: patch the warm estimator when
    /// the topology held, rebuild it cold when it did not (or there is
    /// no prior state), then refresh the estimate and lint reports.
    fn pipeline(
        &mut self,
        design: Design,
        partition: Partition,
        sources: &SourceMap,
        flow: &FlowProgram,
    ) -> Result<(RecomputeTier, usize), slif_core::CoreError> {
        let (est_cfg, lint_cfg) = (self.config.estimator, self.config.analysis);
        if let Some(g) = self.good.as_mut() {
            if let Ok(delta) = g.estimator.rebase_annotations_delta(&design) {
                g.design = design;
                g.partition = partition;
                g.estimate = DesignReport::compute_from_incremental(&g.design, &mut g.estimator)?;
                // The rebase verified topology identity and the fresh
                // all-software partition assigns it identically, so the
                // lint memo slices by the annotation delta — plus the
                // flow flag, because this revision's flow program was
                // re-lowered (spans at least may have moved).
                let mut dirt = AnalysisDirt::from(&delta);
                dirt.flow = true;
                g.analysis = analyze_compiled_memoized_with_flow(
                    g.estimator.compiled(),
                    Some(&g.partition),
                    &lint_cfg,
                    sources,
                    Some(flow),
                    &mut g.memo,
                    &dirt,
                );
                return Ok((RecomputeTier::Patched, delta.dirty_nodes.len()));
            }
        }
        let cd = CompiledDesign::compile(&design);
        let mut estimator =
            IncrementalEstimator::from_owned_compiled(cd, partition.clone(), est_cfg)?;
        let estimate = DesignReport::compute_from_incremental(&design, &mut estimator)?;
        let mut memo = AnalysisMemo::new();
        let analysis = analyze_compiled_memoized_with_flow(
            estimator.compiled(),
            Some(&partition),
            &lint_cfg,
            sources,
            Some(flow),
            &mut memo,
            &AnalysisDirt::all(),
        );
        self.full_rebuilds += 1;
        self.good = Some(GoodState {
            design,
            partition,
            estimator,
            estimate,
            analysis,
            memo,
        });
        Ok((RecomputeTier::Recompiled, 0))
    }

    fn update(&self, tier: RecomputeTier, scope: ReparseScope, dirty_nodes: usize) -> SessionUpdate {
        SessionUpdate {
            revision: self.revision,
            clean: self.diagnostics.is_empty(),
            tier,
            scope,
            dirty_nodes,
            diagnostics: self.diagnostics.iter().map(ToString::to_string).collect(),
            estimate: self.estimate().cloned(),
            analysis: self.analysis().cloned(),
        }
    }
}

/// The behaviors a region-confined reparse may have rewritten: those
/// whose span intersects `[start, end)` of the *new* source (the splice
/// guarantees text outside the region is byte-identical to the previous
/// revision). Returns `None` when a port, const, or var declaration
/// intersects the region — those feed signatures and channel widths
/// everywhere, so the edit is not behavior-local.
fn region_candidates(spec: &Spec, start: usize, end: usize) -> Option<Vec<usize>> {
    let hits = |s: slif_speclang::Span| s.start < end && s.end > start;
    if spec.ports.iter().any(|p| hits(p.span))
        || spec.consts.iter().any(|c| hits(c.span))
        || spec.vars.iter().any(|v| hits(v.span))
    {
        return None;
    }
    Some(
        spec.behaviors
            .iter()
            .enumerate()
            .filter(|(_, b)| hits(b.span))
            .map(|(i, _)| i)
            .collect(),
    )
}

/// A shared, lockable [`EditSession`] — the form a session takes when it
/// crosses a job queue or sits in a server-side registry.
///
/// Equality (needed so job outputs stay comparable) is *state* equality:
/// two handles are equal when they are the same session, or when their
/// sessions hold the same text at the same revision with the same
/// cleanliness — which is exactly what "the same job produced them"
/// means. Lock poisoning is absorbed: a panicked writer leaves the last
/// consistent state readable.
#[derive(Debug, Clone)]
pub struct SessionHandle(std::sync::Arc<std::sync::Mutex<EditSession>>);

impl SessionHandle {
    /// Wraps a session for sharing.
    pub fn new(session: EditSession) -> Self {
        Self(std::sync::Arc::new(std::sync::Mutex::new(session)))
    }

    /// Locks the session, recovering from poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, EditSession> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl PartialEq for SessionHandle {
    fn eq(&self, other: &Self) -> bool {
        if std::sync::Arc::ptr_eq(&self.0, &other.0) {
            return true;
        }
        let (a, b) = (self.lock(), other.lock());
        a.revision() == b.revision() && a.is_clean() == b.is_clean() && a.source() == b.source()
    }
}

#[cfg(test)]
mod tests;
