//! Property tests: every `CompiledDesign` CSR query is element-for-element
//! equal to the `AccessGraph` walk it replaces.
//!
//! The compiled view is a pure read-model — if any query can disagree with
//! the graph it was compiled from, estimation silently diverges between
//! the compiled and uncompiled paths. These properties pin the exact
//! contract: same elements, same order, for every node of randomly
//! generated designs.

use proptest::prelude::*;
use slif_core::gen::DesignGenerator;
use slif_core::{ChannelId, CompiledDesign, Design, NodeId};

fn generated(seed: u64) -> Design {
    // Vary the shape with the seed so the CSR offsets see degenerate
    // (empty adjacency) and dense rows alike.
    let behaviors = 3 + (seed % 37) as usize;
    let variables = 1 + (seed % 23) as usize;
    DesignGenerator::new(seed)
        .behaviors(behaviors)
        .variables(variables)
        .processors(1 + (seed % 4) as usize)
        .memories((seed % 3) as usize)
        .buses(1 + (seed % 3) as usize)
        .build()
        .0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `channels_of` (outgoing CSR row) matches the graph's iterator for
    /// every node.
    #[test]
    fn channels_of_matches_graph(seed in 0u64..5000) {
        let design = generated(seed);
        let cd = CompiledDesign::compile(&design);
        for n in design.graph().node_ids() {
            let graph: Vec<ChannelId> = design.graph().channels_of(n).collect();
            prop_assert_eq!(cd.channels_of(n), &graph[..], "node {:?}", n);
        }
    }

    /// `accessors_of` (incoming CSR row) matches the graph's iterator for
    /// every node.
    #[test]
    fn accessors_of_matches_graph(seed in 0u64..5000) {
        let design = generated(seed);
        let cd = CompiledDesign::compile(&design);
        for n in design.graph().node_ids() {
            let graph: Vec<ChannelId> = design.graph().accessors_of(n).collect();
            prop_assert_eq!(cd.accessors_of(n), &graph[..], "node {:?}", n);
        }
    }

    /// `dependents_of` (reverse reachability) matches the graph walk for
    /// every node — same set in the same traversal order.
    #[test]
    fn dependents_of_matches_graph(seed in 0u64..5000) {
        let design = generated(seed);
        let cd = CompiledDesign::compile(&design);
        for n in design.graph().node_ids() {
            let graph: Vec<NodeId> = design.graph().dependents_of(n);
            prop_assert_eq!(cd.dependents_of(n), graph, "node {:?}", n);
        }
    }

    /// The precomputed bottom-up behavior order equals the graph's
    /// on-demand traversal.
    #[test]
    fn behaviors_bottom_up_matches_graph(seed in 0u64..5000) {
        let design = generated(seed);
        let cd = CompiledDesign::compile(&design);
        let graph = design.graph().behaviors_bottom_up().expect("generated designs are acyclic");
        prop_assert_eq!(cd.behaviors_bottom_up().expect("compiled from acyclic graph"), &graph[..]);
    }

    /// Default-shape designs (no explicit sizing) compile to equal views
    /// too — guards the generator's default path.
    #[test]
    fn default_designs_compile_faithfully(seed in 0u64..5000) {
        let design = DesignGenerator::new(seed).build().0;
        let cd = CompiledDesign::compile(&design);
        for n in design.graph().node_ids() {
            let out: Vec<ChannelId> = design.graph().channels_of(n).collect();
            let inc: Vec<ChannelId> = design.graph().accessors_of(n).collect();
            prop_assert_eq!(cd.channels_of(n), &out[..]);
            prop_assert_eq!(cd.accessors_of(n), &inc[..]);
        }
    }
}
