//! Preprocessed annotations carried by SLIF objects.
//!
//! Section 2.4 of the paper annotates the basic format with everything the
//! estimators of Section 3 need so that estimation becomes lookups and sums:
//!
//! * channels carry an access frequency ([`AccessFreq`]) and a per-access
//!   bit count,
//! * behavior/variable nodes carry an `ict_list` and a `size_list` — one
//!   weight per component *class* the node could be implemented on
//!   ([`WeightList`]),
//! * same-source channels that may be exercised concurrently (fork/join, or
//!   parallelism discovered by scheduling the behavior contents) share a
//!   [`ConcurrencyTag`].

use crate::ids::ClassId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of accesses a channel sees during one start-to-finish execution of
/// its source behavior.
///
/// The paper annotates the *average* count (derived from a branch
/// probability file) plus optional maximum and minimum counts. Averages can
/// be fractional: an access guarded by a 50 %-probability branch inside a
/// two-iteration loop has `avg == 1.0`.
///
/// # Examples
///
/// ```
/// use slif_core::AccessFreq;
///
/// let f = AccessFreq::new(65.0, 0, 130);
/// assert_eq!(f.avg, 65.0);
/// assert!(f.is_consistent());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessFreq {
    /// Average number of accesses per source execution.
    pub avg: f64,
    /// Minimum number of accesses per source execution.
    pub min: u64,
    /// Maximum number of accesses per source execution.
    pub max: u64,
}

impl AccessFreq {
    /// Creates a frequency annotation from average, minimum, and maximum
    /// access counts.
    pub fn new(avg: f64, min: u64, max: u64) -> Self {
        Self { avg, min, max }
    }

    /// Creates a frequency whose minimum, average, and maximum all equal
    /// `n` — an unconditional access.
    pub fn exact(n: u64) -> Self {
        Self {
            avg: n as f64,
            min: n,
            max: n,
        }
    }

    /// Returns `true` when `min <= avg <= max` and `avg` is finite and
    /// non-negative.
    pub fn is_consistent(&self) -> bool {
        self.avg.is_finite()
            && self.avg >= 0.0
            && (self.min as f64) <= self.avg + 1e-9
            && self.avg <= self.max as f64 + 1e-9
    }

    /// Returns the count for the requested estimation mode.
    pub fn for_mode(&self, mode: FreqMode) -> f64 {
        match mode {
            FreqMode::Average => self.avg,
            FreqMode::Min => self.min as f64,
            FreqMode::Max => self.max as f64,
        }
    }
}

impl Default for AccessFreq {
    fn default() -> Self {
        Self::exact(1)
    }
}

impl fmt::Display for AccessFreq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}, {}]", self.avg, self.min, self.max)
    }
}

/// Which of the three recorded access counts an estimator should use.
///
/// The paper presents equations for average metrics and notes "simple
/// extensions for maximum and minimum performance"; this enum selects among
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FreqMode {
    /// Use average access counts (the paper's default).
    #[default]
    Average,
    /// Use minimum access counts (best-case performance).
    Min,
    /// Use maximum access counts (worst-case performance).
    Max,
}

impl fmt::Display for FreqMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FreqMode::Average => "average",
            FreqMode::Min => "min",
            FreqMode::Max => "max",
        };
        f.write_str(s)
    }
}

/// Concurrency tag associated with a channel.
///
/// Same-source channels bearing the same tag "could be accessed
/// concurrently" (Section 2.3): either because the specification used a
/// fork/join construct, or because scheduling the behavior contents showed
/// the accesses to be overlappable. `ConcurrencyTag::SEQUENTIAL` marks a
/// channel that must be accessed sequentially with respect to its siblings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ConcurrencyTag(Option<u32>);

impl ConcurrencyTag {
    /// The tag of a channel with no concurrency: it is accessed sequentially.
    pub const SEQUENTIAL: ConcurrencyTag = ConcurrencyTag(None);

    /// Creates a tag with the given group number.
    pub fn group(id: u32) -> Self {
        ConcurrencyTag(Some(id))
    }

    /// Returns the group number, or `None` for a sequential channel.
    pub fn id(self) -> Option<u32> {
        self.0
    }

    /// Returns `true` when this channel may overlap with same-source
    /// channels bearing an equal tag.
    pub fn is_concurrent(self) -> bool {
        self.0.is_some()
    }
}

impl fmt::Display for ConcurrencyTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Some(id) => write!(f, "tag{id}"),
            None => f.write_str("seq"),
        }
    }
}

/// One entry of an `ict_list` or `size_list`: the weight of a node on a
/// particular component class.
///
/// The paper's `ict_k = <comp, val>` / `size_k = <comp, val>` with
/// `val ∈ Natural`. For size weights on custom-hardware classes the value
/// may carry an optional datapath/control split used by the sharing-aware
/// size estimator (the paper's reference \[1\]); when absent, the simple
/// summing estimator is exact and the sharing-aware one degrades to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightEntry {
    /// The component class this weight applies to.
    pub class: ClassId,
    /// The weight value: time units for `ict_list`, size units (bytes,
    /// gates, words) for `size_list`.
    pub val: u64,
    /// Optional datapath portion of a size weight (gates attributable to
    /// functional units that could be shared between behaviors).
    pub datapath: Option<u64>,
}

impl WeightEntry {
    /// Creates a plain weight with no datapath split.
    pub fn new(class: ClassId, val: u64) -> Self {
        Self {
            class,
            val,
            datapath: None,
        }
    }

    /// Creates a size weight that records how much of `val` is shareable
    /// datapath.
    ///
    /// # Panics
    ///
    /// Panics if `datapath > val`.
    pub fn with_datapath(class: ClassId, val: u64, datapath: u64) -> Self {
        assert!(
            datapath <= val,
            "datapath portion {datapath} exceeds total weight {val}"
        );
        Self {
            class,
            val,
            datapath: Some(datapath),
        }
    }

    /// The non-shareable (control, wiring, register) portion of the weight.
    pub fn control(&self) -> u64 {
        self.val - self.datapath.unwrap_or(0)
    }
}

/// A list of per-component-class weights: the paper's `ict_list` /
/// `size_list`.
///
/// Entries are kept sorted by class id and are unique per class, so lookup
/// is a binary search. Building the list once, before system design begins,
/// is what makes estimation "only lookups" (Section 2.1).
///
/// # Examples
///
/// ```
/// use slif_core::{ClassId, WeightList};
///
/// let mut ict = WeightList::new();
/// ict.set(ClassId::from_raw(0), 80); // e.g. 80 us on the processor class
/// ict.set(ClassId::from_raw(1), 10); // 10 us on the ASIC class
/// assert_eq!(ict.get(ClassId::from_raw(1)), Some(10));
/// assert_eq!(ict.get(ClassId::from_raw(2)), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WeightList {
    entries: Vec<WeightEntry>,
}

impl WeightList {
    /// Creates an empty weight list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the weight for `class`, replacing any previous entry, and
    /// returns the previous value if one existed.
    pub fn set(&mut self, class: ClassId, val: u64) -> Option<u64> {
        self.insert(WeightEntry::new(class, val))
    }

    /// Inserts a full entry (including an optional datapath split),
    /// replacing any previous entry for the same class.
    pub fn insert(&mut self, entry: WeightEntry) -> Option<u64> {
        match self.entries.binary_search_by_key(&entry.class, |e| e.class) {
            Ok(pos) => {
                let old = self.entries[pos].val;
                self.entries[pos] = entry;
                Some(old)
            }
            Err(pos) => {
                self.entries.insert(pos, entry);
                None
            }
        }
    }

    /// Looks up the weight for `class` — the paper's
    /// `GetBvIct(bv, pm)` / `GetBvSize(bv, pm)` lookup step.
    pub fn get(&self, class: ClassId) -> Option<u64> {
        self.entry(class).map(|e| e.val)
    }

    /// Looks up the full entry for `class`.
    pub fn entry(&self, class: ClassId) -> Option<&WeightEntry> {
        self.entries
            .binary_search_by_key(&class, |e| e.class)
            .ok()
            .map(|pos| &self.entries[pos])
    }

    /// Returns `true` when a weight is recorded for `class`, i.e. the node
    /// "could possibly be implemented" on that class.
    pub fn supports(&self, class: ClassId) -> bool {
        self.entry(class).is_some()
    }

    /// Iterates over entries in ascending class order.
    pub fn iter(&self) -> std::slice::Iter<'_, WeightEntry> {
        self.entries.iter()
    }

    /// Number of classes with a recorded weight.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no weights are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes the weight for `class`, returning the previous value.
    pub fn remove(&mut self, class: ClassId) -> Option<u64> {
        match self.entries.binary_search_by_key(&class, |e| e.class) {
            Ok(pos) => Some(self.entries.remove(pos).val),
            Err(_) => None,
        }
    }

    /// Removes every recorded weight.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl FromIterator<(ClassId, u64)> for WeightList {
    fn from_iter<T: IntoIterator<Item = (ClassId, u64)>>(iter: T) -> Self {
        let mut list = WeightList::new();
        for (class, val) in iter {
            list.set(class, val);
        }
        list
    }
}

impl Extend<(ClassId, u64)> for WeightList {
    fn extend<T: IntoIterator<Item = (ClassId, u64)>>(&mut self, iter: T) {
        for (class, val) in iter {
            self.set(class, val);
        }
    }
}

impl<'a> IntoIterator for &'a WeightList {
    type Item = &'a WeightEntry;
    type IntoIter = std::slice::Iter<'a, WeightEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(raw: u32) -> ClassId {
        ClassId::from_raw(raw)
    }

    #[test]
    fn exact_freq_is_consistent() {
        let f = AccessFreq::exact(3);
        assert!(f.is_consistent());
        assert_eq!(f.avg, 3.0);
        assert_eq!(f.min, 3);
        assert_eq!(f.max, 3);
    }

    #[test]
    fn inconsistent_freq_detected() {
        assert!(!AccessFreq::new(5.0, 6, 7).is_consistent());
        assert!(!AccessFreq::new(8.0, 0, 7).is_consistent());
        assert!(!AccessFreq::new(f64::NAN, 0, 1).is_consistent());
        assert!(!AccessFreq::new(-1.0, 0, 1).is_consistent());
    }

    #[test]
    fn freq_mode_selection() {
        let f = AccessFreq::new(65.0, 0, 130);
        assert_eq!(f.for_mode(FreqMode::Average), 65.0);
        assert_eq!(f.for_mode(FreqMode::Min), 0.0);
        assert_eq!(f.for_mode(FreqMode::Max), 130.0);
    }

    #[test]
    fn concurrency_tag_equality_defines_groups() {
        assert_eq!(ConcurrencyTag::group(1), ConcurrencyTag::group(1));
        assert_ne!(ConcurrencyTag::group(1), ConcurrencyTag::group(2));
        assert_ne!(ConcurrencyTag::group(1), ConcurrencyTag::SEQUENTIAL);
        assert!(!ConcurrencyTag::SEQUENTIAL.is_concurrent());
        assert!(ConcurrencyTag::group(0).is_concurrent());
    }

    #[test]
    fn weight_list_set_get_replace() {
        let mut list = WeightList::new();
        assert_eq!(list.set(k(2), 20), None);
        assert_eq!(list.set(k(0), 5), None);
        assert_eq!(list.set(k(2), 25), Some(20));
        assert_eq!(list.get(k(0)), Some(5));
        assert_eq!(list.get(k(2)), Some(25));
        assert_eq!(list.get(k(1)), None);
        assert_eq!(list.len(), 2);
        assert!(list.supports(k(0)));
        assert!(!list.supports(k(9)));
    }

    #[test]
    fn weight_list_remove_and_clear() {
        let mut list: WeightList = [(k(0), 5), (k(1), 10)].into_iter().collect();
        assert_eq!(list.remove(k(0)), Some(5));
        assert_eq!(list.remove(k(0)), None);
        assert_eq!(list.get(k(1)), Some(10));
        list.clear();
        assert!(list.is_empty());
    }

    #[test]
    fn weight_list_iterates_sorted() {
        let list: WeightList = [(k(3), 30), (k(1), 10), (k(2), 20)].into_iter().collect();
        let classes: Vec<u32> = list.iter().map(|e| e.class.index() as u32).collect();
        assert_eq!(classes, vec![1, 2, 3]);
    }

    #[test]
    fn datapath_split() {
        let e = WeightEntry::with_datapath(k(0), 100, 60);
        assert_eq!(e.control(), 40);
        assert_eq!(e.datapath, Some(60));
        let plain = WeightEntry::new(k(0), 100);
        assert_eq!(plain.control(), 100);
    }

    #[test]
    #[should_panic(expected = "exceeds total weight")]
    fn datapath_larger_than_total_panics() {
        let _ = WeightEntry::with_datapath(k(0), 10, 11);
    }

    #[test]
    fn display_formats() {
        assert_eq!(AccessFreq::new(1.5, 1, 2).to_string(), "1.5 [1, 2]");
        assert_eq!(ConcurrencyTag::group(4).to_string(), "tag4");
        assert_eq!(ConcurrencyTag::SEQUENTIAL.to_string(), "seq");
        assert_eq!(FreqMode::Max.to_string(), "max");
    }
}
