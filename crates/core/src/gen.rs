//! Synthetic design generation for tests and scaling benchmarks.
//!
//! The paper's examples range from 30 to 123 functional objects. To study
//! how build, estimation, and partitioning scale beyond the four benchmark
//! specs, [`DesignGenerator`] produces random — but structurally valid and
//! fully annotated — designs: acyclic call structures (so execution time is
//! well defined), realistic fan-out, and complete weight lists for every
//! class, plus a random proper partition to start algorithms from.

use crate::annotation::AccessFreq;
use crate::channel::AccessKind;
use crate::component::{Bus, ClassKind};
use crate::design::Design;
use crate::ids::{ClassId, NodeId, PmRef};
use crate::node::NodeKind;
use crate::partition::Partition;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for synthetic design generation.
///
/// # Examples
///
/// ```
/// use slif_core::gen::DesignGenerator;
///
/// let (design, partition) = DesignGenerator::new(7)
///     .behaviors(20)
///     .variables(15)
///     .build();
/// assert_eq!(design.graph().node_count(), 35);
/// assert!(partition.validate(&design).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct DesignGenerator {
    seed: u64,
    behaviors: usize,
    variables: usize,
    ports: usize,
    /// Average outgoing channels per behavior.
    avg_fanout: f64,
    processors: usize,
    memories: usize,
    buses: usize,
}

impl DesignGenerator {
    /// Creates a generator with the given seed and paper-scale defaults
    /// (roughly the size of the `fuzzy` example: 35 nodes).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            behaviors: 15,
            variables: 20,
            ports: 4,
            avg_fanout: 2.5,
            processors: 2,
            memories: 1,
            buses: 1,
        }
    }

    /// Sets the number of behavior nodes (minimum 1; the first behavior is
    /// the root process).
    pub fn behaviors(mut self, n: usize) -> Self {
        self.behaviors = n.max(1);
        self
    }

    /// Sets the number of variable nodes.
    pub fn variables(mut self, n: usize) -> Self {
        self.variables = n;
        self
    }

    /// Sets the number of external ports.
    pub fn ports(mut self, n: usize) -> Self {
        self.ports = n;
        self
    }

    /// Sets the average out-degree of behaviors.
    pub fn avg_fanout(mut self, f: f64) -> Self {
        self.avg_fanout = f.max(0.0);
        self
    }

    /// Sets the number of processor instances (minimum 1).
    pub fn processors(mut self, n: usize) -> Self {
        self.processors = n.max(1);
        self
    }

    /// Sets the number of memory instances.
    pub fn memories(mut self, n: usize) -> Self {
        self.memories = n;
        self
    }

    /// Sets the number of bus instances (minimum 1).
    pub fn buses(mut self, n: usize) -> Self {
        self.buses = n.max(1);
        self
    }

    /// Generates the design and a random proper partition of it.
    pub fn build(&self) -> (Design, Partition) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut d = Design::new(format!("synthetic-{}", self.seed));

        let proc_class = d.add_class("gen-proc", ClassKind::StdProcessor);
        let hw_class = d.add_class("gen-asic", ClassKind::CustomHw);
        let mem_class = d.add_class("gen-mem", ClassKind::Memory);
        let behavior_classes = [proc_class, hw_class];
        let all_classes = [proc_class, hw_class, mem_class];

        // Behaviors first (index order gives the acyclic call direction).
        let mut behaviors = Vec::with_capacity(self.behaviors);
        for i in 0..self.behaviors {
            let kind = if i == 0 || rng.gen_bool(0.15) {
                NodeKind::process()
            } else {
                NodeKind::procedure()
            };
            let id = d.graph_mut().add_node(format!("beh{i}"), kind);
            annotate(&mut d, id, &behavior_classes, &mut rng);
            behaviors.push(id);
        }
        let mut variables = Vec::with_capacity(self.variables);
        for i in 0..self.variables {
            let kind = if rng.gen_bool(0.4) {
                NodeKind::array(1u64 << rng.gen_range(4..10), 8 * rng.gen_range(1u32..=4))
            } else {
                NodeKind::scalar(8 * rng.gen_range(1u32..=4))
            };
            let id = d.graph_mut().add_node(format!("var{i}"), kind);
            annotate(&mut d, id, &all_classes, &mut rng);
            variables.push(id);
        }
        let mut ports = Vec::with_capacity(self.ports);
        for i in 0..self.ports {
            let dir = if rng.gen_bool(0.5) {
                crate::node::PortDirection::In
            } else {
                crate::node::PortDirection::Out
            };
            ports.push(d.graph_mut().add_port(format!("port{i}"), dir, 8));
        }

        // Channels: calls go strictly to higher-index behaviors (acyclic);
        // reads/writes go to any variable or port.
        for (i, &src) in behaviors.iter().enumerate() {
            let edges = sample_count(self.avg_fanout, &mut rng);
            for _ in 0..edges {
                let roll: f64 = rng.gen();
                // Message passes only target processes (as in the
                // specification language).
                let later_processes: Vec<NodeId> = behaviors[i + 1..]
                    .iter()
                    .copied()
                    .filter(|&b| d.graph().node(b).kind().is_process())
                    .collect();
                let (dst, kind) = if roll < 0.35 && i + 1 < behaviors.len() {
                    let j = rng.gen_range(i + 1..behaviors.len());
                    (behaviors[j].into(), AccessKind::Call)
                } else if roll < 0.45 && !later_processes.is_empty() {
                    let j = rng.gen_range(0..later_processes.len());
                    (later_processes[j].into(), AccessKind::Message)
                } else if !variables.is_empty() && (roll < 0.9 || ports.is_empty()) {
                    let v = variables[rng.gen_range(0..variables.len())];
                    let kind = if rng.gen_bool(0.5) {
                        AccessKind::Read
                    } else {
                        AccessKind::Write
                    };
                    (v.into(), kind)
                } else if !ports.is_empty() {
                    let p = ports[rng.gen_range(0..ports.len())];
                    let kind = match d.graph().port(p).direction() {
                        crate::node::PortDirection::In => AccessKind::Read,
                        _ => AccessKind::Write,
                    };
                    (p.into(), kind)
                } else {
                    continue;
                };
                if let Ok(c) = d.graph_mut().add_or_merge_channel(src, dst, kind) {
                    let max = rng.gen_range(1..200u64);
                    let min = rng.gen_range(0..=max);
                    let avg = min as f64 + rng.gen::<f64>() * (max - min) as f64;
                    let bits = rng.gen_range(1..=64);
                    let ch = d.graph_mut().channel_mut(c);
                    *ch.freq_mut() = AccessFreq::new(avg, min, max);
                    ch.set_bits(bits);
                }
            }
        }

        // Components.
        let mut procs = Vec::new();
        for i in 0..self.processors {
            let class = behavior_classes[i % behavior_classes.len()];
            procs.push(d.add_processor(format!("proc{i}"), class));
        }
        let mut mems = Vec::new();
        for i in 0..self.memories {
            mems.push(d.add_memory(format!("mem{i}"), mem_class));
        }
        let mut buses = Vec::new();
        for i in 0..self.buses {
            let width = 8u32 << rng.gen_range(0..3);
            let ts = rng.gen_range(1u64..4);
            let td = ts + rng.gen_range(1u64..8);
            buses.push(d.add_bus(Bus::new(format!("bus{i}"), width, ts, td)));
        }

        // Random proper partition.
        let mut part = Partition::new(&d);
        for n in d.graph().node_ids() {
            let comp: PmRef = if d.graph().node(n).kind().is_behavior() || mems.is_empty() {
                procs[rng.gen_range(0..procs.len())].into()
            } else if rng.gen_bool(0.5) {
                mems[rng.gen_range(0..mems.len())].into()
            } else {
                procs[rng.gen_range(0..procs.len())].into()
            };
            part.assign_node(n, comp);
        }
        for c in d.graph().channel_ids() {
            part.assign_channel(c, buses[rng.gen_range(0..buses.len())]);
        }
        (d, part)
    }
}

/// Fills a node's ict/size weight lists for the given classes.
fn annotate(d: &mut Design, node: NodeId, classes: &[ClassId], rng: &mut StdRng) {
    for &class in classes {
        let ict = rng.gen_range(1..500);
        let size = rng.gen_range(1..5000);
        let node_ref = d.graph_mut().node_mut(node);
        node_ref.ict_mut().set(class, ict);
        if rng.gen_bool(0.5) {
            let dp = rng.gen_range(0..=size);
            node_ref
                .size_mut()
                .insert(crate::annotation::WeightEntry::with_datapath(
                    class, size, dp,
                ));
        } else {
            node_ref.size_mut().set(class, size);
        }
    }
}

/// Samples an edge count around the requested mean.
fn sample_count(mean: f64, rng: &mut StdRng) -> usize {
    let base = mean.floor() as usize;
    let frac = mean - mean.floor();
    base + usize::from(rng.gen_bool(frac.clamp(0.0, 1.0))) + rng.gen_range(0usize..=1)
    // small jitter
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_design_is_valid_and_acyclic() {
        for seed in 0..10 {
            let (d, part) = DesignGenerator::new(seed)
                .behaviors(12)
                .variables(10)
                .processors(3)
                .memories(2)
                .buses(2)
                .build();
            part.validate(&d).expect("generated partition is proper");
            assert_eq!(d.graph().find_recursion(), None, "calls must be acyclic");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (d1, p1) = DesignGenerator::new(42).build();
        let (d2, p2) = DesignGenerator::new(42).build();
        assert_eq!(d1, d2);
        assert_eq!(p1, p2);
        let (d3, _) = DesignGenerator::new(43).build();
        assert_ne!(d1, d3);
    }

    #[test]
    fn node_counts_match_parameters() {
        let (d, _) = DesignGenerator::new(1)
            .behaviors(7)
            .variables(5)
            .ports(3)
            .build();
        assert_eq!(d.graph().behavior_ids().count(), 7);
        assert_eq!(d.graph().variable_ids().count(), 5);
        assert_eq!(d.graph().port_count(), 3);
    }

    #[test]
    fn all_freqs_consistent() {
        let (d, _) = DesignGenerator::new(9).behaviors(20).variables(20).build();
        for c in d.graph().channel_ids() {
            assert!(d.graph().channel(c).freq().is_consistent());
        }
    }
}
