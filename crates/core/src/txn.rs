//! All-or-nothing batched partition edits.
//!
//! Exploration algorithms apply *sequences* of moves that must land
//! together or not at all: group migration's best-prefix rewind, a
//! checkpoint restore, a cluster seeding. [`PartitionTxn`] wraps a
//! mutable [`Partition`] and records an undo entry for every assignment
//! it makes, so the whole batch can be validated on commit and rolled
//! back — fully or to a savepoint — when it does not hold up.
//!
//! # Examples
//!
//! ```
//! use slif_core::gen::DesignGenerator;
//! use slif_core::{PartitionTxn, PmRef};
//!
//! let (design, mut partition) = DesignGenerator::new(1).build();
//! let n = design.graph().node_ids().next().unwrap();
//! let before = partition.node_component(n);
//! let mut txn = PartitionTxn::begin(&mut partition);
//! let target: PmRef = design.processor_ids().last().unwrap().into();
//! txn.assign_node(n, target)?;
//! txn.rollback(); // changed our mind: the partition is untouched
//! assert_eq!(partition.node_component(n), before);
//! # Ok::<(), slif_core::CoreError>(())
//! ```

use crate::design::Design;
use crate::error::CoreError;
use crate::ids::{BusId, ChannelId, NodeId, PmRef};
use crate::partition::Partition;

/// One recorded undo entry: the slot and its value before this
/// transaction touched it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UndoOp {
    Node(NodeId, Option<PmRef>),
    Channel(ChannelId, Option<BusId>),
}

/// An open transaction over a [`Partition`]: batched moves with bounds
/// checking, savepoints, and all-or-nothing commit.
///
/// Dropping an open transaction *keeps* its edits (like forgetting to
/// call [`commit`](Self::commit) on an in-place edit); call
/// [`rollback`](Self::rollback) to discard them explicitly.
#[derive(Debug)]
pub struct PartitionTxn<'p> {
    partition: &'p mut Partition,
    log: Vec<UndoOp>,
}

/// A marker into a transaction's undo log, for partial rollback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Savepoint(usize);

impl<'p> PartitionTxn<'p> {
    /// Opens a transaction over `partition`.
    pub fn begin(partition: &'p mut Partition) -> Self {
        Self {
            partition,
            log: Vec::new(),
        }
    }

    /// Assigns node `n` to `comp`, recording the previous value for undo.
    ///
    /// # Errors
    ///
    /// [`CoreError::DanglingReference`] if `n` is out of range for the
    /// partition (nothing is changed or recorded).
    pub fn assign_node(&mut self, n: NodeId, comp: PmRef) -> Result<(), CoreError> {
        if n.index() >= self.partition.node_slots() {
            return Err(CoreError::DanglingReference {
                what: "node",
                index: n.index(),
            });
        }
        let prev = self.partition.assign_node(n, comp);
        self.log.push(UndoOp::Node(n, prev));
        Ok(())
    }

    /// Removes node `n`'s assignment, recording the previous value.
    ///
    /// # Errors
    ///
    /// [`CoreError::DanglingReference`] if `n` is out of range.
    pub fn unassign_node(&mut self, n: NodeId) -> Result<(), CoreError> {
        if n.index() >= self.partition.node_slots() {
            return Err(CoreError::DanglingReference {
                what: "node",
                index: n.index(),
            });
        }
        let prev = self.partition.unassign_node(n);
        self.log.push(UndoOp::Node(n, prev));
        Ok(())
    }

    /// Assigns channel `c` to `bus`, recording the previous value.
    ///
    /// # Errors
    ///
    /// [`CoreError::DanglingReference`] if `c` is out of range.
    pub fn assign_channel(&mut self, c: ChannelId, bus: BusId) -> Result<(), CoreError> {
        if c.index() >= self.partition.channel_slots() {
            return Err(CoreError::DanglingReference {
                what: "channel",
                index: c.index(),
            });
        }
        let prev = self.partition.assign_channel(c, bus);
        self.log.push(UndoOp::Channel(c, prev));
        Ok(())
    }

    /// The partition as the transaction currently sees it.
    pub fn partition(&self) -> &Partition {
        self.partition
    }

    /// How many edits the transaction has recorded.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Whether the transaction has recorded no edits yet.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Marks the current position in the undo log, for
    /// [`rollback_to`](Self::rollback_to).
    pub fn savepoint(&self) -> Savepoint {
        Savepoint(self.log.len())
    }

    /// Undoes every edit made after `sp`, leaving earlier edits in place.
    /// A savepoint from before edits that were already rolled back is
    /// clamped (rolling back twice is a no-op).
    pub fn rollback_to(&mut self, sp: Savepoint) {
        while self.log.len() > sp.0 {
            match self.log.pop() {
                Some(UndoOp::Node(n, Some(comp))) => {
                    self.partition.assign_node(n, comp);
                }
                Some(UndoOp::Node(n, None)) => {
                    self.partition.unassign_node(n);
                }
                Some(UndoOp::Channel(c, Some(bus))) => {
                    self.partition.assign_channel(c, bus);
                }
                Some(UndoOp::Channel(c, None)) => {
                    self.partition.unassign_channel(c);
                }
                None => break,
            }
        }
    }

    /// Undoes every edit and closes the transaction: the partition is
    /// exactly as it was at [`begin`](Self::begin).
    pub fn rollback(mut self) {
        self.rollback_to(Savepoint(0));
    }

    /// Validates the edited partition against `design` and closes the
    /// transaction. On a validation failure every edit is undone first —
    /// the batch lands all-or-nothing.
    ///
    /// # Errors
    ///
    /// The first proper-partition violation, from
    /// [`Partition::validate`]; the partition is back at its pre-
    /// transaction state when an error is returned.
    pub fn commit(self, design: &Design) -> Result<(), CoreError> {
        match self.partition.validate(design) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.rollback();
                Err(e)
            }
        }
    }

    /// Closes the transaction keeping every edit, without validating.
    /// For callers that maintain validity by construction and only need
    /// the undo log for mid-flight rollback.
    pub fn commit_unchecked(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::DesignGenerator;
    use crate::ids::ProcessorId;

    #[test]
    fn commit_keeps_a_valid_batch() {
        let (design, mut part) = DesignGenerator::new(10).processors(2).build();
        let n = design.graph().node_ids().next().unwrap();
        let target: PmRef = design.processor_ids().last().unwrap().into();
        let mut txn = PartitionTxn::begin(&mut part);
        txn.assign_node(n, target).unwrap();
        assert_eq!(txn.len(), 1);
        txn.commit(&design).unwrap();
        assert_eq!(part.node_component(n), Some(target));
    }

    #[test]
    fn commit_rolls_back_an_invalid_batch_entirely() {
        let (design, mut part) = DesignGenerator::new(11).processors(2).build();
        let before = part.clone();
        let nodes: Vec<_> = design.graph().node_ids().take(3).collect();
        let good: PmRef = design.processor_ids().last().unwrap().into();
        let ghost: PmRef = ProcessorId::from_raw(99).into();
        let mut txn = PartitionTxn::begin(&mut part);
        txn.assign_node(nodes[0], good).unwrap();
        txn.assign_node(nodes[1], good).unwrap();
        txn.assign_node(nodes[2], ghost).unwrap();
        let err = txn.commit(&design).unwrap_err();
        assert!(matches!(err, CoreError::UnknownComponent { .. }), "{err}");
        // The valid early edits are gone too: all-or-nothing.
        assert_eq!(part, before);
    }

    #[test]
    fn savepoint_rewinds_a_suffix_only() {
        let (design, mut part) = DesignGenerator::new(12).processors(3).build();
        let nodes: Vec<_> = design.graph().node_ids().take(2).collect();
        let procs: Vec<_> = design.processor_ids().collect();
        let keep_home = part.node_component(nodes[1]);
        let mut txn = PartitionTxn::begin(&mut part);
        txn.assign_node(nodes[0], procs[1].into()).unwrap();
        let sp = txn.savepoint();
        txn.assign_node(nodes[1], procs[2].into()).unwrap();
        txn.rollback_to(sp);
        assert_eq!(txn.len(), 1);
        txn.commit(&design).unwrap();
        assert_eq!(part.node_component(nodes[0]), Some(procs[1].into()));
        assert_eq!(part.node_component(nodes[1]), keep_home);
    }

    #[test]
    fn rollback_restores_unassignments_and_channels() {
        let (design, mut part) = DesignGenerator::new(13).buses(2).build();
        let before = part.clone();
        let n = design.graph().node_ids().next().unwrap();
        let c = design.graph().channel_ids().next().unwrap();
        let buses: Vec<_> = design.bus_ids().collect();
        let mut txn = PartitionTxn::begin(&mut part);
        txn.unassign_node(n).unwrap();
        txn.assign_channel(c, buses[1]).unwrap();
        assert!(!txn.is_empty());
        txn.rollback();
        assert_eq!(part, before);
    }

    #[test]
    fn out_of_range_targets_are_typed_errors_not_panics() {
        let (design, mut part) = DesignGenerator::new(14).build();
        let before = part.clone();
        let good: PmRef = design.processor_ids().next().unwrap().into();
        let mut txn = PartitionTxn::begin(&mut part);
        let err = txn.assign_node(NodeId::from_raw(9999), good).unwrap_err();
        assert!(matches!(
            err,
            CoreError::DanglingReference { what: "node", .. }
        ));
        let err = txn
            .assign_channel(ChannelId::from_raw(9999), BusId::from_raw(0))
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::DanglingReference { what: "channel", .. }
        ));
        let err = txn.unassign_node(NodeId::from_raw(9999)).unwrap_err();
        assert!(matches!(err, CoreError::DanglingReference { .. }));
        assert!(txn.is_empty(), "failed edits must not be logged");
        txn.rollback();
        assert_eq!(part, before);
    }

    #[test]
    fn commit_unchecked_keeps_edits_without_validating() {
        let (design, mut part) = DesignGenerator::new(15).build();
        let n = design.graph().node_ids().next().unwrap();
        let ghost: PmRef = ProcessorId::from_raw(42).into();
        let mut txn = PartitionTxn::begin(&mut part);
        txn.assign_node(n, ghost).unwrap();
        txn.commit_unchecked();
        assert_eq!(part.node_component(n), Some(ghost));
    }
}
