//! Seeded fault injection: deliberately corrupting designs and spec text.
//!
//! A robust pipeline must *report* a corrupted input, never panic on it.
//! [`FaultInjector`] is the test harness for that property: seeded by a
//! `u64`, it applies random but reproducible mutations to a
//! [`Design`]/[`Partition`] pair (dropping annotations, dangling node and
//! bus ids, unmapping objects, zeroing bus bitwidths, negating
//! frequencies) or to specification source text (truncation, character
//! flips). Every mutation models a real failure class: a buggy frontend, a
//! stale partition from an older design revision, a hand-edited file.
//!
//! Consumers then assert that [`validate`](crate::validate::validate)
//! reports the damage and that estimators return `Err` — the crate-level
//! fault-injection suite runs hundreds of seeds through the whole
//! parse → build → validate → estimate pipeline.
//!
//! # Examples
//!
//! ```
//! use slif_core::faults::FaultInjector;
//! use slif_core::gen::DesignGenerator;
//! use slif_core::validate::validate;
//!
//! let (mut design, mut partition) = DesignGenerator::new(3).build();
//! let applied = FaultInjector::new(3).corrupt(&mut design, &mut partition, 2);
//! assert_eq!(applied.len(), 2);
//! // The sweep reports the damage instead of panicking.
//! let _report = validate(&design, Some(&partition));
//! ```

use crate::annotation::{AccessFreq, ConcurrencyTag};
use crate::channel::AccessKind;
use crate::design::Design;
use crate::ids::{AccessTarget, BusId, ChannelId, MemoryId, NodeId, PmRef, ProcessorId};
use crate::partition::Partition;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// The mutation classes the injector can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultKind {
    /// Erase a node's `ict_list` (annotation loss).
    DropIctWeights,
    /// Erase a node's `size_list` (annotation loss).
    DropSizeWeights,
    /// Point a channel's source at a node index that does not exist.
    DangleChannelSrc,
    /// Point a channel's destination at a node index that does not exist.
    DangleChannelDst,
    /// Map a node to a component instance that does not exist.
    DangleNodeAssignment,
    /// Map a channel to a bus that does not exist.
    DangleBusAssignment,
    /// Remove a node's component assignment.
    UnassignNode,
    /// Remove a channel's bus assignment.
    UnassignChannel,
    /// Set a bus's bitwidth to zero (divide-by-zero bait).
    ZeroBusBitwidth,
    /// Make a channel's average access frequency negative.
    NegateChannelFreq,
    /// Scramble a channel's frequency bounds so `min > max`.
    ScrambleFreqBounds,
}

/// All mutation classes, in a fixed order (the injector draws uniformly
/// from this set).
pub const ALL_FAULT_KINDS: [FaultKind; 11] = [
    FaultKind::DropIctWeights,
    FaultKind::DropSizeWeights,
    FaultKind::DangleChannelSrc,
    FaultKind::DangleChannelDst,
    FaultKind::DangleNodeAssignment,
    FaultKind::DangleBusAssignment,
    FaultKind::UnassignNode,
    FaultKind::UnassignChannel,
    FaultKind::ZeroBusBitwidth,
    FaultKind::NegateChannelFreq,
    FaultKind::ScrambleFreqBounds,
];

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::DropIctWeights => "drop-ict-weights",
            FaultKind::DropSizeWeights => "drop-size-weights",
            FaultKind::DangleChannelSrc => "dangle-channel-src",
            FaultKind::DangleChannelDst => "dangle-channel-dst",
            FaultKind::DangleNodeAssignment => "dangle-node-assignment",
            FaultKind::DangleBusAssignment => "dangle-bus-assignment",
            FaultKind::UnassignNode => "unassign-node",
            FaultKind::UnassignChannel => "unassign-channel",
            FaultKind::ZeroBusBitwidth => "zero-bus-bitwidth",
            FaultKind::NegateChannelFreq => "negate-channel-freq",
            FaultKind::ScrambleFreqBounds => "scramble-freq-bounds",
        })
    }
}

/// The byte-level mutation classes for serialized checkpoints (or any
/// opaque blob whose loader must reject damage with a typed error).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CheckpointFaultKind {
    /// Cut the blob short, as a crash mid-write would.
    Truncate,
    /// Flip one bit somewhere in the blob.
    BitFlip,
    /// Zero a short span of bytes.
    ZeroSpan,
    /// Overwrite the leading header bytes with random junk.
    HeaderSmash,
}

/// All checkpoint mutation classes, in a fixed order.
pub const ALL_CHECKPOINT_FAULT_KINDS: [CheckpointFaultKind; 4] = [
    CheckpointFaultKind::Truncate,
    CheckpointFaultKind::BitFlip,
    CheckpointFaultKind::ZeroSpan,
    CheckpointFaultKind::HeaderSmash,
];

impl fmt::Display for CheckpointFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CheckpointFaultKind::Truncate => "truncate",
            CheckpointFaultKind::BitFlip => "bit-flip",
            CheckpointFaultKind::ZeroSpan => "zero-span",
            CheckpointFaultKind::HeaderSmash => "header-smash",
        })
    }
}

/// The operational fault classes a job-service harness can inject:
/// failures of the *serving* machinery rather than of the data it serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RuntimeFaultKind {
    /// A worker thread panics mid-job (the service must isolate it).
    WorkerPanic,
    /// The admission queue is saturated (the service must shed load
    /// with a typed rejection, not block or drop silently).
    QueueFull,
}

/// All runtime fault classes, in a fixed order.
pub const ALL_RUNTIME_FAULT_KINDS: [RuntimeFaultKind; 2] = [
    RuntimeFaultKind::WorkerPanic,
    RuntimeFaultKind::QueueFull,
];

impl fmt::Display for RuntimeFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RuntimeFaultKind::WorkerPanic => "worker-panic",
            RuntimeFaultKind::QueueFull => "queue-full",
        })
    }
}

/// The byte-level mutation classes for durable-store files (journal
/// segments and cache objects). Where [`CheckpointFaultKind`] models
/// generic blob rot, these model the specific crash shapes a
/// write-ahead store must recover from with a *documented* outcome:
/// a torn final record must cost at most the unacknowledged tail, a
/// flipped bit must be caught by a record CRC, a truncated segment must
/// recover the intact prefix, and a stale header must quarantine the
/// whole file rather than misdecode it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StoreFaultKind {
    /// Shave a few trailing bytes off the file, as a crash in the middle
    /// of the final (not yet fsync-acknowledged) append would.
    TornFinalRecord,
    /// Flip one bit somewhere past the header (storage rot in the body).
    MidFileBitFlip,
    /// Cut the file at an arbitrary byte offset (lost tail of a segment).
    TruncatedSegment,
    /// Rewrite the header's version field with a version this build does
    /// not read (downgrade after an upgrade wrote the file).
    StaleVersionHeader,
}

/// All store mutation classes, in a fixed order.
pub const ALL_STORE_FAULT_KINDS: [StoreFaultKind; 4] = [
    StoreFaultKind::TornFinalRecord,
    StoreFaultKind::MidFileBitFlip,
    StoreFaultKind::TruncatedSegment,
    StoreFaultKind::StaleVersionHeader,
];

impl fmt::Display for StoreFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StoreFaultKind::TornFinalRecord => "torn-final-record",
            StoreFaultKind::MidFileBitFlip => "mid-file-bit-flip",
            StoreFaultKind::TruncatedSegment => "truncated-segment",
            StoreFaultKind::StaleVersionHeader => "stale-version-header",
        })
    }
}

/// The hostile-byte classes for *interchange* files (the `slif-formats`
/// wire encodings). Where [`StoreFaultKind`] models what a crash does to
/// files this process wrote itself, these model what a *partner tool* —
/// buggy, truncating, or actively adversarial — can hand us over the
/// wire: torn transfers, storage rot, duplicated sections from a bad
/// concatenation, declared sizes meant to bait an allocation, and
/// nesting meant to bait a recursion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FormatFaultKind {
    /// Cut the file at an arbitrary byte offset (interrupted transfer).
    Truncation,
    /// Flip one random bit anywhere in the file (rot in transit).
    BitFlip,
    /// Duplicate one section (text) or one framed segment (binary), as
    /// a botched tool-chain concatenation would.
    DuplicatedSection,
    /// Declare a size far beyond any cap: a monster record line in
    /// text, a rewritten frame-length field in binary. A reader that
    /// trusts the declaration allocates gigabytes before reading a
    /// single payload byte.
    HostileDeclaredSize,
    /// Nest far beyond any cap: an unclosed brace tower in a text
    /// extension section, frame headers stuffed inside frame headers in
    /// binary. A reader that recurses per level blows its stack.
    PathologicalNesting,
}

/// All interchange-format mutation classes, in a fixed order.
pub const ALL_FORMAT_FAULT_KINDS: [FormatFaultKind; 5] = [
    FormatFaultKind::Truncation,
    FormatFaultKind::BitFlip,
    FormatFaultKind::DuplicatedSection,
    FormatFaultKind::HostileDeclaredSize,
    FormatFaultKind::PathologicalNesting,
];

impl fmt::Display for FormatFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FormatFaultKind::Truncation => "truncation",
            FormatFaultKind::BitFlip => "bit-flip",
            FormatFaultKind::DuplicatedSection => "duplicated-section",
            FormatFaultKind::HostileDeclaredSize => "hostile-declared-size",
            FormatFaultKind::PathologicalNesting => "pathological-nesting",
        })
    }
}

/// Defect classes the `slif-analyze` lint engine is built to catch.
/// Where [`FaultKind`] breaks designs so *error paths* can be exercised,
/// these plant the subtler bugs a static analyzer exists for: dataflow
/// that silently stopped flowing, mappings onto hardware that is not
/// there, concurrency annotations that contradict the access pattern.
/// The orphan and tag-conflict defects pass validation entirely; all
/// three are reported with stable lint IDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AnalyzableFaultKind {
    /// Map a channel to a bus index past the architecture's last bus
    /// (`A004 bitwidth-mismatch` reports the mapping as nonexistent).
    DanglingBusMapping,
    /// Redirect every access of one variable to a sibling, leaving the
    /// original still declared and still carrying its (now stale) access
    /// lists (`A002 dead-code` reports the orphan).
    OrphanVariable,
    /// Force two accesses of one variable to writes in the same declared
    /// concurrency group (`A001 shared-variable-race` reports the pair
    /// when their processes land on different components).
    ConcurrencyTagConflict,
}

/// All analyzer-detectable defect classes, in a fixed order.
pub const ALL_ANALYZABLE_FAULT_KINDS: [AnalyzableFaultKind; 3] = [
    AnalyzableFaultKind::DanglingBusMapping,
    AnalyzableFaultKind::OrphanVariable,
    AnalyzableFaultKind::ConcurrencyTagConflict,
];

impl fmt::Display for AnalyzableFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AnalyzableFaultKind::DanglingBusMapping => "dangling-bus-mapping",
            AnalyzableFaultKind::OrphanVariable => "orphan-variable",
            AnalyzableFaultKind::ConcurrencyTagConflict => "concurrency-tag-conflict",
        })
    }
}

/// Behavior-body defect classes the flow-sensitive dataflow lints
/// (`A006`–`A009`) are built to catch. Where [`AnalyzableFaultKind`]
/// damages the access graph, these plant bugs *inside* behavior bodies —
/// the mutated source still parses, resolves, and validates cleanly; only
/// abstract interpretation over the lowered flow program sees them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DataflowDefectKind {
    /// A store whose value range can never fit the declared width
    /// (`A006 value-range-overflow`).
    OverflowRange,
    /// A local read with a definition on no path from entry
    /// (`A007 uninitialized-read`).
    UninitRead,
    /// A store to a local nothing ever reads (`A008 dead-store`).
    DeadStore,
    /// A guard that is false on every execution
    /// (`A009 constant-condition`).
    ConstantFalseGuard,
}

/// All dataflow defect classes, in lint-code order.
pub const ALL_DATAFLOW_DEFECT_KINDS: [DataflowDefectKind; 4] = [
    DataflowDefectKind::OverflowRange,
    DataflowDefectKind::UninitRead,
    DataflowDefectKind::DeadStore,
    DataflowDefectKind::ConstantFalseGuard,
];

impl DataflowDefectKind {
    /// Stable code of the lint expected to fire on the planted defect.
    pub fn lint_code(self) -> &'static str {
        match self {
            DataflowDefectKind::OverflowRange => "A006",
            DataflowDefectKind::UninitRead => "A007",
            DataflowDefectKind::DeadStore => "A008",
            DataflowDefectKind::ConstantFalseGuard => "A009",
        }
    }
}

impl fmt::Display for DataflowDefectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DataflowDefectKind::OverflowRange => "overflow-range",
            DataflowDefectKind::UninitRead => "uninit-read",
            DataflowDefectKind::DeadStore => "dead-store",
            DataflowDefectKind::ConstantFalseGuard => "constant-false-guard",
        })
    }
}

/// A record of one applied mutation, for failure-reproduction messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedFault {
    /// Which mutation class was applied.
    pub kind: FaultKind,
    /// Which object it hit, rendered (`"bv3"`, `"c7"`, `"i0"`, ...).
    pub target: String,
}

impl fmt::Display for AppliedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {}", self.kind, self.target)
    }
}

/// A record of one applied analyzer-detectable defect. Kept separate from
/// [`AppliedFault`] because the two record different kind enums.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedAnalyzableFault {
    /// Which defect class was planted.
    pub kind: AnalyzableFaultKind,
    /// Which object it hit, rendered (`"bv3"`, `"c7"`, ...).
    pub target: String,
}

impl fmt::Display for AppliedAnalyzableFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {}", self.kind, self.target)
    }
}

/// A seeded, reproducible source of design and spec-text corruption.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: StdRng,
}

impl FaultInjector {
    /// Creates an injector; equal seeds produce equal mutation sequences.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Applies `count` random mutations to `design`/`partition`, returning
    /// a record of each. Mutation classes that cannot apply (e.g. a
    /// channel fault on a channel-less design) are redrawn; a design with
    /// no nodes, channels, or buses at all gets fewer faults than asked.
    pub fn corrupt(
        &mut self,
        design: &mut Design,
        partition: &mut Partition,
        count: usize,
    ) -> Vec<AppliedFault> {
        let mut applied = Vec::with_capacity(count);
        let mut attempts = 0usize;
        while applied.len() < count && attempts < count * 32 {
            attempts += 1;
            let kind = ALL_FAULT_KINDS[self.rng.gen_range(0usize..ALL_FAULT_KINDS.len())];
            if let Some(fault) = self.apply(kind, design, partition) {
                applied.push(fault);
            }
        }
        applied
    }

    /// Applies one specific mutation class, if the design has a target for
    /// it. Returns what was hit.
    pub fn apply(
        &mut self,
        kind: FaultKind,
        design: &mut Design,
        partition: &mut Partition,
    ) -> Option<AppliedFault> {
        let node_count = design.graph().node_count();
        let channel_count = design.graph().channel_count();
        let bus_count = design.bus_count();
        let target = match kind {
            FaultKind::DropIctWeights => {
                // Only behaviors need ict weights, so only they are
                // detectable targets for this fault.
                let behaviors: Vec<NodeId> = design.graph().behavior_ids().collect();
                if behaviors.is_empty() {
                    return None;
                }
                let n = behaviors[self.rng.gen_range(0usize..behaviors.len())];
                design.graph_mut().node_mut(n).ict_mut().clear();
                n.to_string()
            }
            FaultKind::DropSizeWeights => {
                let n = self.pick_node(node_count)?;
                design.graph_mut().node_mut(n).size_mut().clear();
                n.to_string()
            }
            FaultKind::DangleChannelSrc => {
                let c = self.pick_channel(channel_count)?;
                let bogus = NodeId::from_raw((node_count + 1 + self.rng.gen_range(0u32..7) as usize) as u32);
                design.graph_mut().channel_mut(c).set_src_unchecked(bogus);
                c.to_string()
            }
            FaultKind::DangleChannelDst => {
                let c = self.pick_channel(channel_count)?;
                let bogus = NodeId::from_raw((node_count + 1 + self.rng.gen_range(0u32..7) as usize) as u32);
                design
                    .graph_mut()
                    .channel_mut(c)
                    .set_dst_unchecked(AccessTarget::Node(bogus));
                c.to_string()
            }
            FaultKind::DangleNodeAssignment => {
                let n = self.pick_node(node_count.min(partition.node_slots()))?;
                let comp = if self.rng.gen_bool(0.5) {
                    PmRef::Processor(ProcessorId::from_raw(
                        (design.processor_count() + 3) as u32,
                    ))
                } else {
                    PmRef::Memory(MemoryId::from_raw((design.memory_count() + 3) as u32))
                };
                partition.assign_node(n, comp);
                n.to_string()
            }
            FaultKind::DangleBusAssignment => {
                let c = self.pick_channel(channel_count.min(partition.channel_slots()))?;
                partition.assign_channel(c, BusId::from_raw((bus_count + 3) as u32));
                c.to_string()
            }
            FaultKind::UnassignNode => {
                let n = self.pick_node(node_count.min(partition.node_slots()))?;
                partition.unassign_node(n);
                n.to_string()
            }
            FaultKind::UnassignChannel => {
                let c = self.pick_channel(channel_count.min(partition.channel_slots()))?;
                partition.unassign_channel(c);
                c.to_string()
            }
            FaultKind::ZeroBusBitwidth => {
                if bus_count == 0 {
                    return None;
                }
                let b = BusId::from_raw(self.rng.gen_range(0u32..bus_count as u32));
                design.bus_mut(b).set_bitwidth_unchecked(0);
                b.to_string()
            }
            FaultKind::NegateChannelFreq => {
                let c = self.pick_channel(channel_count)?;
                let freq = design.graph_mut().channel_mut(c).freq_mut();
                freq.avg = -freq.avg.abs() - 1.0;
                c.to_string()
            }
            FaultKind::ScrambleFreqBounds => {
                let c = self.pick_channel(channel_count)?;
                *design.graph_mut().channel_mut(c).freq_mut() = AccessFreq::new(
                    self.rng.gen_range(0.0..4.0),
                    10 + self.rng.gen_range(0u64..5),
                    self.rng.gen_range(0u64..5),
                );
                c.to_string()
            }
        };
        Some(AppliedFault { kind, target })
    }

    /// Corrupts specification source text while keeping it valid UTF-8:
    /// either truncates it at a random byte boundary or overwrites one
    /// ASCII byte with a printable junk character. Returns the corrupted
    /// text and a description of the damage.
    pub fn corrupt_spec(&mut self, source: &str) -> (String, String) {
        let bytes = source.as_bytes();
        if bytes.is_empty() {
            return (String::new(), "empty input left as-is".to_owned());
        }
        if self.rng.gen_bool(0.4) {
            // Truncate at a char boundary.
            let mut cut = self.rng.gen_range(0usize..bytes.len());
            while !source.is_char_boundary(cut) {
                cut -= 1;
            }
            (
                source[..cut].to_owned(),
                format!("truncated to {cut} of {} bytes", bytes.len()),
            )
        } else {
            // Overwrite one ASCII byte with printable junk.
            const JUNK: &[u8] = b"@#$~`?\\|^&{}();";
            let mut pos = self.rng.gen_range(0usize..bytes.len());
            while !bytes[pos].is_ascii() {
                pos = (pos + 1) % bytes.len();
            }
            let junk = JUNK[self.rng.gen_range(0usize..JUNK.len())];
            let mut out = source.as_bytes().to_vec();
            out[pos] = junk;
            let corrupted = String::from_utf8(out)
                .expect("single ASCII byte replacement keeps UTF-8 valid");
            (
                corrupted,
                format!("byte {pos} overwritten with `{}`", char::from(junk)),
            )
        }
    }

    /// Corrupts a serialized checkpoint (or any byte blob) in place,
    /// returning a description of the damage. Models the crash/bit-rot
    /// failure classes a checkpoint loader must reject: truncation
    /// (killed mid-write), bit flips and zeroed spans (storage rot), and
    /// a smashed header. On an empty buffer only `Truncate` is a no-op;
    /// the other kinds grow nothing and simply report `"empty"`.
    pub fn corrupt_checkpoint(
        &mut self,
        bytes: &mut Vec<u8>,
        kind: CheckpointFaultKind,
    ) -> String {
        if bytes.is_empty() {
            return "empty blob left as-is".to_owned();
        }
        match kind {
            CheckpointFaultKind::Truncate => {
                let keep = self.rng.gen_range(0usize..bytes.len());
                bytes.truncate(keep);
                format!("truncated to {keep} bytes")
            }
            CheckpointFaultKind::BitFlip => {
                let pos = self.rng.gen_range(0usize..bytes.len());
                let bit = self.rng.gen_range(0u32..8);
                bytes[pos] ^= 1 << bit;
                format!("flipped bit {bit} of byte {pos}")
            }
            CheckpointFaultKind::ZeroSpan => {
                let start = self.rng.gen_range(0usize..bytes.len());
                let len = (self.rng.gen_range(1usize..=16)).min(bytes.len() - start);
                for b in &mut bytes[start..start + len] {
                    *b = 0;
                }
                format!("zeroed {len} bytes at {start}")
            }
            CheckpointFaultKind::HeaderSmash => {
                let span = bytes.len().min(8);
                for b in &mut bytes[..span] {
                    *b = self.rng.gen_range(0u8..=255);
                }
                format!("rewrote the first {span} bytes")
            }
        }
    }

    /// Plans a reproducible schedule of runtime faults for a `count`-job
    /// stream: each slot is `Some(kind)` with probability `ratio` (drawn
    /// uniformly over [`ALL_RUNTIME_FAULT_KINDS`]), else `None`. A soak
    /// harness walks the plan as it submits jobs, so the same seed replays
    /// the same panic/saturation pattern.
    pub fn plan_runtime_faults(
        &mut self,
        count: usize,
        ratio: f64,
    ) -> Vec<Option<RuntimeFaultKind>> {
        let ratio = ratio.clamp(0.0, 1.0);
        (0..count)
            .map(|_| {
                self.rng.gen_bool(ratio).then(|| {
                    ALL_RUNTIME_FAULT_KINDS
                        [self.rng.gen_range(0usize..ALL_RUNTIME_FAULT_KINDS.len())]
                })
            })
            .collect()
    }

    /// Plans a reproducible schedule of store faults for a `count`-cycle
    /// crash-restart soak: each slot is `Some(kind)` with probability
    /// `ratio` (drawn uniformly over [`ALL_STORE_FAULT_KINDS`]), else
    /// `None`. The soak applies the planned damage to on-disk store files
    /// between kill and restart, so the same seed replays the same
    /// corruption pattern.
    pub fn plan_store_faults(&mut self, count: usize, ratio: f64) -> Vec<Option<StoreFaultKind>> {
        let ratio = ratio.clamp(0.0, 1.0);
        (0..count)
            .map(|_| {
                self.rng.gen_bool(ratio).then(|| {
                    ALL_STORE_FAULT_KINDS[self.rng.gen_range(0usize..ALL_STORE_FAULT_KINDS.len())]
                })
            })
            .collect()
    }

    /// Corrupts a durable-store file image in place, returning a
    /// description of the damage. The version-header kind assumes the
    /// shared frame/journal layout (8-byte magic, then a `u32` LE
    /// version at offset 8); the others are layout-agnostic.
    pub fn corrupt_store_file(&mut self, bytes: &mut Vec<u8>, kind: StoreFaultKind) -> String {
        if bytes.is_empty() {
            return "empty blob left as-is".to_owned();
        }
        match kind {
            StoreFaultKind::TornFinalRecord => {
                let cut = self.rng.gen_range(1usize..=16).min(bytes.len());
                let keep = bytes.len() - cut;
                bytes.truncate(keep);
                format!("tore {cut} trailing bytes (kept {keep})")
            }
            StoreFaultKind::MidFileBitFlip => {
                // Skip the first 12 header bytes when the file is long
                // enough, so the flip lands in a record body.
                let lo = if bytes.len() > 12 { 12 } else { 0 };
                let pos = self.rng.gen_range(lo..bytes.len());
                let bit = self.rng.gen_range(0u32..8);
                bytes[pos] ^= 1 << bit;
                format!("flipped bit {bit} of byte {pos}")
            }
            StoreFaultKind::TruncatedSegment => {
                let keep = self.rng.gen_range(0usize..bytes.len());
                bytes.truncate(keep);
                format!("truncated to {keep} bytes")
            }
            StoreFaultKind::StaleVersionHeader => {
                let stale = self.rng.gen_range(2u32..=99);
                if bytes.len() >= 12 {
                    bytes[8..12].copy_from_slice(&stale.to_le_bytes());
                    format!("rewrote header version to {stale}")
                } else {
                    for b in bytes.iter_mut() {
                        *b = 0xff;
                    }
                    "smashed a short header".to_owned()
                }
            }
        }
    }

    /// Plans a reproducible schedule of interchange-format faults for a
    /// `count`-input soak: each slot is `Some(kind)` with probability
    /// `ratio` (drawn uniformly over [`ALL_FORMAT_FAULT_KINDS`]), else
    /// `None`. The soak applies the planned damage to wire-format byte
    /// images before feeding them to the reader (or a server), so the
    /// same seed replays the same hostile-input pattern.
    pub fn plan_format_faults(&mut self, count: usize, ratio: f64) -> Vec<Option<FormatFaultKind>> {
        let ratio = ratio.clamp(0.0, 1.0);
        (0..count)
            .map(|_| {
                self.rng.gen_bool(ratio).then(|| {
                    ALL_FORMAT_FAULT_KINDS[self.rng.gen_range(0usize..ALL_FORMAT_FAULT_KINDS.len())]
                })
            })
            .collect()
    }

    /// Corrupts a wire-format byte image in place, returning a
    /// description of the damage. Text files are recognized by the
    /// `slif-wire` header line; anything else is treated as a binary
    /// segment stream in the shared [`atomic_io`](crate::atomic_io)
    /// frame layout (8-byte magic, `u32` LE version, `u64` LE payload
    /// length, `u64` checksum). Truncation and bit flips are
    /// layout-agnostic; the other kinds pick the text or binary shape
    /// of their attack accordingly.
    pub fn corrupt_wire_bytes(&mut self, bytes: &mut Vec<u8>, kind: FormatFaultKind) -> String {
        if bytes.is_empty() {
            return "empty blob left as-is".to_owned();
        }
        let is_text = bytes.starts_with(b"slif-wire");
        match kind {
            FormatFaultKind::Truncation => {
                let keep = self.rng.gen_range(0usize..bytes.len());
                bytes.truncate(keep);
                format!("truncated to {keep} bytes")
            }
            FormatFaultKind::BitFlip => {
                let pos = self.rng.gen_range(0usize..bytes.len());
                let bit = self.rng.gen_range(0u32..8);
                bytes[pos] ^= 1 << bit;
                format!("flipped bit {bit} of byte {pos}")
            }
            FormatFaultKind::DuplicatedSection => {
                let (start, end) = if is_text {
                    // A text section runs from a `[`-headed line to the
                    // next one (or EOF).
                    let heads: Vec<usize> = line_starts(bytes)
                        .into_iter()
                        .filter(|&i| bytes.get(i) == Some(&b'['))
                        .collect();
                    if heads.is_empty() {
                        let n = bytes.len();
                        bytes.extend_from_slice(&bytes.clone());
                        return format!("no section head; doubled all {n} bytes");
                    }
                    let pick = self.rng.gen_range(0usize..heads.len());
                    let start = heads[pick];
                    let end = heads.get(pick + 1).copied().unwrap_or(bytes.len());
                    (start, end)
                } else {
                    let segs = frame_spans(bytes);
                    if segs.is_empty() {
                        let n = bytes.len();
                        bytes.extend_from_slice(&bytes.clone());
                        return format!("no intact frame; doubled all {n} bytes");
                    }
                    segs[self.rng.gen_range(0usize..segs.len())]
                };
                let dup = bytes[start..end].to_vec();
                let at = end.min(bytes.len());
                bytes.splice(at..at, dup);
                format!("duplicated bytes {start}..{end}")
            }
            FormatFaultKind::HostileDeclaredSize => {
                if is_text {
                    // A record line far beyond any sane line cap.
                    let mut monster = Vec::with_capacity(1 << 17);
                    monster.extend_from_slice(b"\nnode ");
                    monster.resize((1 << 17) - 1, b'a');
                    monster.push(b'\n');
                    let at = self.rng.gen_range(0usize..=bytes.len());
                    let at = line_boundary(bytes, at);
                    bytes.splice(at..at, monster);
                    format!("inserted a {} KiB record line at byte {at}", 1 << 7)
                } else {
                    let segs = frame_spans(bytes);
                    let at = if segs.is_empty() {
                        0
                    } else {
                        segs[self.rng.gen_range(0usize..segs.len())].0
                    };
                    let huge = u64::MAX / 2 + self.rng.gen_range(0u64..1024);
                    if bytes.len() >= at + 20 {
                        bytes[at + 12..at + 20].copy_from_slice(&huge.to_le_bytes());
                        format!("declared a {huge}-byte payload at frame offset {at}")
                    } else {
                        bytes.extend_from_slice(&huge.to_le_bytes());
                        "appended a hostile length tail".to_owned()
                    }
                }
            }
            FormatFaultKind::PathologicalNesting => {
                if is_text {
                    let mut tower = Vec::new();
                    tower.extend_from_slice(b"\n[x-hostile-nest]\n");
                    for _ in 0..64 {
                        tower.extend_from_slice(b"block {\n");
                    }
                    let at = line_boundary(bytes, bytes.len());
                    bytes.splice(at..at, tower);
                    "appended a 64-deep unclosed brace tower".to_owned()
                } else {
                    // Frame headers stuffed inside frame headers: every
                    // level looks like the start of a valid segment.
                    let header: Vec<u8> = bytes.iter().copied().take(28).collect();
                    for _ in 0..64 {
                        bytes.splice(0..0, header.iter().copied());
                    }
                    "stacked 64 frame headers".to_owned()
                }
            }
        }
    }

    /// Plants one analyzer-detectable defect, if the design has a target
    /// for it. Returns what was hit, or `None` when nothing qualifies
    /// (e.g. [`OrphanVariable`](AnalyzableFaultKind::OrphanVariable) on a
    /// design with fewer than two variables). Detecting the damage is
    /// `slif-analyze`'s job; validation stays clean for every kind except
    /// the dangling bus mapping.
    pub fn apply_analyzable(
        &mut self,
        kind: AnalyzableFaultKind,
        design: &mut Design,
        partition: &mut Partition,
    ) -> Option<AppliedAnalyzableFault> {
        let target = match kind {
            AnalyzableFaultKind::DanglingBusMapping => {
                let channel_count = design.graph().channel_count();
                let c = self.pick_channel(channel_count.min(partition.channel_slots()))?;
                let bogus = BusId::from_raw(
                    (design.bus_count() + 1 + self.rng.gen_range(0u32..4) as usize) as u32,
                );
                partition.assign_channel(c, bogus);
                c.to_string()
            }
            AnalyzableFaultKind::OrphanVariable => {
                // Pick a variable something accesses, plus a sibling to
                // absorb the redirected accesses. The victim keeps its
                // declaration and its (now stale) access lists — exactly
                // the state a frontend refactoring bug leaves behind.
                let graph = design.graph();
                let accessed: Vec<NodeId> = graph
                    .variable_ids()
                    .filter(|&v| {
                        graph
                            .channel_ids()
                            .any(|c| graph.channel(c).dst() == AccessTarget::Node(v))
                    })
                    .collect();
                if accessed.is_empty() {
                    return None;
                }
                let victim = accessed[self.rng.gen_range(0usize..accessed.len())];
                let sibling = graph.variable_ids().find(|&w| w != victim)?;
                let redirect: Vec<ChannelId> = graph
                    .channel_ids()
                    .filter(|&c| graph.channel(c).dst() == AccessTarget::Node(victim))
                    .collect();
                for c in redirect {
                    design
                        .graph_mut()
                        .channel_mut(c)
                        .set_dst_unchecked(AccessTarget::Node(sibling));
                }
                victim.to_string()
            }
            AnalyzableFaultKind::ConcurrencyTagConflict => {
                // Two accesses of one variable become writes that both
                // claim membership of the same concurrency group — the
                // annotation asserts parallelism the accesses contradict.
                let graph = design.graph();
                let mut hit = None;
                for v in graph.variable_ids() {
                    let ins: Vec<ChannelId> = graph
                        .channel_ids()
                        .filter(|&c| graph.channel(c).dst() == AccessTarget::Node(v))
                        .collect();
                    if ins.len() >= 2 {
                        hit = Some((v, ins[0], ins[1]));
                        break;
                    }
                }
                let (v, c1, c2) = hit?;
                let group = ConcurrencyTag::group(self.rng.gen_range(0u32..4));
                for c in [c1, c2] {
                    let ch = design.graph_mut().channel_mut(c);
                    ch.set_kind_unchecked(AccessKind::Write);
                    ch.set_tag(group);
                }
                v.to_string()
            }
        };
        Some(AppliedAnalyzableFault { kind, target })
    }

    /// Plants behavior-body dataflow defects into specification source
    /// text: appends one defective behavior per requested kind, each
    /// under a seeded unique name so repeated planting never collides.
    /// The defects are *semantic* — the mutated source still parses and
    /// resolves — and each body is built to trip exactly its kind's lint
    /// ([`DataflowDefectKind::lint_code`]): the poisoned value is always
    /// read afterwards (except for the dead store, whose point is that it
    /// is not), so no kind cross-fires another flow lint. Returns the
    /// mutated source and the planted behavior names, in `kinds` order.
    pub fn plant_dataflow_defects(
        &mut self,
        source: &str,
        kinds: &[DataflowDefectKind],
    ) -> (String, Vec<String>) {
        let mut out = source.to_owned();
        if !out.ends_with('\n') {
            out.push('\n');
        }
        let mut names = Vec::with_capacity(kinds.len());
        for &kind in kinds {
            let name = loop {
                let candidate = format!(
                    "fz_{}_{:04x}",
                    self.rng.gen_range(0u32..0x1_0000),
                    self.rng.gen_range(0u32..0x1_0000)
                );
                if !out.contains(&candidate) {
                    break candidate;
                }
            };
            let body = match kind {
                DataflowDefectKind::OverflowRange => format!(
                    "func {name}() -> int<8> {{ var t : int<8>; t = 300; return t; }}\n"
                ),
                DataflowDefectKind::UninitRead => {
                    format!("func {name}() -> int<8> {{ var u : int<8>; return u; }}\n")
                }
                DataflowDefectKind::DeadStore => {
                    format!("proc {name}() {{ var t : int<8>; t = 1; }}\n")
                }
                DataflowDefectKind::ConstantFalseGuard => format!(
                    "func {name}() -> int<8> {{ var t : int<8>; t = 1; \
                     if t > 5 {{ t = 2; }} else {{ t = 3; }} return t; }}\n"
                ),
            };
            out.push_str(&body);
            names.push(name);
        }
        (out, names)
    }

    /// Plants `count` random analyzer-detectable defects, redrawing kinds
    /// that find no target (mirrors [`corrupt`](Self::corrupt)).
    pub fn corrupt_analyzable(
        &mut self,
        design: &mut Design,
        partition: &mut Partition,
        count: usize,
    ) -> Vec<AppliedAnalyzableFault> {
        let mut applied = Vec::with_capacity(count);
        let mut attempts = 0usize;
        while applied.len() < count && attempts < count * 32 {
            attempts += 1;
            let kind = ALL_ANALYZABLE_FAULT_KINDS
                [self.rng.gen_range(0usize..ALL_ANALYZABLE_FAULT_KINDS.len())];
            if let Some(fault) = self.apply_analyzable(kind, design, partition) {
                applied.push(fault);
            }
        }
        applied
    }

    fn pick_node(&mut self, count: usize) -> Option<NodeId> {
        (count > 0).then(|| NodeId::from_raw(self.rng.gen_range(0u32..count as u32)))
    }

    fn pick_channel(&mut self, count: usize) -> Option<crate::ids::ChannelId> {
        (count > 0).then(|| crate::ids::ChannelId::from_raw(self.rng.gen_range(0u32..count as u32)))
    }
}

/// Byte offsets at which lines start: 0, plus one past every newline
/// that is not the final byte.
fn line_starts(bytes: &[u8]) -> Vec<usize> {
    let mut starts = vec![0];
    starts.extend(
        bytes
            .iter()
            .enumerate()
            .filter(|&(i, &b)| b == b'\n' && i + 1 < bytes.len())
            .map(|(i, _)| i + 1),
    );
    starts
}

/// Snaps `at` back to the nearest line start at or before it.
fn line_boundary(bytes: &[u8], at: usize) -> usize {
    let at = at.min(bytes.len());
    bytes[..at]
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |i| i + 1)
}

/// The `(start, end)` spans of plausibly-framed segments in an
/// `atomic_io`-style stream, found by walking declared payload lengths
/// from the top. Stops at the first span that does not fit; checksums
/// are not verified (the caller is about to corrupt the bytes anyway).
fn frame_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut at = 0usize;
    while bytes.len().saturating_sub(at) >= 28 {
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&bytes[at + 12..at + 20]);
        let len = u64::from_le_bytes(len_bytes);
        let Ok(len) = usize::try_from(len) else { break };
        let Some(end) = at.checked_add(28).and_then(|h| h.checked_add(len)) else {
            break;
        };
        if end > bytes.len() {
            break;
        }
        spans.push((at, end));
        at = end;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::DesignGenerator;
    use crate::validate::validate;

    #[test]
    fn same_seed_same_faults() {
        let (d0, p0) = DesignGenerator::new(5).build();
        let (mut d1, mut p1) = (d0.clone(), p0.clone());
        let (mut d2, mut p2) = (d0.clone(), p0.clone());
        let a1 = FaultInjector::new(99).corrupt(&mut d1, &mut p1, 4);
        let a2 = FaultInjector::new(99).corrupt(&mut d2, &mut p2, 4);
        assert_eq!(a1, a2);
        assert_eq!(d1, d2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn corrupt_applies_requested_count() {
        let (mut d, mut p) = DesignGenerator::new(1).build();
        let applied = FaultInjector::new(1).corrupt(&mut d, &mut p, 5);
        assert_eq!(applied.len(), 5);
    }

    #[test]
    fn every_fault_kind_applies_and_is_detected() {
        for (i, kind) in ALL_FAULT_KINDS.iter().enumerate() {
            let (mut d, mut p) = DesignGenerator::new(7).build();
            let mut inj = FaultInjector::new(i as u64);
            let applied = inj.apply(*kind, &mut d, &mut p);
            assert!(applied.is_some(), "{kind} found no target");
            let report = validate(&d, Some(&p));
            assert!(
                !report.is_clean(),
                "{kind} went undetected by validation"
            );
        }
    }

    #[test]
    fn fault_kinds_display_kebab_case() {
        for kind in ALL_FAULT_KINDS {
            let s = kind.to_string();
            assert!(!s.is_empty());
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{kind:?} renders `{s}`"
            );
        }
        let fault = AppliedFault {
            kind: FaultKind::ZeroBusBitwidth,
            target: "i0".to_owned(),
        };
        assert_eq!(fault.to_string(), "zero-bus-bitwidth on i0");
    }

    #[test]
    fn checkpoint_corruption_is_seeded_and_always_damages() {
        // No zero bytes, so a ZeroSpan always changes content.
        let blob: Vec<u8> = (0u16..256).map(|i| (i % 250 + 1) as u8).collect();
        for (i, kind) in ALL_CHECKPOINT_FAULT_KINDS.iter().enumerate() {
            for seed in 0..16u64 {
                let mut a = blob.clone();
                let mut b = blob.clone();
                let why_a = FaultInjector::new(seed).corrupt_checkpoint(&mut a, *kind);
                let why_b = FaultInjector::new(seed).corrupt_checkpoint(&mut b, *kind);
                assert_eq!(a, b, "{kind}/{seed} not reproducible");
                assert_eq!(why_a, why_b);
                // ZeroSpan can hit already-zero bytes only if the blob had
                // them; this fixture has none at indices it can pick, and
                // the other kinds always change content or length.
                assert!(
                    a != blob || a.len() != blob.len(),
                    "{kind}/{seed} ({why_a}) left the blob intact; index {i}"
                );
            }
        }
        let mut empty = Vec::new();
        let why = FaultInjector::new(0)
            .corrupt_checkpoint(&mut empty, CheckpointFaultKind::BitFlip);
        assert!(empty.is_empty());
        assert!(why.contains("empty"));
    }

    #[test]
    fn checkpoint_fault_kinds_display_kebab_case() {
        for kind in ALL_CHECKPOINT_FAULT_KINDS {
            let s = kind.to_string();
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{kind:?} renders `{s}`"
            );
        }
    }

    #[test]
    fn runtime_fault_plans_are_seeded_and_ratio_bounded() {
        let a = FaultInjector::new(42).plan_runtime_faults(500, 0.3);
        let b = FaultInjector::new(42).plan_runtime_faults(500, 0.3);
        assert_eq!(a, b, "plans are not reproducible");
        assert_eq!(a.len(), 500);
        let faulted = a.iter().filter(|s| s.is_some()).count();
        // 0.3 of 500 = 150 expected; allow a wide statistical band.
        assert!((75..=225).contains(&faulted), "{faulted} faults of 500");
        // Both kinds appear in a long enough plan.
        for kind in ALL_RUNTIME_FAULT_KINDS {
            assert!(
                a.iter().any(|s| *s == Some(kind)),
                "{kind} never planned"
            );
        }
        assert!(FaultInjector::new(0)
            .plan_runtime_faults(100, 0.0)
            .iter()
            .all(|s| s.is_none()));
        assert!(FaultInjector::new(0)
            .plan_runtime_faults(100, 2.0)
            .iter()
            .all(|s| s.is_some()));
    }

    #[test]
    fn runtime_fault_kinds_display_kebab_case() {
        for kind in ALL_RUNTIME_FAULT_KINDS {
            let s = kind.to_string();
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{kind:?} renders `{s}`"
            );
        }
    }

    #[test]
    fn store_fault_plans_are_seeded_and_ratio_bounded() {
        let a = FaultInjector::new(17).plan_store_faults(400, 0.35);
        let b = FaultInjector::new(17).plan_store_faults(400, 0.35);
        assert_eq!(a, b, "plans are not reproducible");
        assert_eq!(a.len(), 400);
        let faulted = a.iter().filter(|s| s.is_some()).count();
        // 0.35 of 400 = 140 expected; allow a wide statistical band.
        assert!((70..=210).contains(&faulted), "{faulted} faults of 400");
        for kind in ALL_STORE_FAULT_KINDS {
            assert!(a.iter().any(|s| *s == Some(kind)), "{kind} never planned");
        }
        assert!(FaultInjector::new(0)
            .plan_store_faults(50, 0.0)
            .iter()
            .all(|s| s.is_none()));
    }

    #[test]
    fn store_corruption_is_seeded_and_always_damages() {
        // No zero bytes and no 0xff bytes, so every kind changes content
        // or length.
        let blob: Vec<u8> = (0u16..256).map(|i| (i % 200 + 1) as u8).collect();
        for kind in ALL_STORE_FAULT_KINDS {
            for seed in 0..16u64 {
                let mut a = blob.clone();
                let mut b = blob.clone();
                let why_a = FaultInjector::new(seed).corrupt_store_file(&mut a, kind);
                let why_b = FaultInjector::new(seed).corrupt_store_file(&mut b, kind);
                assert_eq!(a, b, "{kind}/{seed} not reproducible");
                assert_eq!(why_a, why_b);
                assert!(
                    a != blob || a.len() != blob.len(),
                    "{kind}/{seed} ({why_a}) left the blob intact"
                );
            }
        }
        // A torn final record loses at most 16 bytes.
        let mut torn = blob.clone();
        FaultInjector::new(3).corrupt_store_file(&mut torn, StoreFaultKind::TornFinalRecord);
        assert!(blob.len() - torn.len() <= 16);
        let mut empty = Vec::new();
        let why =
            FaultInjector::new(0).corrupt_store_file(&mut empty, StoreFaultKind::MidFileBitFlip);
        assert!(empty.is_empty());
        assert!(why.contains("empty"));
    }

    #[test]
    fn store_fault_kinds_display_kebab_case() {
        for kind in ALL_STORE_FAULT_KINDS {
            let s = kind.to_string();
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{kind:?} renders `{s}`"
            );
        }
    }

    #[test]
    fn analyzable_faults_are_seeded_and_apply() {
        let (d0, p0) = DesignGenerator::new(5)
            .behaviors(8)
            .variables(5)
            .processors(2)
            .buses(2)
            .build();
        let (mut d1, mut p1) = (d0.clone(), p0.clone());
        let (mut d2, mut p2) = (d0.clone(), p0.clone());
        let a1 = FaultInjector::new(31).corrupt_analyzable(&mut d1, &mut p1, 3);
        let a2 = FaultInjector::new(31).corrupt_analyzable(&mut d2, &mut p2, 3);
        assert_eq!(a1, a2);
        assert_eq!(d1, d2);
        assert_eq!(p1, p2);
        assert_eq!(a1.len(), 3);

        for (i, kind) in ALL_ANALYZABLE_FAULT_KINDS.iter().enumerate() {
            let (mut d, mut p) = (d0.clone(), p0.clone());
            let applied = FaultInjector::new(i as u64).apply_analyzable(*kind, &mut d, &mut p);
            assert!(applied.is_some(), "{kind} found no target");
            assert!(d != d0 || p != p0, "{kind} changed nothing");
        }
    }

    #[test]
    fn orphan_and_tag_conflict_pass_validation() {
        // The whole point of these two defects: structurally legal designs
        // that only dataflow analysis objects to.
        for kind in [
            AnalyzableFaultKind::OrphanVariable,
            AnalyzableFaultKind::ConcurrencyTagConflict,
        ] {
            let (mut d, mut p) = DesignGenerator::new(5)
                .behaviors(8)
                .variables(5)
                .processors(2)
                .buses(2)
                .build();
            FaultInjector::new(9)
                .apply_analyzable(kind, &mut d, &mut p)
                .unwrap_or_else(|| panic!("{kind} found no target"));
            let report = validate(&d, Some(&p));
            assert!(report.is_clean(), "{kind} tripped validation: {report}");
        }
    }

    #[test]
    fn analyzable_fault_kinds_display_kebab_case() {
        for kind in ALL_ANALYZABLE_FAULT_KINDS {
            let s = kind.to_string();
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{kind:?} renders `{s}`"
            );
        }
        let fault = AppliedAnalyzableFault {
            kind: AnalyzableFaultKind::OrphanVariable,
            target: "bv2".to_owned(),
        };
        assert_eq!(fault.to_string(), "orphan-variable on bv2");
    }

    #[test]
    fn spec_corruption_keeps_utf8_and_is_seeded() {
        let src = "system S;\nvar x : int<8>;\nprocess P { x = 1; }\n";
        for seed in 0..32u64 {
            let (a, why_a) = FaultInjector::new(seed).corrupt_spec(src);
            let (b, _) = FaultInjector::new(seed).corrupt_spec(src);
            assert_eq!(a, b, "seed {seed} not reproducible");
            assert!(a.len() <= src.len());
            assert!(!why_a.is_empty());
            // `a` is a String, so UTF-8 validity held by construction.
        }
        let (empty, why) = FaultInjector::new(0).corrupt_spec("");
        assert!(empty.is_empty());
        assert!(why.contains("empty"));
    }

    #[test]
    fn format_fault_plans_are_seeded_and_ratio_bounded() {
        let a = FaultInjector::new(23).plan_format_faults(600, 0.4);
        let b = FaultInjector::new(23).plan_format_faults(600, 0.4);
        assert_eq!(a, b, "plans are not reproducible");
        assert_eq!(a.len(), 600);
        let faulted = a.iter().filter(|s| s.is_some()).count();
        assert!(faulted > 120 && faulted < 360, "ratio off: {faulted}/600");
        assert!(FaultInjector::new(1)
            .plan_format_faults(50, 0.0)
            .iter()
            .all(Option::is_none));
    }

    #[test]
    fn format_corruption_is_seeded_and_always_damages() {
        let text = b"slif-wire 1\n[design]\ndesign t\nclass p std-processor\n[end]\ncheck 00\n"
            .to_vec();
        let mut bin = crate::atomic_io::frame(b"TESTMAGC", 1, b"hello segment one");
        bin.extend_from_slice(&crate::atomic_io::frame(b"TESTMAGC", 1, b"and segment two"));
        for blob in [text, bin] {
            for kind in ALL_FORMAT_FAULT_KINDS {
                for seed in 0..8u64 {
                    let mut a = blob.clone();
                    let mut b = blob.clone();
                    let why_a = FaultInjector::new(seed).corrupt_wire_bytes(&mut a, kind);
                    let why_b = FaultInjector::new(seed).corrupt_wire_bytes(&mut b, kind);
                    assert_eq!(a, b, "{kind}/{seed} not reproducible");
                    assert_eq!(why_a, why_b);
                    assert!(
                        a != blob || a.len() != blob.len(),
                        "{kind}/{seed} ({why_a}) left the image intact"
                    );
                }
            }
        }
        let mut empty = Vec::new();
        let why = FaultInjector::new(0).corrupt_wire_bytes(&mut empty, FormatFaultKind::Truncation);
        assert!(empty.is_empty());
        assert!(why.contains("empty"));
    }

    #[test]
    fn format_fault_kinds_display_kebab_case() {
        for kind in ALL_FORMAT_FAULT_KINDS {
            let s = kind.to_string();
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{kind:?} renders `{s}`"
            );
        }
    }
}
