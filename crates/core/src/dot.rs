//! Graphviz DOT export of the access graph.
//!
//! Reproduces the paper's Figure 2 (basic SLIF-AG: bold process nodes,
//! plain procedure nodes, rounded variable nodes) and Figure 3 (annotated
//! SLIF: edge labels with bits/accfreq, node labels with ict lists).

use crate::design::Design;
use crate::graph::AccessGraph;
use crate::ids::AccessTarget;
use crate::node::NodeKind;
use std::fmt::Write as _;

/// What to include in a DOT rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DotStyle {
    /// Figure-2 style: topology only.
    #[default]
    Basic,
    /// Figure-3 style: bits/accfreq edge labels and ict node annotations.
    Annotated,
}

/// Renders the access graph as a Graphviz `digraph`.
///
/// # Examples
///
/// ```
/// use slif_core::{AccessGraph, AccessKind, NodeKind, dot::{to_dot, DotStyle}};
///
/// let mut ag = AccessGraph::new();
/// let main = ag.add_node("Main", NodeKind::process());
/// let v = ag.add_node("v", NodeKind::scalar(8));
/// ag.add_channel(main, v.into(), AccessKind::Write)?;
/// let dot = to_dot(&ag, DotStyle::Basic);
/// assert!(dot.starts_with("digraph slif"));
/// # Ok::<(), slif_core::CoreError>(())
/// ```
pub fn to_dot(graph: &AccessGraph, style: DotStyle) -> String {
    let mut out = String::new();
    out.push_str("digraph slif {\n");
    out.push_str("  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n");
    for id in graph.node_ids() {
        let node = graph.node(id);
        let (shape, penwidth) = match node.kind() {
            NodeKind::Behavior { process: true } => ("ellipse", 3.0),
            NodeKind::Behavior { process: false } => ("ellipse", 1.0),
            NodeKind::Variable { .. } => ("box", 1.0),
        };
        let mut label = node.name().to_owned();
        if style == DotStyle::Annotated && !node.ict().is_empty() {
            let icts: Vec<String> = node
                .ict()
                .iter()
                .map(|e| format!("{}:{}", e.class, e.val))
                .collect();
            let _ = write!(label, "\\nict {{{}}}", icts.join(", "));
        }
        let _ = writeln!(
            out,
            "  \"{}\" [shape={shape}, penwidth={penwidth}, label=\"{label}\"];",
            node.name()
        );
    }
    for id in graph.port_ids() {
        let port = graph.port(id);
        let _ = writeln!(
            out,
            "  \"{}\" [shape=plaintext, label=\"{}\"];",
            port.name(),
            port.name()
        );
    }
    for cid in graph.channel_ids() {
        let ch = graph.channel(cid);
        let src = graph.node(ch.src()).name();
        let dst = match ch.dst() {
            AccessTarget::Node(n) => graph.node(n).name().to_owned(),
            AccessTarget::Port(p) => graph.port(p).name().to_owned(),
        };
        match style {
            DotStyle::Basic => {
                let _ = writeln!(out, "  \"{src}\" -> \"{dst}\";");
            }
            DotStyle::Annotated => {
                let _ = writeln!(
                    out,
                    "  \"{src}\" -> \"{dst}\" [label=\"{}b x{}\"];",
                    ch.bits(),
                    ch.freq().avg
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a design's access graph, clustering nodes is left to callers;
/// this simply delegates to [`to_dot`] on the design's graph.
pub fn design_to_dot(design: &Design, style: DotStyle) -> String {
    to_dot(design.graph(), style)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::AccessKind;
    use crate::ids::ClassId;
    use crate::node::PortDirection;

    fn fig2_like() -> AccessGraph {
        let mut ag = AccessGraph::new();
        let main = ag.add_node("FuzzyMain", NodeKind::process());
        let eval = ag.add_node("EvaluateRule", NodeKind::procedure());
        let mr1 = ag.add_node("mr1", NodeKind::array(384, 8));
        let out1 = ag.add_port("out1", PortDirection::Out, 8);
        ag.add_channel(main, eval.into(), AccessKind::Call).unwrap();
        ag.add_channel(eval, mr1.into(), AccessKind::Read).unwrap();
        ag.add_channel(main, out1.into(), AccessKind::Write)
            .unwrap();
        ag
    }

    #[test]
    fn basic_dot_contains_all_objects_and_edges() {
        let dot = to_dot(&fig2_like(), DotStyle::Basic);
        assert!(dot.contains("\"FuzzyMain\""));
        assert!(dot.contains("\"EvaluateRule\""));
        assert!(dot.contains("\"mr1\" [shape=box"));
        assert!(dot.contains("\"out1\" [shape=plaintext"));
        assert!(dot.contains("\"FuzzyMain\" -> \"EvaluateRule\";"));
        assert!(dot.contains("\"EvaluateRule\" -> \"mr1\";"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn process_nodes_are_bold() {
        let dot = to_dot(&fig2_like(), DotStyle::Basic);
        // Process gets penwidth 3, procedure penwidth 1.
        assert!(dot.contains("penwidth=3, label=\"FuzzyMain\""));
        assert!(dot.contains("penwidth=1, label=\"EvaluateRule\""));
    }

    #[test]
    fn annotated_dot_shows_bits_freq_and_ict() {
        let mut ag = fig2_like();
        let eval = ag.node_by_name("EvaluateRule").unwrap();
        ag.node_mut(eval).ict_mut().set(ClassId::from_raw(0), 80);
        let c = ag.channel_ids().nth(1).unwrap();
        ag.channel_mut(c).set_bits(15);
        ag.channel_mut(c).freq_mut().avg = 65.0;
        let dot = to_dot(&ag, DotStyle::Annotated);
        assert!(dot.contains("15b x65"), "{dot}");
        assert!(dot.contains("ict {k0:80}"), "{dot}");
    }
}

/// Renders a partitioned design: nodes grouped into one cluster per
/// processor/memory component, channels labelled with their bus.
///
/// Unassigned nodes land outside every cluster; unassigned channels are
/// drawn dashed.
///
/// # Examples
///
/// ```
/// use slif_core::gen::DesignGenerator;
/// use slif_core::dot::partitioned_to_dot;
///
/// let (design, partition) = DesignGenerator::new(1).build();
/// let dot = partitioned_to_dot(&design, &partition);
/// assert!(dot.contains("subgraph cluster_"));
/// ```
pub fn partitioned_to_dot(design: &Design, partition: &crate::Partition) -> String {
    let g = design.graph();
    let mut out = String::new();
    out.push_str("digraph slif_partition {\n");
    out.push_str("  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n");

    for (idx, pm) in design.pm_refs().enumerate() {
        let comp_name = match pm {
            crate::PmRef::Processor(p) => design.processor(p).name(),
            crate::PmRef::Memory(m) => design.memory(m).name(),
        };
        let _ = writeln!(out, "  subgraph cluster_{idx} {{");
        let _ = writeln!(out, "    label=\"{comp_name}\";");
        for n in partition.nodes_on(pm) {
            let node = g.node(n);
            let (shape, penwidth) = match node.kind() {
                NodeKind::Behavior { process: true } => ("ellipse", 3.0),
                NodeKind::Behavior { process: false } => ("ellipse", 1.0),
                NodeKind::Variable { .. } => ("box", 1.0),
            };
            let _ = writeln!(
                out,
                "    \"{}\" [shape={shape}, penwidth={penwidth}];",
                node.name()
            );
        }
        out.push_str("  }\n");
    }
    // Ports and any unassigned nodes sit outside the clusters.
    for p in g.port_ids() {
        let _ = writeln!(out, "  \"{}\" [shape=plaintext];", g.port(p).name());
    }
    for n in g.node_ids() {
        if partition.node_component(n).is_none() {
            let _ = writeln!(out, "  \"{}\" [style=dotted];", g.node(n).name());
        }
    }
    for c in g.channel_ids() {
        let ch = g.channel(c);
        let src = g.node(ch.src()).name();
        let dst = match ch.dst() {
            AccessTarget::Node(n) => g.node(n).name().to_owned(),
            AccessTarget::Port(p) => g.port(p).name().to_owned(),
        };
        match partition.channel_bus(c) {
            Some(bus) => {
                let _ = writeln!(
                    out,
                    "  \"{src}\" -> \"{dst}\" [label=\"{}\"];",
                    design.bus(bus).name()
                );
            }
            None => {
                let _ = writeln!(out, "  \"{src}\" -> \"{dst}\" [style=dashed];");
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod partitioned_tests {
    use super::*;
    use crate::gen::DesignGenerator;

    #[test]
    fn clusters_cover_every_assigned_node() {
        let (design, partition) = DesignGenerator::new(3).build();
        let dot = partitioned_to_dot(&design, &partition);
        assert!(dot.starts_with("digraph slif_partition"));
        for n in design.graph().node_ids() {
            assert!(
                dot.contains(&format!("\"{}\"", design.graph().node(n).name())),
                "missing node {}",
                design.graph().node(n).name()
            );
        }
        // One cluster per component.
        let clusters = dot.matches("subgraph cluster_").count();
        assert_eq!(clusters, design.processor_count() + design.memory_count());
    }

    #[test]
    fn channels_carry_bus_labels() {
        let (design, partition) = DesignGenerator::new(4).build();
        let dot = partitioned_to_dot(&design, &partition);
        assert!(dot.contains("label=\"bus0\""));
        assert!(!dot.contains("style=dashed"), "all channels are mapped");
    }

    #[test]
    fn unassigned_objects_are_marked() {
        let (design, mut partition) = DesignGenerator::new(5).build();
        let n = design.graph().node_ids().next().unwrap();
        let c = design.graph().channel_ids().next().unwrap();
        partition.unassign_node(n);
        partition.unassign_channel(c);
        let dot = partitioned_to_dot(&design, &partition);
        assert!(dot.contains("style=dotted"));
        assert!(dot.contains("style=dashed"));
    }
}
