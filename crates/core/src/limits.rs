//! Resource caps for graph construction and compilation.
//!
//! A design built from an untrusted specification can ask for an
//! arbitrary number of nodes, ports, and channels — and the dense weight
//! tables of [`CompiledDesign`](crate::CompiledDesign) multiply the node
//! count by the class count, so a hostile input can turn a modest graph
//! into a gigabyte allocation. [`GraphLimits`] makes every such hazard a
//! typed [`CoreError::LimitExceeded`] instead of an OOM or a hang:
//!
//! * [`AccessGraph::check_limits`](crate::AccessGraph::check_limits)
//!   audits a finished graph,
//! * the `try_add_*_bounded` adders on
//!   [`AccessGraph`](crate::AccessGraph) refuse growth past a cap,
//! * [`CompiledDesign::compile_bounded`](crate::CompiledDesign::compile_bounded)
//!   guards the compilation allocations (including the `nodes × classes`
//!   weight-table product).
//!
//! The defaults are far above anything the paper's benchmarks need while
//! still bounding worst-case memory.

/// Hard caps on the size of one access graph / design.
///
/// # Examples
///
/// ```
/// use slif_core::{AccessGraph, CoreError, GraphLimits, NodeKind};
///
/// let limits = GraphLimits::default().with_max_nodes(1);
/// let mut ag = AccessGraph::new();
/// ag.try_add_node_bounded("a", NodeKind::process(), &limits)?;
/// let err = ag
///     .try_add_node_bounded("b", NodeKind::process(), &limits)
///     .unwrap_err();
/// assert!(matches!(err, CoreError::LimitExceeded { what: "node", .. }));
/// # Ok::<(), slif_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct GraphLimits {
    /// Maximum behavior/variable node count (default 1 048 576).
    pub max_nodes: usize,
    /// Maximum external port count (default 65 536).
    pub max_ports: usize,
    /// Maximum channel (access) count (default 4 194 304).
    pub max_channels: usize,
    /// Maximum `nodes × classes` dense weight-table cells a compilation
    /// may allocate (default 16 777 216).
    pub max_weight_cells: usize,
}

impl Default for GraphLimits {
    fn default() -> Self {
        Self {
            max_nodes: 1 << 20,
            max_ports: 1 << 16,
            max_channels: 1 << 22,
            max_weight_cells: 1 << 24,
        }
    }
}

impl GraphLimits {
    /// The default caps.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the node count.
    #[must_use]
    pub fn with_max_nodes(mut self, max_nodes: usize) -> Self {
        self.max_nodes = max_nodes;
        self
    }

    /// Caps the port count.
    #[must_use]
    pub fn with_max_ports(mut self, max_ports: usize) -> Self {
        self.max_ports = max_ports;
        self
    }

    /// Caps the channel count.
    #[must_use]
    pub fn with_max_channels(mut self, max_channels: usize) -> Self {
        self.max_channels = max_channels;
        self
    }

    /// Caps the compiled weight-table size (`nodes × classes` cells).
    #[must_use]
    pub fn with_max_weight_cells(mut self, max_weight_cells: usize) -> Self {
        self.max_weight_cells = max_weight_cells;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_generous() {
        let l = GraphLimits::default();
        assert_eq!(l.max_nodes, 1048576);
        assert_eq!(l.max_ports, 65536);
        assert_eq!(l.max_channels, 4194304);
        assert_eq!(l.max_weight_cells, 16777216);
        assert_eq!(GraphLimits::new(), l);
    }

    #[test]
    fn builders_chain() {
        let l = GraphLimits::new()
            .with_max_nodes(10)
            .with_max_ports(5)
            .with_max_channels(20)
            .with_max_weight_cells(100);
        assert_eq!(
            (l.max_nodes, l.max_ports, l.max_channels, l.max_weight_cells),
            (10, 5, 20, 100)
        );
    }
}
