//! Crash-safe file primitives shared by every on-disk format.
//!
//! Three disciplines every durable artifact in this workspace follows,
//! implemented once:
//!
//! * [`write_atomic`] — the write→fsync→rename dance: bytes go to a
//!   sibling `*.tmp` file which is fsynced and then renamed over the
//!   destination (and the directory entry itself fsynced, best effort),
//!   so a crash mid-write leaves either the previous file or a temp
//!   file — never a half-written blob under the real name.
//! * [`frame`]/[`unframe`] — the versioned, checksummed container every
//!   blob is wrapped in before it touches a disk:
//!
//!   ```text
//!   magic    8 bytes   format-specific (b"SLIFCKPT", b"SLIFCOBJ", ...)
//!   version  u32 LE
//!   length   u64 LE    payload byte count
//!   checksum u64 LE    FNV-1a 64 over the payload
//!   payload  ...
//!   ```
//!
//!   [`unframe`] verifies magic, version, length, and checksum before
//!   handing back a single payload byte, so corruption of any kind
//!   surfaces as a typed [`FrameError`], never as garbage decoded
//!   downstream.
//! * [`fnv1a`] — the FNV-1a 64 checksum used both by the frame and by
//!   per-record journal CRCs.
//!
//! The exploration checkpoint writer (`slif-explore`) and the durable
//! store (`slif-store`) are both built on this module; corrupting any of
//! their files exercises exactly this code.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Byte length of the [`frame`] header (magic + version + length +
/// checksum).
pub const FRAME_HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// FNV-1a 64-bit hash — the workspace's cheap integrity checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Reads a little-endian `u32` from a 4-byte slice.
///
/// # Panics
///
/// Panics if `b` is shorter than 4 bytes; callers bounds-check first.
pub fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Reads a little-endian `u64` from an 8-byte slice.
///
/// # Panics
///
/// Panics if `b` is shorter than 8 bytes; callers bounds-check first.
pub fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Why a framed blob could not be opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// The blob does not start with the expected magic.
    BadMagic,
    /// The blob's version is not the one this build reads.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The blob ends before the announced payload does (or before the
    /// header itself is complete).
    Truncated,
    /// The payload checksum does not match the header.
    ChecksumMismatch,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "bad magic"),
            Self::UnsupportedVersion { found } => write!(f, "unsupported version {found}"),
            Self::Truncated => write!(f, "truncated"),
            Self::ChecksumMismatch => write!(f, "checksum mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Wraps `payload` in the versioned, checksummed container.
pub fn frame(magic: &[u8; 8], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Verifies a framed blob's magic, version, length, and checksum, and
/// returns the payload slice.
///
/// # Errors
///
/// A typed [`FrameError`] on any deviation; no payload byte is exposed
/// until every header check has passed.
pub fn unframe<'a>(
    magic: &[u8; 8],
    version: u32,
    bytes: &'a [u8],
) -> Result<&'a [u8], FrameError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    if bytes[..8] != magic[..] {
        return Err(FrameError::BadMagic);
    }
    let found = le_u32(&bytes[8..12]);
    if found != version {
        return Err(FrameError::UnsupportedVersion { found });
    }
    let length = le_u64(&bytes[12..20]);
    let checksum = le_u64(&bytes[20..28]);
    let payload = &bytes[FRAME_HEADER_LEN..];
    if (payload.len() as u64) != length {
        return Err(FrameError::Truncated);
    }
    if fnv1a(payload) != checksum {
        return Err(FrameError::ChecksumMismatch);
    }
    Ok(payload)
}

/// Writes `bytes` to `path` atomically: temp file, fsync, rename, then
/// a best-effort fsync of the parent directory so the rename itself is
/// durable.
///
/// # Errors
///
/// Any filesystem error from the create/write/fsync/rename steps; the
/// destination is never left half-written.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(".tmp");
    let tmp = Path::new(&tmp_name);
    let mut file = fs::File::create(tmp)?;
    file.write_all(bytes)?;
    // fsync before rename: the rename must never make visible a file
    // whose data is still in the page cache only.
    file.sync_all()?;
    drop(file);
    fs::rename(tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; 8] = *b"SLIFTEST";

    #[test]
    fn frame_round_trips() {
        for payload in [&b""[..], b"x", b"hello framed world"] {
            let framed = frame(&MAGIC, 3, payload);
            assert_eq!(unframe(&MAGIC, 3, &framed), Ok(payload));
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let framed = frame(&MAGIC, 1, b"payload bytes here");
        for len in 0..framed.len() {
            let err = unframe(&MAGIC, 1, &framed[..len]).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated | FrameError::ChecksumMismatch),
                "prefix of {len} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_version_and_checksum_are_typed() {
        let good = frame(&MAGIC, 1, b"payload");
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert_eq!(unframe(&MAGIC, 1, &bad), Err(FrameError::BadMagic));
        assert_eq!(
            unframe(&MAGIC, 2, &good),
            Err(FrameError::UnsupportedVersion { found: 1 })
        );
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0x01;
        assert_eq!(unframe(&MAGIC, 1, &bad), Err(FrameError::ChecksumMismatch));
        let mut bad = good;
        bad.push(0xaa);
        assert_eq!(unframe(&MAGIC, 1, &bad), Err(FrameError::Truncated));
    }

    #[test]
    fn write_atomic_leaves_no_temp_droppings() {
        let path = std::env::temp_dir().join("slif-atomic-io-test.bin");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        assert!(!Path::new(&tmp).exists());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fnv1a_matches_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
