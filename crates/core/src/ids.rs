//! Typed identifiers for the objects of a SLIF design.
//!
//! Every object in a [`Design`](crate::Design) — functional objects (nodes,
//! ports, channels) and structural objects (processors, memories, buses,
//! component classes) — is referred to by a small copyable index newtype.
//! The newtypes prevent, at compile time, a bus index from being used where
//! a node index is expected ([C-NEWTYPE]).
//!
//! Identifiers are only meaningful relative to the design that issued them;
//! all accessors on [`Design`](crate::Design) and
//! [`AccessGraph`](crate::AccessGraph) validate indices and panic on
//! out-of-range ids (which indicate ids from a different design).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw index.
            ///
            /// Mostly useful in tests and generators; ordinary code receives
            /// ids from the design builder methods.
            pub fn from_raw(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index backing this id.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a behavior or variable node (an element of `BV_all`).
    NodeId,
    "bv"
);
id_type!(
    /// Identifies an external input/output port (an element of `IO_all`).
    PortId,
    "io"
);
id_type!(
    /// Identifies a communication channel (an element of `C_all`).
    ChannelId,
    "c"
);
id_type!(
    /// Identifies a processor component — standard or custom — (an element of `P_all`).
    ProcessorId,
    "p"
);
id_type!(
    /// Identifies a memory component (an element of `M_all`).
    MemoryId,
    "m"
);
id_type!(
    /// Identifies a bus component (an element of `I_all`).
    BusId,
    "i"
);
id_type!(
    /// Identifies a *component class* (a technology type such as "8-bit
    /// microcontroller" or "gate-array ASIC") against which per-node
    /// `ict`/`size` weights are recorded.
    ClassId,
    "k"
);

/// A reference to a processor or memory component: the two component kinds a
/// node can be mapped to.
///
/// The paper's `GetBvComp(bv)` returns exactly this: "the processor or
/// memory component pm to which bv has been mapped".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PmRef {
    /// A processor (standard processor or custom ASIC).
    Processor(ProcessorId),
    /// A memory component.
    Memory(MemoryId),
}

impl PmRef {
    /// Returns the processor id if this reference denotes a processor.
    pub fn processor(self) -> Option<ProcessorId> {
        match self {
            PmRef::Processor(p) => Some(p),
            PmRef::Memory(_) => None,
        }
    }

    /// Returns the memory id if this reference denotes a memory.
    pub fn memory(self) -> Option<MemoryId> {
        match self {
            PmRef::Memory(m) => Some(m),
            PmRef::Processor(_) => None,
        }
    }
}

impl fmt::Display for PmRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmRef::Processor(p) => write!(f, "{p}"),
            PmRef::Memory(m) => write!(f, "{m}"),
        }
    }
}

impl From<ProcessorId> for PmRef {
    fn from(value: ProcessorId) -> Self {
        PmRef::Processor(value)
    }
}

impl From<MemoryId> for PmRef {
    fn from(value: MemoryId) -> Self {
        PmRef::Memory(value)
    }
}

/// The destination of a channel: a node (behavior or variable) or an
/// external port.
///
/// Per the paper's definition, `c_i = <src, dst>` with `src ∈ B_all` and
/// `dst ∈ BV_all ∪ IO_all`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AccessTarget {
    /// Access to another behavior (a call or message pass) or a variable
    /// (read/write).
    Node(NodeId),
    /// Access to an external port of the system.
    Port(PortId),
}

impl AccessTarget {
    /// Returns the node id if the target is a node.
    pub fn node(self) -> Option<NodeId> {
        match self {
            AccessTarget::Node(n) => Some(n),
            AccessTarget::Port(_) => None,
        }
    }

    /// Returns the port id if the target is an external port.
    pub fn port(self) -> Option<PortId> {
        match self {
            AccessTarget::Port(p) => Some(p),
            AccessTarget::Node(_) => None,
        }
    }
}

impl fmt::Display for AccessTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessTarget::Node(n) => write!(f, "{n}"),
            AccessTarget::Port(p) => write!(f, "{p}"),
        }
    }
}

impl From<NodeId> for AccessTarget {
    fn from(value: NodeId) -> Self {
        AccessTarget::Node(value)
    }
}

impl From<PortId> for AccessTarget {
    fn from(value: PortId) -> Self {
        AccessTarget::Port(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_prefixes() {
        assert_eq!(NodeId::from_raw(3).to_string(), "bv3");
        assert_eq!(PortId::from_raw(0).to_string(), "io0");
        assert_eq!(ChannelId::from_raw(7).to_string(), "c7");
        assert_eq!(ProcessorId::from_raw(1).to_string(), "p1");
        assert_eq!(MemoryId::from_raw(2).to_string(), "m2");
        assert_eq!(BusId::from_raw(4).to_string(), "i4");
        assert_eq!(ClassId::from_raw(5).to_string(), "k5");
    }

    #[test]
    fn raw_roundtrip() {
        let id = NodeId::from_raw(42);
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn pm_ref_accessors() {
        let p = PmRef::from(ProcessorId::from_raw(1));
        assert_eq!(p.processor(), Some(ProcessorId::from_raw(1)));
        assert_eq!(p.memory(), None);
        let m = PmRef::from(MemoryId::from_raw(9));
        assert_eq!(m.memory(), Some(MemoryId::from_raw(9)));
        assert_eq!(m.processor(), None);
    }

    #[test]
    fn access_target_accessors() {
        let t = AccessTarget::from(NodeId::from_raw(5));
        assert_eq!(t.node(), Some(NodeId::from_raw(5)));
        assert_eq!(t.port(), None);
        let t = AccessTarget::from(PortId::from_raw(6));
        assert_eq!(t.port(), Some(PortId::from_raw(6)));
        assert_eq!(t.node(), None);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::from_raw(1) < NodeId::from_raw(2));
        assert_eq!(PmRef::from(ProcessorId::from_raw(0)).to_string(), "p0");
    }
}
