//! Functional objects: behavior and variable nodes, and external ports.
//!
//! SLIF's functional objects are of *system-level granularity*: processes,
//! procedures, variables and communication channels (Section 2.2). Each
//! behavior or variable from the specification becomes one [`Node`] of the
//! access graph; external ports become [`Port`]s.

use crate::annotation::WeightList;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A behavior: a process or procedure of the specification.
    ///
    /// `process == true` marks a top-level concurrent process (drawn bold
    /// in the paper's Figure 2); `false` marks a procedure. Finer
    /// granularity can be obtained by treating basic blocks as procedures.
    Behavior {
        /// Whether this behavior is a concurrent process.
        process: bool,
    },
    /// A variable of the specification.
    Variable {
        /// Number of storage words the variable occupies (1 for a scalar,
        /// the element count for an array).
        words: u64,
        /// Bits per word.
        word_bits: u32,
    },
}

impl NodeKind {
    /// Shorthand for a process behavior.
    pub fn process() -> Self {
        NodeKind::Behavior { process: true }
    }

    /// Shorthand for a procedure behavior.
    pub fn procedure() -> Self {
        NodeKind::Behavior { process: false }
    }

    /// Shorthand for a scalar variable of `bits` bits.
    pub fn scalar(bits: u32) -> Self {
        NodeKind::Variable {
            words: 1,
            word_bits: bits,
        }
    }

    /// Shorthand for an array variable.
    pub fn array(words: u64, word_bits: u32) -> Self {
        NodeKind::Variable { words, word_bits }
    }

    /// Returns `true` for behaviors (processes and procedures).
    pub fn is_behavior(&self) -> bool {
        matches!(self, NodeKind::Behavior { .. })
    }

    /// Returns `true` for variables.
    pub fn is_variable(&self) -> bool {
        matches!(self, NodeKind::Variable { .. })
    }

    /// Returns `true` for process behaviors only.
    pub fn is_process(&self) -> bool {
        matches!(self, NodeKind::Behavior { process: true })
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Behavior { process: true } => f.write_str("process"),
            NodeKind::Behavior { process: false } => f.write_str("procedure"),
            NodeKind::Variable { words, word_bits } => {
                write!(f, "variable[{words}x{word_bits}b]")
            }
        }
    }
}

/// A behavior or variable node of the access graph (an element of
/// `BV_all = B_all ∪ V_all`).
///
/// The contents of behavior nodes are deliberately left unspecified
/// (Section 2.2); what the node carries instead are the *abstractions* of
/// those contents needed for estimation:
///
/// * [`ict`](Node::ict): internal computation time per component class
///   (for variables: storage access time per class),
/// * [`size`](Node::size): size per component class (bytes on a standard
///   processor, gates on an ASIC, words in a memory).
///
/// # Examples
///
/// ```
/// use slif_core::{ClassId, Node, NodeKind};
///
/// let mut conv = Node::new("Convolve", NodeKind::procedure());
/// conv.ict_mut().set(ClassId::from_raw(0), 80); // 80 time units on class 0
/// conv.ict_mut().set(ClassId::from_raw(1), 10);
/// assert!(conv.kind().is_behavior());
/// assert_eq!(conv.ict().get(ClassId::from_raw(1)), Some(10));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    name: String,
    kind: NodeKind,
    ict: WeightList,
    size: WeightList,
}

impl Node {
    /// Creates a node with empty annotation lists.
    pub fn new(name: impl Into<String>, kind: NodeKind) -> Self {
        Self {
            name: name.into(),
            kind,
            ict: WeightList::new(),
            size: WeightList::new(),
        }
    }

    /// The node's name from the specification.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// What the node represents.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// Internal-computation-time weights (`ict_list`). For a variable node
    /// this is the time to read or write the storage on each class.
    pub fn ict(&self) -> &WeightList {
        &self.ict
    }

    /// Mutable access to the `ict_list` for annotation.
    pub fn ict_mut(&mut self) -> &mut WeightList {
        &mut self.ict
    }

    /// Size weights (`size_list`): bytes / gates / words per class.
    pub fn size(&self) -> &WeightList {
        &self.size
    }

    /// Mutable access to the `size_list` for annotation.
    pub fn size_mut(&mut self) -> &mut WeightList {
        &mut self.size
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.kind)
    }
}

/// Direction of an external port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortDirection {
    /// Data flows into the system.
    In,
    /// Data flows out of the system.
    Out,
    /// Bidirectional port.
    InOut,
}

impl fmt::Display for PortDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PortDirection::In => "in",
            PortDirection::Out => "out",
            PortDirection::InOut => "inout",
        };
        f.write_str(s)
    }
}

/// An external input/output port of the system (an element of `IO_all`).
///
/// # Examples
///
/// ```
/// use slif_core::{Port, PortDirection};
///
/// let p = Port::new("in1", PortDirection::In, 8);
/// assert_eq!(p.bits(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Port {
    name: String,
    direction: PortDirection,
    bits: u32,
}

impl Port {
    /// Creates a port.
    pub fn new(name: impl Into<String>, direction: PortDirection, bits: u32) -> Self {
        Self {
            name: name.into(),
            direction,
            bits,
        }
    }

    /// The port's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The port's direction.
    pub fn direction(&self) -> PortDirection {
        self.direction
    }

    /// Width of the port's data in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} : {} {}b", self.name, self.direction, self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClassId;

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::process().is_behavior());
        assert!(NodeKind::process().is_process());
        assert!(NodeKind::procedure().is_behavior());
        assert!(!NodeKind::procedure().is_process());
        assert!(NodeKind::scalar(8).is_variable());
        assert!(!NodeKind::scalar(8).is_behavior());
        assert!(NodeKind::array(384, 8).is_variable());
    }

    #[test]
    fn scalar_and_array_shapes() {
        if let NodeKind::Variable { words, word_bits } = NodeKind::scalar(16) {
            assert_eq!((words, word_bits), (1, 16));
        } else {
            panic!("expected variable");
        }
        if let NodeKind::Variable { words, word_bits } = NodeKind::array(128, 8) {
            assert_eq!((words, word_bits), (128, 8));
        } else {
            panic!("expected variable");
        }
    }

    #[test]
    fn node_annotation_roundtrip() {
        let mut n = Node::new("EvaluateRule", NodeKind::procedure());
        n.ict_mut().set(ClassId::from_raw(0), 40);
        n.size_mut().set(ClassId::from_raw(0), 220);
        assert_eq!(n.name(), "EvaluateRule");
        assert_eq!(n.ict().get(ClassId::from_raw(0)), Some(40));
        assert_eq!(n.size().get(ClassId::from_raw(0)), Some(220));
    }

    #[test]
    fn display_is_nonempty() {
        let n = Node::new("FuzzyMain", NodeKind::process());
        assert_eq!(n.to_string(), "FuzzyMain (process)");
        let v = Node::new("mr1", NodeKind::array(384, 8));
        assert_eq!(v.to_string(), "mr1 (variable[384x8b])");
        let p = Port::new("out1", PortDirection::Out, 8);
        assert_eq!(p.to_string(), "out1 : out 8b");
    }
}
