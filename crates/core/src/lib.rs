//! # slif-core — the Specification-Level Intermediate Format
//!
//! A Rust implementation of **SLIF**, the system-level internal format
//! introduced by Frank Vahid ("SLIF: A specification-level intermediate
//! format for system design", DATE 1995 / UCR TR CS-94-06) and used as the
//! core of the SpecSyn system-design environment.
//!
//! SLIF represents a functional specification at *system-level*
//! granularity — processes, procedures, variables, and the communication
//! channels (accesses) between them — together with the system components
//! (processors, memories, buses) the specification is to be mapped onto.
//! A design is the paper's sextuple:
//!
//! ```text
//! < BV_all, IO_all, C_all, P_all, M_all, I_all >
//! ```
//!
//! Because nodes carry *preprocessed* annotations (per-component-class
//! internal computation times and sizes) and channels carry access
//! frequencies and bit counts, design metrics — execution time, bitrate,
//! size, I/O — can be estimated from lookups and sums, in orders of
//! magnitude less time and memory than from operation-granularity formats
//! such as control-dataflow graphs. The estimators themselves live in the
//! `slif-estimate` crate; this crate owns the data model:
//!
//! * [`AccessGraph`] — the functional objects: behavior/variable [`Node`]s,
//!   external [`Port`]s, and [`Channel`] edges (accesses),
//! * [`Design`] — an access graph plus component classes and allocated
//!   [`Processor`]/[`Memory`]/[`Bus`] instances,
//! * [`Partition`] — the mapping of functional objects to components, with
//!   proper-partition validation,
//! * [`CompiledDesign`] — an immutable, query-optimized (CSR adjacency,
//!   dense weight tables) snapshot of a finished design for the
//!   estimation hot path,
//! * [`text`] — a round-tripping textual serialization,
//! * [`dot`] — Graphviz export reproducing the paper's Figures 2 and 3,
//! * [`gen`] — synthetic design generation for tests and benchmarks.
//!
//! # Examples
//!
//! Build a miniature version of the paper's fuzzy-logic controller AG and
//! partition it onto a processor–ASIC architecture:
//!
//! ```
//! use slif_core::{
//!     AccessFreq, AccessKind, Bus, ClassKind, Design, NodeKind, Partition,
//! };
//!
//! let mut d = Design::new("fuzzy-mini");
//! let proc_class = d.add_class("proc8", ClassKind::StdProcessor);
//! let asic_class = d.add_class("asic", ClassKind::CustomHw);
//!
//! let main = d.graph_mut().add_node("FuzzyMain", NodeKind::process());
//! let conv = d.graph_mut().add_node("Convolve", NodeKind::procedure());
//! let call = d.graph_mut().add_channel(main, conv.into(), AccessKind::Call)?;
//! *d.graph_mut().channel_mut(call).freq_mut() = AccessFreq::exact(1);
//!
//! // Convolve runs in 80 time units on the processor, 10 on the ASIC.
//! for (class, ict) in [(proc_class, 80), (asic_class, 10)] {
//!     d.graph_mut().node_mut(conv).ict_mut().set(class, ict);
//! }
//!
//! let cpu = d.add_processor("cpu0", proc_class);
//! let asic = d.add_processor("asic0", asic_class);
//! let bus = d.add_bus(Bus::new("mainbus", 16, 1, 4));
//!
//! let mut part = Partition::new(&d);
//! part.assign_node(main, cpu.into());
//! part.assign_node(conv, asic.into());
//! part.assign_channel(call, bus);
//! # let _ = asic;
//! # Ok::<(), slif_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod annotation;
mod channel;
mod compiled;
mod component;
mod design;
mod error;
mod graph;
mod ids;
mod limits;
mod node;
mod partition;
mod txn;

pub mod atomic_io;
pub mod dot;
pub mod faults;
pub mod gen;
pub mod text;
pub mod validate;

pub use annotation::{AccessFreq, ConcurrencyTag, FreqMode, WeightEntry, WeightList};
pub use channel::{AccessKind, Channel};
pub use compiled::{AnnotationDelta, CompiledDesign, CompiledParts};
pub use component::{Bus, ClassKind, ComponentClass, Memory, Processor};
pub use design::Design;
pub use error::CoreError;
pub use graph::AccessGraph;
pub use ids::{
    AccessTarget, BusId, ChannelId, ClassId, MemoryId, NodeId, PmRef, PortId, ProcessorId,
};
pub use limits::GraphLimits;
pub use node::{Node, NodeKind, Port, PortDirection};
pub use partition::Partition;
pub use txn::{PartitionTxn, Savepoint};
pub use validate::{IssueSeverity, ValidationIssue, ValidationReport};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Design>();
        assert_send_sync::<AccessGraph>();
        assert_send_sync::<CompiledDesign>();
        assert_send_sync::<Partition>();
        assert_send_sync::<Channel>();
        assert_send_sync::<Node>();
        assert_send_sync::<CoreError>();
    }
}
