//! Communication channels: the edges of the access graph.
//!
//! A channel represents an *access* by a source behavior to another
//! behavior (a subroutine call or message pass), to a variable (read or
//! write), or to an external port (Section 2.2). Edge direction is the
//! **initiator** of the access, not the direction of data flow — a cycle in
//! the graph therefore represents recursion.

use crate::annotation::{AccessFreq, ConcurrencyTag};
use crate::ids::{AccessTarget, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What flavour of access a channel performs.
///
/// The basic format does not need this distinction (all accesses are
/// edges), but frontends record it because it determines how the `bits`
/// annotation was computed and it is useful for reporting and
/// transformations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A subroutine call to another behavior.
    Call,
    /// A read of a variable or input port.
    Read,
    /// A write of a variable or output port.
    Write,
    /// A message pass to another behavior.
    Message,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Call => "call",
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Message => "message",
        };
        f.write_str(s)
    }
}

/// A channel `c = <src, dst, accfreq, bits>`: one edge of the SLIF access
/// graph, fully annotated.
///
/// * `src` is always a behavior node (`src ∈ B_all`);
/// * `dst` is a behavior, variable, or external port
///   (`dst ∈ BV_all ∪ IO_all`);
/// * [`freq`](Channel::freq) counts accesses per start-to-finish execution
///   of `src`;
/// * [`bits`](Channel::bits) is the number of bits transferred per access —
///   for a scalar its encoding width, for an array element the element
///   width plus the address bits needed to select an element, for a call
///   the total parameter bits, for a message the message encoding width;
/// * [`tag`](Channel::tag) groups same-source channels that may be accessed
///   concurrently.
///
/// # Examples
///
/// ```
/// use slif_core::{AccessFreq, AccessKind, Channel, NodeId};
///
/// // EvaluateRule reads array mr1 65 times per execution, 15 bits per access.
/// let c = Channel::new(
///     NodeId::from_raw(1),
///     NodeId::from_raw(4).into(),
///     AccessKind::Read,
/// )
/// .with_freq(AccessFreq::new(65.0, 0, 130))
/// .with_bits(15);
/// assert_eq!(c.bits(), 15);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    src: NodeId,
    dst: AccessTarget,
    kind: AccessKind,
    freq: AccessFreq,
    bits: u32,
    tag: ConcurrencyTag,
}

impl Channel {
    /// Creates a channel with default annotations (one access of one bit,
    /// sequential).
    pub fn new(src: NodeId, dst: AccessTarget, kind: AccessKind) -> Self {
        Self {
            src,
            dst,
            kind,
            freq: AccessFreq::default(),
            bits: 1,
            tag: ConcurrencyTag::SEQUENTIAL,
        }
    }

    /// Sets the access-frequency annotation (builder style).
    pub fn with_freq(mut self, freq: AccessFreq) -> Self {
        self.freq = freq;
        self
    }

    /// Sets the bits-per-access annotation (builder style).
    pub fn with_bits(mut self, bits: u32) -> Self {
        self.bits = bits;
        self
    }

    /// Sets the concurrency tag (builder style).
    pub fn with_tag(mut self, tag: ConcurrencyTag) -> Self {
        self.tag = tag;
        self
    }

    /// The accessing (initiating) behavior.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// The accessed behavior, variable, or port.
    pub fn dst(&self) -> AccessTarget {
        self.dst
    }

    /// The flavour of access.
    pub fn kind(&self) -> AccessKind {
        self.kind
    }

    /// Accesses per start-to-finish execution of the source behavior.
    pub fn freq(&self) -> AccessFreq {
        self.freq
    }

    /// Mutable access to the frequency annotation.
    pub fn freq_mut(&mut self) -> &mut AccessFreq {
        &mut self.freq
    }

    /// Bits transferred per access.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Sets the bits-per-access annotation.
    pub fn set_bits(&mut self, bits: u32) {
        self.bits = bits;
    }

    /// The concurrency tag.
    pub fn tag(&self) -> ConcurrencyTag {
        self.tag
    }

    /// Sets the concurrency tag.
    pub fn set_tag(&mut self, tag: ConcurrencyTag) {
        self.tag = tag;
    }

    /// Overwrites the source endpoint without revalidating it. Only the
    /// fault injector uses this — it exists precisely to create the
    /// dangling references that robust consumers must survive.
    pub(crate) fn set_src_unchecked(&mut self, src: NodeId) {
        self.src = src;
    }

    /// Overwrites the destination endpoint without revalidating it (fault
    /// injection only; see [`set_src_unchecked`](Self::set_src_unchecked)).
    pub(crate) fn set_dst_unchecked(&mut self, dst: AccessTarget) {
        self.dst = dst;
    }

    /// Overwrites the access kind without endpoint revalidation (fault
    /// injection only; see [`set_src_unchecked`](Self::set_src_unchecked)).
    /// A variable-directed channel forced to `Write` is how the injector
    /// manufactures shared-variable races for the analyzer to find.
    pub(crate) fn set_kind_unchecked(&mut self, kind: AccessKind) {
        self.kind = kind;
    }

    /// Average bits transferred per source execution
    /// (`freq.avg * bits`) — the numerator of the paper's Equation 2.
    pub fn avg_traffic(&self) -> f64 {
        self.freq.avg * f64::from(self.bits)
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} ({}, freq {}, {} bits, {})",
            self.src, self.dst, self.kind, self.freq, self.bits, self.tag
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PortId;

    #[test]
    fn builder_sets_annotations() {
        let c = Channel::new(
            NodeId::from_raw(0),
            AccessTarget::Node(NodeId::from_raw(1)),
            AccessKind::Call,
        )
        .with_freq(AccessFreq::exact(2))
        .with_bits(8)
        .with_tag(ConcurrencyTag::group(1));
        assert_eq!(c.src(), NodeId::from_raw(0));
        assert_eq!(c.dst().node(), Some(NodeId::from_raw(1)));
        assert_eq!(c.kind(), AccessKind::Call);
        assert_eq!(c.freq().avg, 2.0);
        assert_eq!(c.bits(), 8);
        assert!(c.tag().is_concurrent());
    }

    #[test]
    fn defaults_are_one_access_one_bit_sequential() {
        let c = Channel::new(
            NodeId::from_raw(0),
            AccessTarget::Port(PortId::from_raw(0)),
            AccessKind::Write,
        );
        assert_eq!(c.freq().avg, 1.0);
        assert_eq!(c.bits(), 1);
        assert_eq!(c.tag(), ConcurrencyTag::SEQUENTIAL);
    }

    #[test]
    fn avg_traffic_multiplies_freq_and_bits() {
        let c = Channel::new(
            NodeId::from_raw(0),
            AccessTarget::Node(NodeId::from_raw(1)),
            AccessKind::Read,
        )
        .with_freq(AccessFreq::new(65.0, 0, 130))
        .with_bits(15);
        assert_eq!(c.avg_traffic(), 975.0);
    }

    #[test]
    fn mutators_update_annotations() {
        let mut c = Channel::new(
            NodeId::from_raw(0),
            AccessTarget::Node(NodeId::from_raw(1)),
            AccessKind::Write,
        );
        c.set_bits(32);
        c.set_tag(ConcurrencyTag::group(7));
        c.freq_mut().avg = 3.5;
        assert_eq!(c.bits(), 32);
        assert_eq!(c.tag().id(), Some(7));
        assert_eq!(c.freq().avg, 3.5);
    }

    #[test]
    fn display_mentions_all_annotations() {
        let c = Channel::new(
            NodeId::from_raw(2),
            AccessTarget::Node(NodeId::from_raw(5)),
            AccessKind::Read,
        )
        .with_bits(15)
        .with_freq(AccessFreq::exact(65));
        let s = c.to_string();
        assert!(s.contains("bv2"), "{s}");
        assert!(s.contains("bv5"), "{s}");
        assert!(s.contains("15 bits"), "{s}");
    }
}
