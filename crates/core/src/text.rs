//! Textual SLIF serialization.
//!
//! A line-oriented, human-readable exchange format for designs and
//! partitions, so that a SLIF built once (the expensive step, Figure 4's
//! T-slif column) can be stored and reloaded by later tool runs. The
//! format round-trips exactly: `parse_design(&write_design(d)) == d`.
//!
//! ```text
//! slif 1
//! design fuzzy
//! class proc8 std-processor
//! port in1 in 8
//! node FuzzyMain process
//!   ict proc8 120
//!   size proc8 940
//! node mr1 variable 384 8
//! channel EvaluateRule mr1 read freq 65 0 130 bits 15 tag seq
//! processor cpu0 proc8 size 4096 pins 64
//! memory ram0 sram size 65536
//! bus mainbus 16 1 4 cap 1200
//! ```

use crate::annotation::{AccessFreq, ConcurrencyTag, WeightEntry};
use crate::channel::AccessKind;
use crate::component::{Bus, ClassKind, Memory, Processor};
use crate::design::Design;
use crate::ids::{AccessTarget, NodeId, PmRef};
use crate::node::{NodeKind, PortDirection};
use crate::partition::Partition;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Error parsing the textual SLIF format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTextError {
    line: usize,
    message: String,
}

impl ParseTextError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// The 1-based line number the error occurred on.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseTextError {}

/// Serializes a design to the textual SLIF format.
///
/// # Panics
///
/// Panics if any object name contains whitespace (frontends only produce
/// identifier names).
pub fn write_design(design: &Design) -> String {
    let g = design.graph();
    let mut out = String::new();
    let _ = writeln!(out, "slif 1");
    let _ = writeln!(out, "design {}", check_name(design.name()));
    for k in design.class_ids() {
        let c = design.class(k);
        let _ = writeln!(out, "class {} {}", check_name(c.name()), c.kind());
    }
    for p in g.port_ids() {
        let port = g.port(p);
        let _ = writeln!(
            out,
            "port {} {} {}",
            check_name(port.name()),
            port.direction(),
            port.bits()
        );
    }
    for n in g.node_ids() {
        let node = g.node(n);
        match node.kind() {
            NodeKind::Behavior { process } => {
                let _ = writeln!(
                    out,
                    "node {} {}",
                    check_name(node.name()),
                    if process { "process" } else { "procedure" }
                );
            }
            NodeKind::Variable { words, word_bits } => {
                let _ = writeln!(
                    out,
                    "node {} variable {words} {word_bits}",
                    check_name(node.name())
                );
            }
        }
        for e in node.ict().iter() {
            let _ = writeln!(out, "  ict {} {}", design.class(e.class).name(), e.val);
        }
        for e in node.size().iter() {
            match e.datapath {
                Some(dp) => {
                    let _ = writeln!(
                        out,
                        "  size {} {} dp {dp}",
                        design.class(e.class).name(),
                        e.val
                    );
                }
                None => {
                    let _ = writeln!(out, "  size {} {}", design.class(e.class).name(), e.val);
                }
            }
        }
    }
    for c in g.channel_ids() {
        let ch = g.channel(c);
        let dst = match ch.dst() {
            AccessTarget::Node(n) => g.node(n).name().to_owned(),
            AccessTarget::Port(p) => g.port(p).name().to_owned(),
        };
        let tag = match ch.tag().id() {
            Some(t) => t.to_string(),
            None => "seq".to_owned(),
        };
        let _ = writeln!(
            out,
            "channel {} {} {} freq {} {} {} bits {} tag {}",
            g.node(ch.src()).name(),
            dst,
            ch.kind(),
            ch.freq().avg,
            ch.freq().min,
            ch.freq().max,
            ch.bits(),
            tag
        );
    }
    for p in design.processor_ids() {
        let proc = design.processor(p);
        let mut line = format!(
            "processor {} {}",
            check_name(proc.name()),
            design.class(proc.class()).name()
        );
        if let Some(s) = proc.size_constraint() {
            let _ = write!(line, " size {s}");
        }
        if let Some(pins) = proc.pin_constraint() {
            let _ = write!(line, " pins {pins}");
        }
        let _ = writeln!(out, "{line}");
    }
    for m in design.memory_ids() {
        let mem = design.memory(m);
        let mut line = format!(
            "memory {} {}",
            check_name(mem.name()),
            design.class(mem.class()).name()
        );
        if let Some(s) = mem.size_constraint() {
            let _ = write!(line, " size {s}");
        }
        let _ = writeln!(out, "{line}");
    }
    for b in design.bus_ids() {
        let bus = design.bus(b);
        let mut line = format!(
            "bus {} {} {} {}",
            check_name(bus.name()),
            bus.bitwidth(),
            bus.ts(),
            bus.td()
        );
        if let Some(cap) = bus.capacity() {
            let _ = write!(line, " cap {cap}");
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

fn check_name(name: &str) -> &str {
    assert!(
        !name.is_empty() && !name.contains(char::is_whitespace),
        "object name `{name}` is not serializable (empty or contains whitespace)"
    );
    name
}

/// Parses the textual SLIF format produced by [`write_design`].
///
/// # Errors
///
/// Returns a [`ParseTextError`] with a line number on any malformed input:
/// unknown directives, bad numbers, references to undeclared names, or
/// structurally invalid channels.
pub fn parse_design(input: &str) -> Result<Design, ParseTextError> {
    let mut design = Design::new("unnamed");
    let mut last_node: Option<NodeId> = None;
    let mut saw_header = false;

    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let err = |msg: String| ParseTextError::new(lineno, msg);
        match toks[0] {
            "slif" => {
                if toks.get(1) != Some(&"1") {
                    return Err(err("unsupported slif version".into()));
                }
                saw_header = true;
            }
            "design" => {
                let name = *toks
                    .get(1)
                    .ok_or_else(|| err("design needs a name".into()))?;
                design = Design::new(name);
                last_node = None;
            }
            "class" => {
                let name = *toks
                    .get(1)
                    .ok_or_else(|| err("class needs a name".into()))?;
                let kind = match toks.get(2).copied() {
                    Some("std-processor") => ClassKind::StdProcessor,
                    Some("custom-hw") => ClassKind::CustomHw,
                    Some("memory") => ClassKind::Memory,
                    other => return Err(err(format!("unknown class kind {other:?}"))),
                };
                design.add_class(name, kind);
            }
            "port" => {
                let name = *toks.get(1).ok_or_else(|| err("port needs a name".into()))?;
                let dir = match toks.get(2).copied() {
                    Some("in") => PortDirection::In,
                    Some("out") => PortDirection::Out,
                    Some("inout") => PortDirection::InOut,
                    other => return Err(err(format!("unknown port direction {other:?}"))),
                };
                let bits = parse_num(toks.get(3), lineno, "port bits")?;
                design.graph_mut().add_port(name, dir, bits as u32);
            }
            "node" => {
                let name = *toks.get(1).ok_or_else(|| err("node needs a name".into()))?;
                let kind = match toks.get(2).copied() {
                    Some("process") => NodeKind::process(),
                    Some("procedure") => NodeKind::procedure(),
                    Some("variable") => {
                        let words = parse_num(toks.get(3), lineno, "variable words")?;
                        let bits = parse_num(toks.get(4), lineno, "variable word bits")?;
                        NodeKind::array(words, bits as u32)
                    }
                    other => return Err(err(format!("unknown node kind {other:?}"))),
                };
                last_node = Some(design.graph_mut().add_node(name, kind));
            }
            "ict" | "size" => {
                let node = last_node
                    .ok_or_else(|| err(format!("{} annotation outside a node", toks[0])))?;
                let class_name = *toks
                    .get(1)
                    .ok_or_else(|| err("annotation needs a class".into()))?;
                let class = design
                    .class_by_name(class_name)
                    .ok_or_else(|| err(format!("unknown class `{class_name}`")))?;
                let val = parse_num(toks.get(2), lineno, "annotation value")?;
                if toks[0] == "ict" {
                    design.graph_mut().node_mut(node).ict_mut().set(class, val);
                } else {
                    let entry = if toks.get(3) == Some(&"dp") {
                        let dp = parse_num(toks.get(4), lineno, "datapath value")?;
                        if dp > val {
                            return Err(err("datapath exceeds size".into()));
                        }
                        WeightEntry::with_datapath(class, val, dp)
                    } else {
                        WeightEntry::new(class, val)
                    };
                    design.graph_mut().node_mut(node).size_mut().insert(entry);
                }
            }
            "channel" => {
                let src_name = *toks.get(1).ok_or_else(|| err("channel needs src".into()))?;
                let dst_name = *toks.get(2).ok_or_else(|| err("channel needs dst".into()))?;
                let kind = match toks.get(3).copied() {
                    Some("call") => AccessKind::Call,
                    Some("read") => AccessKind::Read,
                    Some("write") => AccessKind::Write,
                    Some("message") => AccessKind::Message,
                    other => return Err(err(format!("unknown access kind {other:?}"))),
                };
                let src = design
                    .graph()
                    .node_by_name(src_name)
                    .ok_or_else(|| err(format!("unknown node `{src_name}`")))?;
                let dst: AccessTarget = if let Some(n) = design.graph().node_by_name(dst_name) {
                    n.into()
                } else if let Some(p) = design.graph().port_by_name(dst_name) {
                    p.into()
                } else {
                    return Err(err(format!("unknown destination `{dst_name}`")));
                };
                // Expect: freq <avg> <min> <max> bits <n> tag <t>
                if toks.get(4) != Some(&"freq")
                    || toks.get(8) != Some(&"bits")
                    || toks.get(10) != Some(&"tag")
                {
                    return Err(err("channel annotations malformed".into()));
                }
                let avg: f64 = toks[5]
                    .parse()
                    .map_err(|_| err("bad freq average".into()))?;
                let min = parse_num(toks.get(6), lineno, "freq min")?;
                let max = parse_num(toks.get(7), lineno, "freq max")?;
                let bits = parse_num(toks.get(9), lineno, "bits")? as u32;
                let tag = match toks[11] {
                    "seq" => ConcurrencyTag::SEQUENTIAL,
                    t => ConcurrencyTag::group(
                        t.parse().map_err(|_| err("bad concurrency tag".into()))?,
                    ),
                };
                let c = design
                    .graph_mut()
                    .add_channel(src, dst, kind)
                    .map_err(|e| err(e.to_string()))?;
                let ch = design.graph_mut().channel_mut(c);
                *ch.freq_mut() = AccessFreq::new(avg, min, max);
                ch.set_bits(bits);
                ch.set_tag(tag);
            }
            "processor" => {
                let name = *toks
                    .get(1)
                    .ok_or_else(|| err("processor needs a name".into()))?;
                let class_name = *toks
                    .get(2)
                    .ok_or_else(|| err("processor needs a class".into()))?;
                let class = design
                    .class_by_name(class_name)
                    .ok_or_else(|| err(format!("unknown class `{class_name}`")))?;
                let mut proc = Processor::new(name, class);
                let mut j = 3;
                while j < toks.len() {
                    match toks[j] {
                        "size" => {
                            proc = proc.with_size_constraint(parse_num(
                                toks.get(j + 1),
                                lineno,
                                "size constraint",
                            )?);
                            j += 2;
                        }
                        "pins" => {
                            proc = proc.with_pin_constraint(parse_num(
                                toks.get(j + 1),
                                lineno,
                                "pin constraint",
                            )? as u32);
                            j += 2;
                        }
                        other => return Err(err(format!("unknown processor option `{other}`"))),
                    }
                }
                design.add_processor_instance(proc);
            }
            "memory" => {
                let name = *toks
                    .get(1)
                    .ok_or_else(|| err("memory needs a name".into()))?;
                let class_name = *toks
                    .get(2)
                    .ok_or_else(|| err("memory needs a class".into()))?;
                let class = design
                    .class_by_name(class_name)
                    .ok_or_else(|| err(format!("unknown class `{class_name}`")))?;
                let mut mem = Memory::new(name, class);
                if toks.get(3) == Some(&"size") {
                    mem = mem.with_size_constraint(parse_num(
                        toks.get(4),
                        lineno,
                        "size constraint",
                    )?);
                }
                design.add_memory_instance(mem);
            }
            "bus" => {
                let name = *toks.get(1).ok_or_else(|| err("bus needs a name".into()))?;
                let width = parse_num(toks.get(2), lineno, "bus width")? as u32;
                let ts = parse_num(toks.get(3), lineno, "bus ts")?;
                let td = parse_num(toks.get(4), lineno, "bus td")?;
                if width == 0 {
                    return Err(err("bus width must be nonzero".into()));
                }
                let mut bus = Bus::new(name, width, ts, td);
                if toks.get(5) == Some(&"cap") {
                    let cap: f64 = toks
                        .get(6)
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("bad bus capacity".into()))?;
                    bus = bus.with_capacity(cap);
                }
                design.add_bus(bus);
            }
            other => return Err(err(format!("unknown directive `{other}`"))),
        }
    }
    if !saw_header {
        return Err(ParseTextError::new(1, "missing `slif 1` header"));
    }
    Ok(design)
}

fn parse_num(tok: Option<&&str>, lineno: usize, what: &str) -> Result<u64, ParseTextError> {
    tok.and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseTextError::new(lineno, format!("bad or missing {what}")))
}

/// Serializes a partition against its design.
///
/// Channels are identified by their stable index in the design.
pub fn write_partition(design: &Design, partition: &Partition) -> String {
    let mut out = String::from("partition 1\n");
    for n in design.graph().node_ids() {
        if let Some(comp) = partition.node_component(n) {
            let comp_name = match comp {
                PmRef::Processor(p) => design.processor(p).name(),
                PmRef::Memory(m) => design.memory(m).name(),
            };
            let _ = writeln!(out, "map {} {}", design.graph().node(n).name(), comp_name);
        }
    }
    for c in design.graph().channel_ids() {
        if let Some(bus) = partition.channel_bus(c) {
            let _ = writeln!(out, "chan {} {}", c.index(), design.bus(bus).name());
        }
    }
    out
}

/// Parses a partition serialized by [`write_partition`] against `design`.
///
/// # Errors
///
/// Returns a [`ParseTextError`] for unknown names or malformed lines.
pub fn parse_partition(design: &Design, input: &str) -> Result<Partition, ParseTextError> {
    let mut part = Partition::new(design);
    let mut saw_header = false;
    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let err = |msg: String| ParseTextError::new(lineno, msg);
        match toks[0] {
            "partition" => {
                if toks.get(1) != Some(&"1") {
                    return Err(err("unsupported partition version".into()));
                }
                saw_header = true;
            }
            "map" => {
                let node_name = *toks.get(1).ok_or_else(|| err("map needs a node".into()))?;
                let comp_name = *toks
                    .get(2)
                    .ok_or_else(|| err("map needs a component".into()))?;
                let node = design
                    .graph()
                    .node_by_name(node_name)
                    .ok_or_else(|| err(format!("unknown node `{node_name}`")))?;
                let comp: PmRef = if let Some(p) = design.processor_by_name(comp_name) {
                    p.into()
                } else if let Some(m) = design.memory_by_name(comp_name) {
                    m.into()
                } else {
                    return Err(err(format!("unknown component `{comp_name}`")));
                };
                part.assign_node(node, comp);
            }
            "chan" => {
                let idx = parse_num(toks.get(1), lineno, "channel index")? as usize;
                if idx >= design.graph().channel_count() {
                    return Err(err(format!("channel index {idx} out of range")));
                }
                let bus_name = *toks.get(2).ok_or_else(|| err("chan needs a bus".into()))?;
                let bus = design
                    .bus_by_name(bus_name)
                    .ok_or_else(|| err(format!("unknown bus `{bus_name}`")))?;
                part.assign_channel(crate::ids::ChannelId::from_raw(idx as u32), bus);
            }
            other => return Err(err(format!("unknown directive `{other}`"))),
        }
    }
    if !saw_header {
        return Err(ParseTextError::new(1, "missing `partition 1` header"));
    }
    Ok(part)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::DesignGenerator;

    #[test]
    fn design_roundtrip_exact() {
        for seed in [0, 1, 2, 99] {
            let (design, _) = DesignGenerator::new(seed).build();
            let text = write_design(&design);
            let back = parse_design(&text).expect("parse back");
            assert_eq!(design, back, "seed {seed}");
        }
    }

    #[test]
    fn partition_roundtrip_exact() {
        let (design, partition) = DesignGenerator::new(5).build();
        let text = write_partition(&design, &partition);
        let back = parse_partition(&design, &text).expect("parse back");
        assert_eq!(partition, back);
    }

    #[test]
    fn missing_header_rejected() {
        assert!(parse_design("design x\n").is_err());
        let (design, _) = DesignGenerator::new(0).build();
        assert!(parse_partition(&design, "map beh0 proc0\n").is_err());
    }

    #[test]
    fn unknown_directive_reports_line() {
        let err = parse_design("slif 1\nfrobnicate\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let d = parse_design("slif 1\n\n# comment\ndesign x\n").unwrap();
        assert_eq!(d.name(), "x");
    }

    #[test]
    fn channel_with_unknown_node_rejected() {
        let text = "slif 1\ndesign x\nchannel nope alsono call freq 1 1 1 bits 8 tag seq\n";
        let err = parse_design(text).unwrap_err();
        assert!(err.to_string().contains("unknown node"));
    }

    #[test]
    fn bad_number_reports_context() {
        let text = "slif 1\ndesign x\nport p in eight\n";
        let err = parse_design(text).unwrap_err();
        assert!(err.to_string().contains("port bits"));
    }

    #[test]
    fn fractional_freq_roundtrips() {
        let text = "slif 1\ndesign x\nnode A process\nnode v variable 1 8\n\
                    channel A v read freq 0.5 0 1 bits 8 tag 3\n";
        let d = parse_design(text).unwrap();
        let c = d.graph().channel_ids().next().unwrap();
        assert_eq!(d.graph().channel(c).freq().avg, 0.5);
        assert_eq!(d.graph().channel(c).tag(), ConcurrencyTag::group(3));
        let back = parse_design(&write_design(&d)).unwrap();
        assert_eq!(d, back);
    }
}
