//! Structural objects: component classes, processors, memories, and buses.
//!
//! SLIF represents "not only functionality, but also the mapping of that
//! functionality to a variety of system component types" (Section 1). The
//! structural side has two levels:
//!
//! * [`ComponentClass`] — a component *type* from a technology library
//!   (e.g. "8051 microcontroller", "gate-array ASIC", "SRAM"). Node
//!   `ict`/`size` weight lists are keyed by class, so pre-computed weights
//!   apply to every instance of the class.
//! * Component *instances*: [`Processor`] (`p_k = <BV, sizecon>`),
//!   [`Memory`] (`m_k = <V, sizecon>`), and [`Bus`]
//!   (`i_k = <C, bitwidth, ts, td>`). The `BV`/`V`/`C` membership sets live
//!   in [`Partition`](crate::Partition), not here, so that many candidate
//!   partitions can share one component allocation.

use crate::ids::ClassId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The technology kind of a component class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClassKind {
    /// A standard (software-programmed) processor; node sizes on this
    /// class are program/data bytes, ict comes from compilation.
    StdProcessor,
    /// A custom hardware part (standard-cell / gate-array ASIC or FPGA);
    /// node sizes are gates (or equivalent), ict comes from synthesis.
    CustomHw,
    /// A standard memory; variable sizes are words, ict is access time.
    Memory,
}

impl ClassKind {
    /// Returns `true` when a *behavior* node may be implemented on this
    /// class kind (behaviors go on processors, never on memories).
    pub fn holds_behaviors(self) -> bool {
        matches!(self, ClassKind::StdProcessor | ClassKind::CustomHw)
    }
}

impl fmt::Display for ClassKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ClassKind::StdProcessor => "std-processor",
            ClassKind::CustomHw => "custom-hw",
            ClassKind::Memory => "memory",
        };
        f.write_str(s)
    }
}

/// A component type from the technology library.
///
/// # Examples
///
/// ```
/// use slif_core::{ClassKind, ComponentClass};
///
/// let proc8 = ComponentClass::new("proc8", ClassKind::StdProcessor);
/// assert!(proc8.kind().holds_behaviors());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentClass {
    name: String,
    kind: ClassKind,
}

impl ComponentClass {
    /// Creates a class.
    pub fn new(name: impl Into<String>, kind: ClassKind) -> Self {
        Self {
            name: name.into(),
            kind,
        }
    }

    /// The class name (unique within a design's class table).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The technology kind.
    pub fn kind(&self) -> ClassKind {
        self.kind
    }
}

impl fmt::Display for ComponentClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.kind)
    }
}

/// A processor instance `p_k = <BV, sizecon>` — standard processor or
/// custom ASIC — to which behaviors and variables may be mapped.
///
/// The size constraint is the maximum the component can implement (program
/// bytes for a standard processor, gates for an ASIC); the pin constraint
/// is the available I/O (Section 2.4.2–2.4.3). `None` means unconstrained.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Processor {
    name: String,
    class: ClassId,
    size_constraint: Option<u64>,
    pin_constraint: Option<u32>,
}

impl Processor {
    /// Creates an unconstrained processor of the given class.
    pub fn new(name: impl Into<String>, class: ClassId) -> Self {
        Self {
            name: name.into(),
            class,
            size_constraint: None,
            pin_constraint: None,
        }
    }

    /// Sets the maximum size (bytes or gates) the component can implement.
    pub fn with_size_constraint(mut self, max: u64) -> Self {
        self.size_constraint = Some(max);
        self
    }

    /// Sets the number of available I/O pins.
    pub fn with_pin_constraint(mut self, pins: u32) -> Self {
        self.pin_constraint = Some(pins);
        self
    }

    /// The instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The component class this instance belongs to.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Maximum implementable size, if constrained.
    pub fn size_constraint(&self) -> Option<u64> {
        self.size_constraint
    }

    /// Available I/O pins, if constrained.
    pub fn pin_constraint(&self) -> Option<u32> {
        self.pin_constraint
    }
}

impl fmt::Display for Processor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "processor {}", self.name)?;
        if let Some(s) = self.size_constraint {
            write!(f, " size<={s}")?;
        }
        if let Some(p) = self.pin_constraint {
            write!(f, " pins<={p}")?;
        }
        Ok(())
    }
}

/// A memory instance `m_k = <V, sizecon>` to which variables may be mapped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Memory {
    name: String,
    class: ClassId,
    size_constraint: Option<u64>,
}

impl Memory {
    /// Creates an unconstrained memory of the given class.
    pub fn new(name: impl Into<String>, class: ClassId) -> Self {
        Self {
            name: name.into(),
            class,
            size_constraint: None,
        }
    }

    /// Sets the maximum number of words the memory holds.
    pub fn with_size_constraint(mut self, max: u64) -> Self {
        self.size_constraint = Some(max);
        self
    }

    /// The instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The component class this instance belongs to.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Maximum word capacity, if constrained.
    pub fn size_constraint(&self) -> Option<u64> {
        self.size_constraint
    }
}

impl fmt::Display for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memory {}", self.name)?;
        if let Some(s) = self.size_constraint {
            write!(f, " words<={s}")?;
        }
        Ok(())
    }
}

/// A bus instance `i_k = <C, bitwidth, ts, td>` to which channels are
/// mapped.
///
/// * `bitwidth` — physical wires. A channel transferring more bits than the
///   bus has wires needs multiple transfers (`ceil(bits / bitwidth)`).
/// * `ts` — time for one transfer when source and destination are on the
///   *same* component.
/// * `td` — time for one transfer *between different* components
///   (usually larger than `ts`).
/// * `capacity` — optional maximum bitrate for the capacity-limited bitrate
///   extension (the paper's reference \[2\]); `None` disables it.
///
/// # Examples
///
/// ```
/// use slif_core::Bus;
///
/// let bus = Bus::new("mainbus", 16, 1, 4);
/// assert_eq!(bus.transfers_for(32), 2); // 32 bits over 16 wires
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bus {
    name: String,
    bitwidth: u32,
    ts: u64,
    td: u64,
    capacity: Option<f64>,
}

impl Bus {
    /// Creates a bus.
    ///
    /// # Panics
    ///
    /// Panics if `bitwidth` is zero: a bus must have at least one wire.
    pub fn new(name: impl Into<String>, bitwidth: u32, ts: u64, td: u64) -> Self {
        assert!(bitwidth > 0, "bus bitwidth must be at least one wire");
        Self {
            name: name.into(),
            bitwidth,
            ts,
            td,
            capacity: None,
        }
    }

    /// Sets the maximum bitrate the bus can sustain (bits per time unit).
    pub fn with_capacity(mut self, bits_per_time: f64) -> Self {
        self.capacity = Some(bits_per_time);
        self
    }

    /// The instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical wires.
    pub fn bitwidth(&self) -> u32 {
        self.bitwidth
    }

    /// Same-component transfer time.
    pub fn ts(&self) -> u64 {
        self.ts
    }

    /// Cross-component transfer time.
    pub fn td(&self) -> u64 {
        self.td
    }

    /// Maximum sustainable bitrate, if modelled.
    pub fn capacity(&self) -> Option<f64> {
        self.capacity
    }

    /// Overwrites the bitwidth without enforcing the at-least-one-wire
    /// invariant. Only the fault injector uses this, to model a corrupted
    /// design; estimators must report [`CoreError::ZeroBitwidthBus`]
    /// (`crate::CoreError`) rather than divide by the stored value blindly.
    pub(crate) fn set_bitwidth_unchecked(&mut self, bitwidth: u32) {
        self.bitwidth = bitwidth;
    }

    /// Number of bus transfers needed to move `bits` bits:
    /// `ceil(bits / bitwidth)`, minimum 1 (even a zero-bit access — e.g. a
    /// parameterless call — occupies the bus once).
    pub fn transfers_for(&self, bits: u32) -> u64 {
        u64::from(bits.div_ceil(self.bitwidth)).max(1)
    }

    /// Time for one access of `bits` bits when source and destination are
    /// on the same component (`same == true`) or on different components.
    pub fn access_time(&self, bits: u32, same: bool) -> u64 {
        let per_transfer = if same { self.ts } else { self.td };
        self.transfers_for(bits) * per_transfer
    }
}

impl fmt::Display for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bus {} {}w ts={} td={}",
            self.name, self.bitwidth, self.ts, self.td
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_kind_behavior_rules() {
        assert!(ClassKind::StdProcessor.holds_behaviors());
        assert!(ClassKind::CustomHw.holds_behaviors());
        assert!(!ClassKind::Memory.holds_behaviors());
    }

    #[test]
    fn processor_constraints() {
        let p = Processor::new("asic1", ClassId::from_raw(1))
            .with_size_constraint(100_000)
            .with_pin_constraint(120);
        assert_eq!(p.size_constraint(), Some(100_000));
        assert_eq!(p.pin_constraint(), Some(120));
        assert_eq!(p.class(), ClassId::from_raw(1));
        let q = Processor::new("cpu", ClassId::from_raw(0));
        assert_eq!(q.size_constraint(), None);
        assert_eq!(q.pin_constraint(), None);
    }

    #[test]
    fn memory_constraints() {
        let m = Memory::new("ram0", ClassId::from_raw(2)).with_size_constraint(65536);
        assert_eq!(m.size_constraint(), Some(65536));
        assert_eq!(m.name(), "ram0");
    }

    #[test]
    fn bus_transfer_count_rounds_up() {
        let bus = Bus::new("b", 16, 1, 4);
        assert_eq!(bus.transfers_for(1), 1);
        assert_eq!(bus.transfers_for(16), 1);
        assert_eq!(bus.transfers_for(17), 2);
        assert_eq!(bus.transfers_for(32), 2);
        assert_eq!(bus.transfers_for(33), 3);
        // A zero-bit access still takes one transfer.
        assert_eq!(bus.transfers_for(0), 1);
    }

    #[test]
    fn bus_access_time_uses_ts_or_td() {
        let bus = Bus::new("b", 16, 2, 5);
        assert_eq!(bus.access_time(32, true), 4); // 2 transfers * ts
        assert_eq!(bus.access_time(32, false), 10); // 2 transfers * td
    }

    #[test]
    #[should_panic(expected = "bitwidth")]
    fn zero_width_bus_rejected() {
        let _ = Bus::new("bad", 0, 1, 1);
    }

    #[test]
    fn bus_capacity_annotation() {
        let bus = Bus::new("b", 8, 1, 2).with_capacity(1000.0);
        assert_eq!(bus.capacity(), Some(1000.0));
    }

    #[test]
    fn displays() {
        assert_eq!(
            ComponentClass::new("sram", ClassKind::Memory).to_string(),
            "sram (memory)"
        );
        assert_eq!(
            Processor::new("cpu", ClassId::from_raw(0))
                .with_size_constraint(4096)
                .to_string(),
            "processor cpu size<=4096"
        );
        assert_eq!(Bus::new("b", 16, 1, 4).to_string(), "bus b 16w ts=1 td=4");
    }
}
