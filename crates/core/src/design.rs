//! A complete SLIF design: the paper's sextuple
//! `< BV_all, IO_all, C_all, P_all, M_all, I_all >`.
//!
//! [`Design`] pairs the functional side (an [`AccessGraph`]) with the
//! structural side: a class table (technology types against which node
//! weights are recorded) and the allocated processor, memory, and bus
//! instances. The *mapping* of functional objects to components lives in
//! [`Partition`](crate::Partition) so that one design can be evaluated
//! under many candidate partitions.

use crate::component::{Bus, ClassKind, ComponentClass, Memory, Processor};
use crate::graph::AccessGraph;
use crate::ids::{BusId, ClassId, MemoryId, PmRef, ProcessorId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A SLIF design: functional objects plus allocated system components.
///
/// # Examples
///
/// ```
/// use slif_core::{AccessKind, Bus, ClassKind, Design, NodeKind};
///
/// let mut d = Design::new("demo");
/// let proc_class = d.add_class("proc8", ClassKind::StdProcessor);
/// let asic_class = d.add_class("asic", ClassKind::CustomHw);
///
/// let main = d.graph_mut().add_node("Main", NodeKind::process());
/// let conv = d.graph_mut().add_node("Convolve", NodeKind::procedure());
/// d.graph_mut().add_channel(main, conv.into(), AccessKind::Call)?;
///
/// let cpu = d.add_processor("cpu0", proc_class);
/// let asic = d.add_processor("asic0", asic_class);
/// let bus = d.add_bus(Bus::new("mainbus", 16, 1, 4));
/// assert_eq!(d.processor_count(), 2);
/// # let _ = (cpu, asic, bus);
/// # Ok::<(), slif_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Design {
    name: String,
    classes: Vec<ComponentClass>,
    graph: AccessGraph,
    processors: Vec<Processor>,
    memories: Vec<Memory>,
    buses: Vec<Bus>,
}

impl Design {
    /// Creates an empty design.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The functional-object side.
    pub fn graph(&self) -> &AccessGraph {
        &self.graph
    }

    /// Mutable access to the functional-object side.
    pub fn graph_mut(&mut self) -> &mut AccessGraph {
        &mut self.graph
    }

    /// Registers a component class (technology type) and returns its id.
    pub fn add_class(&mut self, name: impl Into<String>, kind: ClassKind) -> ClassId {
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(ComponentClass::new(name, kind));
        id
    }

    /// The class with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this design.
    pub fn class(&self, id: ClassId) -> &ComponentClass {
        &self.classes[id.index()]
    }

    /// Looks up a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name() == name)
            .map(|i| ClassId(i as u32))
    }

    /// Iterates over all class ids.
    pub fn class_ids(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.classes.len() as u32).map(ClassId)
    }

    /// Number of registered classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Allocates a processor instance of the given class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is a memory class or does not come from this
    /// design.
    pub fn add_processor(&mut self, name: impl Into<String>, class: ClassId) -> ProcessorId {
        assert!(
            self.class(class).kind().holds_behaviors(),
            "processor instances need a std-processor or custom-hw class"
        );
        self.add_processor_instance(Processor::new(name, class))
    }

    /// Allocates a fully configured processor instance.
    ///
    /// # Panics
    ///
    /// Panics if the processor's class is a memory class.
    pub fn add_processor_instance(&mut self, processor: Processor) -> ProcessorId {
        assert!(
            self.class(processor.class()).kind().holds_behaviors(),
            "processor instances need a std-processor or custom-hw class"
        );
        let id = ProcessorId(self.processors.len() as u32);
        self.processors.push(processor);
        id
    }

    /// Allocates a memory instance of the given class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is not a memory class.
    pub fn add_memory(&mut self, name: impl Into<String>, class: ClassId) -> MemoryId {
        self.add_memory_instance(Memory::new(name, class))
    }

    /// Allocates a fully configured memory instance.
    ///
    /// # Panics
    ///
    /// Panics if the memory's class is not a memory class.
    pub fn add_memory_instance(&mut self, memory: Memory) -> MemoryId {
        assert!(
            self.class(memory.class()).kind() == ClassKind::Memory,
            "memory instances need a memory class"
        );
        let id = MemoryId(self.memories.len() as u32);
        self.memories.push(memory);
        id
    }

    /// Allocates a bus instance.
    pub fn add_bus(&mut self, bus: Bus) -> BusId {
        let id = BusId(self.buses.len() as u32);
        self.buses.push(bus);
        id
    }

    /// The processor with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this design.
    pub fn processor(&self, id: ProcessorId) -> &Processor {
        &self.processors[id.index()]
    }

    /// The memory with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this design.
    pub fn memory(&self, id: MemoryId) -> &Memory {
        &self.memories[id.index()]
    }

    /// The bus with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this design.
    pub fn bus(&self, id: BusId) -> &Bus {
        &self.buses[id.index()]
    }

    /// Mutable access to a bus (fault injection only: the setter it exposes
    /// can break the bitwidth invariant on purpose).
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this design.
    pub(crate) fn bus_mut(&mut self, id: BusId) -> &mut Bus {
        &mut self.buses[id.index()]
    }

    /// The class of a processor-or-memory component: the key into node
    /// weight lists for objects mapped to it.
    ///
    /// # Panics
    ///
    /// Panics if `pm` did not come from this design.
    pub fn component_class(&self, pm: PmRef) -> ClassId {
        match pm {
            PmRef::Processor(p) => self.processor(p).class(),
            PmRef::Memory(m) => self.memory(m).class(),
        }
    }

    /// Looks up a processor by name.
    pub fn processor_by_name(&self, name: &str) -> Option<ProcessorId> {
        self.processors
            .iter()
            .position(|p| p.name() == name)
            .map(|i| ProcessorId(i as u32))
    }

    /// Looks up a memory by name.
    pub fn memory_by_name(&self, name: &str) -> Option<MemoryId> {
        self.memories
            .iter()
            .position(|m| m.name() == name)
            .map(|i| MemoryId(i as u32))
    }

    /// Looks up a bus by name.
    pub fn bus_by_name(&self, name: &str) -> Option<BusId> {
        self.buses
            .iter()
            .position(|b| b.name() == name)
            .map(|i| BusId(i as u32))
    }

    /// Number of allocated processors (`|P_all|`).
    pub fn processor_count(&self) -> usize {
        self.processors.len()
    }

    /// Number of allocated memories (`|M_all|`).
    pub fn memory_count(&self) -> usize {
        self.memories.len()
    }

    /// Number of allocated buses (`|I_all|`).
    pub fn bus_count(&self) -> usize {
        self.buses.len()
    }

    /// Iterates over all processor ids.
    pub fn processor_ids(&self) -> impl Iterator<Item = ProcessorId> + '_ {
        (0..self.processors.len() as u32).map(ProcessorId)
    }

    /// Iterates over all memory ids.
    pub fn memory_ids(&self) -> impl Iterator<Item = MemoryId> + '_ {
        (0..self.memories.len() as u32).map(MemoryId)
    }

    /// Iterates over all bus ids.
    pub fn bus_ids(&self) -> impl Iterator<Item = BusId> + '_ {
        (0..self.buses.len() as u32).map(BusId)
    }

    /// Iterates over all processor-or-memory component references.
    pub fn pm_refs(&self) -> impl Iterator<Item = PmRef> + '_ {
        self.processor_ids()
            .map(PmRef::Processor)
            .chain(self.memory_ids().map(PmRef::Memory))
    }
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "design {}: {} nodes, {} channels, {} procs, {} mems, {} buses",
            self.name,
            self.graph.node_count(),
            self.graph.channel_count(),
            self.processors.len(),
            self.memories.len(),
            self.buses.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::AccessKind;
    use crate::node::NodeKind;

    fn design_with_classes() -> (Design, ClassId, ClassId, ClassId) {
        let mut d = Design::new("t");
        let pc = d.add_class("proc8", ClassKind::StdProcessor);
        let ac = d.add_class("asic", ClassKind::CustomHw);
        let mc = d.add_class("sram", ClassKind::Memory);
        (d, pc, ac, mc)
    }

    #[test]
    fn classes_register_and_lookup() {
        let (d, pc, ac, mc) = design_with_classes();
        assert_eq!(d.class_count(), 3);
        assert_eq!(d.class_by_name("asic"), Some(ac));
        assert_eq!(d.class_by_name("proc8"), Some(pc));
        assert_eq!(d.class_by_name("sram"), Some(mc));
        assert_eq!(d.class_by_name("nope"), None);
        assert_eq!(d.class(pc).kind(), ClassKind::StdProcessor);
    }

    #[test]
    fn components_allocate_and_lookup() {
        let (mut d, pc, ac, mc) = design_with_classes();
        let cpu = d.add_processor("cpu0", pc);
        let asic = d.add_processor("asic0", ac);
        let ram = d.add_memory("ram0", mc);
        let bus = d.add_bus(Bus::new("b0", 16, 1, 4));
        assert_eq!(d.processor_by_name("asic0"), Some(asic));
        assert_eq!(d.memory_by_name("ram0"), Some(ram));
        assert_eq!(d.bus_by_name("b0"), Some(bus));
        assert_eq!(d.component_class(cpu.into()), pc);
        assert_eq!(d.component_class(ram.into()), mc);
        assert_eq!(d.pm_refs().count(), 3);
    }

    #[test]
    #[should_panic(expected = "memory class")]
    fn memory_with_processor_class_rejected() {
        let (mut d, pc, _ac, _mc) = design_with_classes();
        d.add_memory("bad", pc);
    }

    #[test]
    #[should_panic(expected = "custom-hw class")]
    fn processor_with_memory_class_rejected() {
        let (mut d, _pc, _ac, mc) = design_with_classes();
        d.add_processor("bad", mc);
    }

    #[test]
    fn display_summarizes() {
        let (mut d, pc, _ac, _mc) = design_with_classes();
        let a = d.graph_mut().add_node("A", NodeKind::process());
        let b = d.graph_mut().add_node("B", NodeKind::procedure());
        d.graph_mut()
            .add_channel(a, b.into(), AccessKind::Call)
            .unwrap();
        d.add_processor("cpu", pc);
        let s = d.to_string();
        assert!(s.contains("2 nodes"));
        assert!(s.contains("1 channels"));
        assert!(s.contains("1 procs"));
    }
}
