//! Whole-design validation: every problem in one sweep.
//!
//! The constructors and estimators report the *first* violation they hit
//! ([`CoreError`]), which is right for programmatic use but wrong for a
//! designer fixing a hand-written or machine-corrupted design: they want
//! the complete list. [`validate_design`] and [`validate`] therefore sweep
//! a whole [`Design`] (and optionally a [`Partition`]) and collect *all*
//! findings into a [`ValidationReport`]:
//!
//! * **errors** — conditions under which estimation is undefined or the
//!   partition is not proper (dangling references, kind/target mismatches,
//!   recursion, zero-bitwidth buses, unmapped objects, missing weights for
//!   the mapped class);
//! * **warnings** — conditions estimators degrade around (inconsistent
//!   access frequencies, zero-bit channels, incomplete per-class
//!   annotation coverage).
//!
//! The sweep itself never panics, even on a design corrupted by the fault
//! injector ([`faults`](crate::faults)): every indexed access is
//! range-checked first, and dangling ids become
//! [`CoreError::DanglingReference`] findings.
//!
//! # Examples
//!
//! ```
//! use slif_core::gen::DesignGenerator;
//! use slif_core::validate::validate;
//!
//! let (design, partition) = DesignGenerator::new(7).build();
//! let report = validate(&design, Some(&partition));
//! assert!(!report.has_errors(), "{report}");
//! ```

use crate::design::Design;
use crate::error::CoreError;
use crate::ids::{AccessTarget, PmRef};
use crate::partition::Partition;
use std::fmt;

/// How severe a validation finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IssueSeverity {
    /// Estimators degrade around the condition (possibly with reduced
    /// fidelity); the design is still estimable.
    Warning,
    /// Estimation is undefined or the partition is not proper.
    Error,
}

impl fmt::Display for IssueSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IssueSeverity::Warning => "warning",
            IssueSeverity::Error => "error",
        })
    }
}

/// One finding of a validation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationIssue {
    severity: IssueSeverity,
    /// The underlying typed error, when the finding corresponds to a
    /// condition a fail-fast API would have reported.
    error: Option<CoreError>,
    message: String,
}

impl ValidationIssue {
    /// Creates an error finding backed by a typed [`CoreError`].
    pub fn from_error(error: CoreError) -> Self {
        Self {
            severity: IssueSeverity::Error,
            message: error.to_string(),
            error: Some(error),
        }
    }

    /// Creates an error finding with a free-form message.
    pub fn error(message: impl Into<String>) -> Self {
        Self {
            severity: IssueSeverity::Error,
            error: None,
            message: message.into(),
        }
    }

    /// Creates a warning finding.
    pub fn warning(message: impl Into<String>) -> Self {
        Self {
            severity: IssueSeverity::Warning,
            error: None,
            message: message.into(),
        }
    }

    /// The finding's severity.
    pub fn severity(&self) -> IssueSeverity {
        self.severity
    }

    /// The underlying typed error, if any.
    pub fn core_error(&self) -> Option<&CoreError> {
        self.error.as_ref()
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.severity, self.message)
    }
}

/// Every finding of a validation sweep, errors and warnings together.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ValidationReport {
    issues: Vec<ValidationIssue>,
}

impl ValidationReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a finding.
    pub fn push(&mut self, issue: ValidationIssue) {
        self.issues.push(issue);
    }

    /// All findings, in sweep order.
    pub fn issues(&self) -> &[ValidationIssue] {
        &self.issues
    }

    /// The error findings only.
    pub fn errors(&self) -> impl Iterator<Item = &ValidationIssue> + '_ {
        self.issues
            .iter()
            .filter(|i| i.severity == IssueSeverity::Error)
    }

    /// The warning findings only.
    pub fn warnings(&self) -> impl Iterator<Item = &ValidationIssue> + '_ {
        self.issues
            .iter()
            .filter(|i| i.severity == IssueSeverity::Warning)
    }

    /// Returns `true` when at least one finding is an error.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Returns `true` when there are no findings at all.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.issues.len()
    }

    /// Returns `true` when there are no findings.
    pub fn is_empty(&self) -> bool {
        self.issues.is_empty()
    }

    /// Appends every finding of `other`, preserving both sweep orders.
    /// This is how secondary analyzers (e.g. `slif-analyze`) fold their
    /// findings into one designer-facing report.
    pub fn merge(&mut self, other: ValidationReport) {
        self.issues.extend(other.issues);
    }

    /// Converts the report into a fail-fast result: `Ok` when error-free
    /// (warnings allowed), otherwise the first error — preferring its typed
    /// [`CoreError`] when one exists.
    ///
    /// # Errors
    ///
    /// The first error finding, as a [`CoreError`]; free-form errors
    /// surface as [`CoreError::InvalidInput`].
    pub fn into_result(self) -> Result<(), CoreError> {
        for issue in self.issues {
            if issue.severity == IssueSeverity::Error {
                return Err(issue.error.unwrap_or(CoreError::InvalidInput {
                    message: issue.message,
                }));
            }
        }
        Ok(())
    }
}

impl Extend<ValidationIssue> for ValidationReport {
    fn extend<T: IntoIterator<Item = ValidationIssue>>(&mut self, iter: T) {
        self.issues.extend(iter);
    }
}

impl FromIterator<ValidationIssue> for ValidationReport {
    fn from_iter<T: IntoIterator<Item = ValidationIssue>>(iter: T) -> Self {
        Self {
            issues: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        write!(f, "validation: {errors} error(s), {warnings} warning(s)")?;
        for issue in &self.issues {
            write!(f, "\n  {issue}")?;
        }
        Ok(())
    }
}

/// Sweeps `design` for every structural problem and annotation gap,
/// without a partition. See the [module docs](self) for what is an error
/// versus a warning.
pub fn validate_design(design: &Design) -> ValidationReport {
    let mut report = ValidationReport::new();
    check_components(design, &mut report);
    check_channels(design, &mut report);
    check_annotation_coverage(design, &mut report);
    if let Some(node) = design.graph().find_recursion() {
        report.push(ValidationIssue::from_error(CoreError::RecursiveAccess {
            node,
        }));
    }
    report
}

/// Sweeps `design` and, when given, `partition` — collecting design
/// findings plus every proper-partition violation.
pub fn validate(design: &Design, partition: Option<&Partition>) -> ValidationReport {
    let mut report = validate_design(design);
    if let Some(p) = partition {
        check_partition(design, p, &mut report);
    }
    report
}

fn check_components(design: &Design, report: &mut ValidationReport) {
    for b in design.bus_ids() {
        if design.bus(b).bitwidth() == 0 {
            report.push(ValidationIssue::from_error(CoreError::ZeroBitwidthBus {
                bus: b,
            }));
        }
    }
    for p in design.processor_ids() {
        let class = design.processor(p).class();
        if class.index() >= design.class_count() {
            report.push(ValidationIssue::from_error(CoreError::DanglingReference {
                what: "class",
                index: class.index(),
            }));
        } else if !design.class(class).kind().holds_behaviors() {
            report.push(ValidationIssue::error(format!(
                "processor {p} has memory class {class}"
            )));
        }
    }
    for m in design.memory_ids() {
        let class = design.memory(m).class();
        if class.index() >= design.class_count() {
            report.push(ValidationIssue::from_error(CoreError::DanglingReference {
                what: "class",
                index: class.index(),
            }));
        } else if design.class(class).kind().holds_behaviors() {
            report.push(ValidationIssue::error(format!(
                "memory {m} has processor class {class}"
            )));
        }
    }
}

fn check_channels(design: &Design, report: &mut ValidationReport) {
    let g = design.graph();
    for c in g.channel_ids() {
        let ch = g.channel(c);
        let src = ch.src();
        let mut endpoints_ok = true;
        if src.index() >= g.node_count() {
            report.push(ValidationIssue::from_error(CoreError::DanglingReference {
                what: "node",
                index: src.index(),
            }));
            endpoints_ok = false;
        } else if !g.node(src).kind().is_behavior() {
            report.push(ValidationIssue::from_error(CoreError::SourceNotBehavior {
                node: src,
            }));
        }
        let dst_is_behavior = match ch.dst() {
            AccessTarget::Node(n) if n.index() >= g.node_count() => {
                report.push(ValidationIssue::from_error(CoreError::DanglingReference {
                    what: "node",
                    index: n.index(),
                }));
                endpoints_ok = false;
                false
            }
            AccessTarget::Node(n) => g.node(n).kind().is_behavior(),
            AccessTarget::Port(p) if p.index() >= g.port_count() => {
                report.push(ValidationIssue::from_error(CoreError::DanglingReference {
                    what: "port",
                    index: p.index(),
                }));
                endpoints_ok = false;
                false
            }
            AccessTarget::Port(_) => false,
        };
        if endpoints_ok {
            let kind_ok = match ch.kind() {
                crate::channel::AccessKind::Call | crate::channel::AccessKind::Message => {
                    dst_is_behavior
                }
                crate::channel::AccessKind::Read | crate::channel::AccessKind::Write => {
                    !dst_is_behavior
                }
            };
            if !kind_ok {
                report.push(ValidationIssue::from_error(CoreError::KindTargetMismatch {
                    kind: match ch.kind() {
                        crate::channel::AccessKind::Call => "call",
                        crate::channel::AccessKind::Message => "message",
                        crate::channel::AccessKind::Read => "read",
                        crate::channel::AccessKind::Write => "write",
                    },
                    dst: ch.dst(),
                }));
            }
        }
        if !ch.freq().is_consistent() {
            report.push(ValidationIssue::warning(format!(
                "channel {c} has inconsistent access frequency {}",
                ch.freq()
            )));
        }
        if ch.bits() == 0 {
            report.push(ValidationIssue::warning(format!(
                "channel {c} transfers zero bits per access"
            )));
        }
    }
}

/// Annotation completeness: "one weight for each type of system component
/// on which that node could possibly be implemented" (Section 2.4).
/// Behaviors can go on any behavior-holding class; variables on any class.
/// Gaps are warnings — they only become errors once a partition actually
/// maps the node onto the uncovered class.
fn check_annotation_coverage(design: &Design, report: &mut ValidationReport) {
    let g = design.graph();
    for n in g.node_ids() {
        let node = g.node(n);
        for class in design.class_ids() {
            let applicable = if node.kind().is_behavior() {
                design.class(class).kind().holds_behaviors()
            } else {
                true
            };
            if !applicable {
                continue;
            }
            if node.kind().is_behavior() && !node.ict().supports(class) {
                report.push(ValidationIssue::warning(format!(
                    "node {n} ({}) has no ict weight for class {class} ({})",
                    node.name(),
                    design.class(class).name()
                )));
            }
            if !node.size().supports(class) {
                report.push(ValidationIssue::warning(format!(
                    "node {n} ({}) has no size weight for class {class} ({})",
                    node.name(),
                    design.class(class).name()
                )));
            }
        }
    }
}

fn check_partition(design: &Design, partition: &Partition, report: &mut ValidationReport) {
    let g = design.graph();
    if partition.node_slots() != g.node_count() || partition.channel_slots() != g.channel_count() {
        report.push(ValidationIssue::error(format!(
            "partition shape ({} node slots, {} channel slots) does not match \
             the design ({} nodes, {} channels)",
            partition.node_slots(),
            partition.channel_slots(),
            g.node_count(),
            g.channel_count()
        )));
        return; // slot indexing below would be meaningless
    }
    for n in g.node_ids() {
        let Some(comp) = partition.node_component(n) else {
            report.push(ValidationIssue::from_error(CoreError::UnmappedNode {
                node: n,
            }));
            continue;
        };
        let in_range = match comp {
            PmRef::Processor(p) => p.index() < design.processor_count(),
            PmRef::Memory(m) => m.index() < design.memory_count(),
        };
        if !in_range {
            report.push(ValidationIssue::from_error(CoreError::UnknownComponent {
                component: comp,
            }));
            continue;
        }
        if let PmRef::Memory(m) = comp {
            if g.node(n).kind().is_behavior() {
                report.push(ValidationIssue::from_error(CoreError::BehaviorInMemory {
                    node: n,
                    memory: m,
                }));
                continue;
            }
        }
        let class = design.component_class(comp);
        if class.index() >= design.class_count() {
            // Already reported as a dangling class by check_components;
            // weight lookups against it are meaningless.
            continue;
        }
        let node = g.node(n);
        if node.kind().is_behavior() && !node.ict().supports(class) {
            report.push(ValidationIssue::from_error(CoreError::MissingWeight {
                node: n,
                list: "ict",
                component: comp,
            }));
        }
        if !node.size().supports(class) {
            report.push(ValidationIssue::from_error(CoreError::MissingWeight {
                node: n,
                list: "size",
                component: comp,
            }));
        }
    }
    for c in g.channel_ids() {
        match partition.channel_bus(c) {
            None => report.push(ValidationIssue::from_error(CoreError::UnmappedChannel {
                channel: c,
            })),
            Some(bus) if bus.index() >= design.bus_count() => {
                report.push(ValidationIssue::from_error(CoreError::UnknownBus { bus }));
            }
            Some(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::AccessFreq;
    use crate::channel::AccessKind;
    use crate::component::{Bus, ClassKind};
    use crate::gen::DesignGenerator;
    use crate::ids::{BusId, NodeId, ProcessorId};
    use crate::node::NodeKind;
    use crate::Design;

    fn annotated_fixture() -> (Design, Partition) {
        let mut d = Design::new("t");
        let pc = d.add_class("proc", ClassKind::StdProcessor);
        let mc = d.add_class("sram", ClassKind::Memory);
        let main = d.graph_mut().add_node("Main", NodeKind::process());
        let v = d.graph_mut().add_node("v", NodeKind::scalar(8));
        let c = d
            .graph_mut()
            .add_channel(main, v.into(), AccessKind::Read)
            .unwrap();
        d.graph_mut().node_mut(main).ict_mut().set(pc, 10);
        d.graph_mut().node_mut(main).size_mut().set(pc, 100);
        for k in [pc, mc] {
            d.graph_mut().node_mut(v).size_mut().set(k, 1);
        }
        let cpu = d.add_processor("cpu", pc);
        let bus = d.add_bus(Bus::new("b", 8, 1, 2));
        let mut part = Partition::new(&d);
        part.assign_node(main, cpu.into());
        part.assign_node(v, cpu.into());
        part.assign_channel(c, bus);
        (d, part)
    }

    #[test]
    fn clean_design_reports_no_errors() {
        let (d, p) = annotated_fixture();
        let report = validate(&d, Some(&p));
        assert!(!report.has_errors(), "{report}");
        assert!(report.clone().into_result().is_ok());
    }

    #[test]
    fn generated_designs_validate_cleanly() {
        for seed in 0..8 {
            let (d, p) = DesignGenerator::new(seed).build();
            let report = validate(&d, Some(&p));
            assert!(!report.has_errors(), "seed {seed}: {report}");
        }
    }

    #[test]
    fn collects_multiple_errors_in_one_sweep() {
        let (mut d, mut p) = annotated_fixture();
        // Three independent problems at once.
        let orphan = d.graph_mut().add_node("orphan", NodeKind::procedure());
        let c2 = d
            .graph_mut()
            .add_channel(orphan, orphan.into(), AccessKind::Call)
            .unwrap();
        let mut p2 = Partition::new(&d);
        for n in d.graph().node_ids() {
            if let Some(comp) = if n.index() < p.node_slots() {
                p.node_component(n)
            } else {
                None
            } {
                p2.assign_node(n, comp);
            }
        }
        p2.assign_channel(crate::ids::ChannelId::from_raw(0), BusId::from_raw(0));
        let _ = c2; // left unmapped on purpose
        p = p2;
        let report = validate(&d, Some(&p));
        // Recursion + unmapped orphan node + unmapped channel, all present.
        assert!(
            report
                .errors()
                .any(|i| matches!(i.core_error(), Some(CoreError::RecursiveAccess { .. }))),
            "{report}"
        );
        assert!(
            report
                .errors()
                .any(|i| matches!(i.core_error(), Some(CoreError::UnmappedNode { .. }))),
            "{report}"
        );
        assert!(
            report
                .errors()
                .any(|i| matches!(i.core_error(), Some(CoreError::UnmappedChannel { .. }))),
            "{report}"
        );
        assert!(report.errors().count() >= 3, "{report}");
    }

    #[test]
    fn annotation_gaps_are_warnings_not_errors() {
        let (d, _) = annotated_fixture();
        let report = validate_design(&d);
        // `v` has no size weight gap, but `Main` is missing nothing; the
        // fixture leaves no behavior-class gaps, so craft one:
        let mut d2 = d;
        let ac = d2.add_class("asic", ClassKind::CustomHw);
        let report2 = validate_design(&d2);
        assert!(!report2.has_errors(), "{report2}");
        assert!(
            report2.warnings().count() > report.warnings().count(),
            "adding class {ac} should create coverage warnings"
        );
    }

    #[test]
    fn inconsistent_freq_and_zero_bits_warn() {
        let (mut d, p) = annotated_fixture();
        let c = d.graph().channel_ids().next().unwrap();
        *d.graph_mut().channel_mut(c).freq_mut() = AccessFreq::new(5.0, 6, 7);
        d.graph_mut().channel_mut(c).set_bits(0);
        let report = validate(&d, Some(&p));
        assert!(!report.has_errors(), "{report}");
        assert!(
            report
                .warnings()
                .any(|i| i.message().contains("inconsistent")),
            "{report}"
        );
        assert!(
            report.warnings().any(|i| i.message().contains("zero bits")),
            "{report}"
        );
    }

    #[test]
    fn zero_bitwidth_bus_is_an_error() {
        let (mut d, p) = annotated_fixture();
        let b = d.bus_ids().next().unwrap();
        d.bus_mut(b).set_bitwidth_unchecked(0);
        let report = validate(&d, Some(&p));
        assert!(
            report
                .errors()
                .any(|i| matches!(i.core_error(), Some(CoreError::ZeroBitwidthBus { .. }))),
            "{report}"
        );
    }

    #[test]
    fn dangling_channel_endpoints_are_reported_not_panicked() {
        let (mut d, p) = annotated_fixture();
        let c = d.graph().channel_ids().next().unwrap();
        d.graph_mut()
            .channel_mut(c)
            .set_src_unchecked(NodeId::from_raw(999));
        let report = validate(&d, Some(&p));
        assert!(
            report
                .errors()
                .any(|i| matches!(i.core_error(), Some(CoreError::DanglingReference { .. }))),
            "{report}"
        );
    }

    #[test]
    fn dangling_partition_component_is_reported() {
        let (d, mut p) = annotated_fixture();
        let n = d.graph().node_ids().next().unwrap();
        p.assign_node(n, PmRef::Processor(ProcessorId::from_raw(44)));
        let report = validate(&d, Some(&p));
        assert!(
            report
                .errors()
                .any(|i| matches!(i.core_error(), Some(CoreError::UnknownComponent { .. }))),
            "{report}"
        );
    }

    #[test]
    fn shape_mismatch_is_one_clear_error() {
        let (d, _) = annotated_fixture();
        let other = Design::new("other");
        let p = Partition::new(&other);
        let report = validate(&d, Some(&p));
        assert!(report.has_errors(), "{report}");
        assert!(
            report.errors().any(|i| i.message().contains("shape")),
            "{report}"
        );
    }

    #[test]
    fn report_display_lists_every_issue() {
        let mut report = ValidationReport::new();
        report.push(ValidationIssue::error("first problem"));
        report.push(ValidationIssue::warning("second problem"));
        let s = report.to_string();
        assert!(s.contains("1 error(s), 1 warning(s)"), "{s}");
        assert!(s.contains("error: first problem"), "{s}");
        assert!(s.contains("warning: second problem"), "{s}");
        assert_eq!(report.len(), 2);
        assert!(!report.is_empty());
        assert!(!report.is_clean());
    }

    #[test]
    fn into_result_prefers_typed_errors() {
        let mut report = ValidationReport::new();
        report.push(ValidationIssue::warning("ignorable"));
        report.push(ValidationIssue::from_error(CoreError::UnmappedNode {
            node: NodeId::from_raw(1),
        }));
        assert_eq!(
            report.into_result(),
            Err(CoreError::UnmappedNode {
                node: NodeId::from_raw(1)
            })
        );
        let mut free = ValidationReport::new();
        free.push(ValidationIssue::error("shape mismatch"));
        assert!(matches!(
            free.into_result(),
            Err(CoreError::InvalidInput { .. })
        ));
    }

    #[test]
    fn merge_extend_and_collect_preserve_order() {
        let mut a = ValidationReport::new();
        a.push(ValidationIssue::error("one"));
        let mut b = ValidationReport::new();
        b.push(ValidationIssue::warning("two"));
        b.push(ValidationIssue::error("three"));
        a.merge(b);
        assert_eq!(a.len(), 3);
        let messages: Vec<&str> = a.issues().iter().map(|i| i.message()).collect();
        assert_eq!(messages, ["one", "two", "three"]);

        a.extend(std::iter::once(ValidationIssue::warning("four")));
        assert_eq!(a.len(), 4);

        let collected: ValidationReport = vec![
            ValidationIssue::warning("w"),
            ValidationIssue::error("e"),
        ]
        .into_iter()
        .collect();
        assert_eq!(collected.len(), 2);
        assert!(collected.has_errors());
        assert_eq!(collected.warnings().count(), 1);
    }

    #[test]
    fn severity_display() {
        assert_eq!(IssueSeverity::Warning.to_string(), "warning");
        assert_eq!(IssueSeverity::Error.to_string(), "error");
        assert!(IssueSeverity::Warning < IssueSeverity::Error);
    }
}
