//! Partitions: the mapping of functional objects to system components.
//!
//! "A partition is a mapping of channels to buses, of behaviors to
//! processors, and of variables to either processors or memories, such that
//! each functional object is mapped to exactly one system component"
//! (Section 2.2). [`Partition`] stores that mapping densely (one slot per
//! node and per channel), supports O(1) reassignment for partitioning
//! algorithms that examine thousands of candidates, and validates the
//! paper's proper-partition conditions on demand.

use crate::design::Design;
use crate::error::CoreError;
use crate::ids::{AccessTarget, BusId, ChannelId, NodeId, PmRef, ProcessorId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A (possibly incomplete) mapping of nodes to processors/memories and of
/// channels to buses.
///
/// A partition is created against a specific design and keeps one entry per
/// node and per channel of that design's graph. It does not borrow the
/// design: algorithms clone and mutate partitions freely, then validate
/// against the design with [`validate`](Partition::validate).
///
/// # Examples
///
/// ```
/// use slif_core::{AccessKind, Bus, ClassKind, Design, NodeKind, Partition};
///
/// let mut d = Design::new("demo");
/// let pc = d.add_class("proc", ClassKind::StdProcessor);
/// let main = d.graph_mut().add_node("Main", NodeKind::process());
/// let v = d.graph_mut().add_node("v", NodeKind::scalar(8));
/// let c = d.graph_mut().add_channel(main, v.into(), AccessKind::Read)?;
/// // A proper partition needs ict/size weights for the mapped class.
/// for n in [main, v] {
///     d.graph_mut().node_mut(n).ict_mut().set(pc, 10);
///     d.graph_mut().node_mut(n).size_mut().set(pc, 100);
/// }
/// let cpu = d.add_processor("cpu", pc);
/// let bus = d.add_bus(Bus::new("b", 8, 1, 2));
///
/// let mut part = Partition::new(&d);
/// part.assign_node(main, cpu.into());
/// part.assign_node(v, cpu.into());
/// part.assign_channel(c, bus);
/// assert!(part.validate(&d).is_ok());
/// # Ok::<(), slif_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    node_to_comp: Vec<Option<PmRef>>,
    chan_to_bus: Vec<Option<BusId>>,
}

impl Partition {
    /// Creates an empty (fully unassigned) partition shaped for `design`.
    pub fn new(design: &Design) -> Self {
        Self {
            node_to_comp: vec![None; design.graph().node_count()],
            chan_to_bus: vec![None; design.graph().channel_count()],
        }
    }

    /// Assigns node `n` to a processor or memory, returning the previous
    /// assignment.
    ///
    /// # Panics
    ///
    /// Panics if `n` did not come from the design this partition was
    /// created for.
    pub fn assign_node(&mut self, n: NodeId, comp: PmRef) -> Option<PmRef> {
        self.node_to_comp[n.index()].replace(comp)
    }

    /// Removes node `n`'s assignment, returning it.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range for this partition.
    pub fn unassign_node(&mut self, n: NodeId) -> Option<PmRef> {
        self.node_to_comp[n.index()].take()
    }

    /// Assigns channel `c` to a bus, returning the previous assignment.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range for this partition.
    pub fn assign_channel(&mut self, c: ChannelId, bus: BusId) -> Option<BusId> {
        self.chan_to_bus[c.index()].replace(bus)
    }

    /// Removes channel `c`'s assignment, returning it.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range for this partition.
    pub fn unassign_channel(&mut self, c: ChannelId) -> Option<BusId> {
        self.chan_to_bus[c.index()].take()
    }

    /// The component node `n` is mapped to — the paper's `GetBvComp(bv)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range for this partition.
    pub fn node_component(&self, n: NodeId) -> Option<PmRef> {
        self.node_to_comp[n.index()]
    }

    /// The bus channel `c` is mapped to — the paper's `GetChanBus(c)`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range for this partition.
    pub fn channel_bus(&self, c: ChannelId) -> Option<BusId> {
        self.chan_to_bus[c.index()]
    }

    /// Returns `true` when every node and channel is assigned.
    pub fn is_complete(&self) -> bool {
        self.node_to_comp.iter().all(Option::is_some)
            && self.chan_to_bus.iter().all(Option::is_some)
    }

    /// Iterates over the nodes mapped to component `comp` (a processor's
    /// `BV` set or a memory's `V` set).
    pub fn nodes_on(&self, comp: PmRef) -> impl Iterator<Item = NodeId> + '_ {
        self.node_to_comp
            .iter()
            .enumerate()
            .filter(move |(_, c)| **c == Some(comp))
            .map(|(i, _)| NodeId::from_raw(i as u32))
    }

    /// Iterates over the channels mapped to bus `bus` (the bus's `C` set).
    pub fn channels_on(&self, bus: BusId) -> impl Iterator<Item = ChannelId> + '_ {
        self.chan_to_bus
            .iter()
            .enumerate()
            .filter(move |(_, b)| **b == Some(bus))
            .map(|(i, _)| ChannelId::from_raw(i as u32))
    }

    /// Validates the paper's proper-partition conditions against `design`:
    ///
    /// * every node is mapped to an existing component, every channel to an
    ///   existing bus (exactly-one mapping; disjointness is structural
    ///   because the mapping is a function);
    /// * behaviors are mapped only to processors;
    /// * every node has `ict` and `size` weights for the class of its
    ///   component ("one weight for each type of system component on which
    ///   that node could possibly be implemented").
    ///
    /// # Errors
    ///
    /// The first violation found, as a [`CoreError`].
    pub fn validate(&self, design: &Design) -> Result<(), CoreError> {
        let g = design.graph();
        for n in g.node_ids() {
            let comp = self.node_to_comp[n.index()].ok_or(CoreError::UnmappedNode { node: n })?;
            match comp {
                PmRef::Processor(p) => {
                    if p.index() >= design.processor_count() {
                        return Err(CoreError::UnknownComponent { component: comp });
                    }
                }
                PmRef::Memory(m) => {
                    if m.index() >= design.memory_count() {
                        return Err(CoreError::UnknownComponent { component: comp });
                    }
                    if g.node(n).kind().is_behavior() {
                        return Err(CoreError::BehaviorInMemory { node: n, memory: m });
                    }
                }
            }
            let class = design.component_class(comp);
            let node = g.node(n);
            if node.kind().is_behavior() && !node.ict().supports(class) {
                return Err(CoreError::MissingWeight {
                    node: n,
                    list: "ict",
                    component: comp,
                });
            }
            if !node.size().supports(class) {
                return Err(CoreError::MissingWeight {
                    node: n,
                    list: "size",
                    component: comp,
                });
            }
        }
        for c in g.channel_ids() {
            let bus =
                self.chan_to_bus[c.index()].ok_or(CoreError::UnmappedChannel { channel: c })?;
            if bus.index() >= design.bus_count() {
                return Err(CoreError::UnknownBus { bus });
            }
        }
        Ok(())
    }

    /// The channels crossing the boundary of processor `p` — the paper's
    /// `CutChans(p)`: channels connecting an object on `p` with an object
    /// (or external port) not on `p`.
    ///
    /// External ports are not on any component, so a channel touching a
    /// port from an object on `p` always crosses the boundary.
    pub fn cut_channels<'a>(
        &'a self,
        design: &'a Design,
        p: ProcessorId,
    ) -> impl Iterator<Item = ChannelId> + 'a {
        let comp = PmRef::Processor(p);
        // Out-of-range endpoints (a corrupted graph) count as "not on the
        // component" instead of panicking; validation reports them.
        let on_comp = move |n: NodeId| {
            n.index() < self.node_to_comp.len() && self.node_component(n) == Some(comp)
        };
        design.graph().channel_ids().filter(move |&c| {
            let ch = design.graph().channel(c);
            let src_on = on_comp(ch.src());
            let dst_on = match ch.dst() {
                AccessTarget::Node(n) => on_comp(n),
                AccessTarget::Port(_) => false,
            };
            src_on != dst_on
        })
    }

    /// The buses crossing the boundary of processor `p` — the paper's
    /// `CutBuses(p)`: buses implementing at least one cut channel.
    ///
    /// The result is sorted and duplicate-free.
    pub fn cut_buses(&self, design: &Design, p: ProcessorId) -> Vec<BusId> {
        let mut buses: Vec<BusId> = self
            .cut_channels(design, p)
            .filter_map(|c| self.channel_bus(c))
            .collect();
        buses.sort();
        buses.dedup();
        buses
    }

    /// Number of node slots (the design's node count at creation).
    pub fn node_slots(&self) -> usize {
        self.node_to_comp.len()
    }

    /// Number of channel slots (the design's channel count at creation).
    pub fn channel_slots(&self) -> usize {
        self.chan_to_bus.len()
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let assigned_nodes = self.node_to_comp.iter().flatten().count();
        let assigned_chans = self.chan_to_bus.iter().flatten().count();
        write!(
            f,
            "partition: {}/{} nodes, {}/{} channels assigned",
            assigned_nodes,
            self.node_to_comp.len(),
            assigned_chans,
            self.chan_to_bus.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::AccessKind;
    use crate::component::{Bus, ClassKind};
    use crate::ids::MemoryId;
    use crate::node::NodeKind;

    /// main --call--> sub --write--> v, one cpu + one asic + one ram + one bus.
    #[allow(clippy::type_complexity)]
    fn fixture() -> (
        Design,
        (NodeId, NodeId, NodeId),
        (ChannelId, ChannelId),
        (ProcessorId, ProcessorId, MemoryId, BusId),
    ) {
        let mut d = Design::new("t");
        let pc = d.add_class("proc", ClassKind::StdProcessor);
        let ac = d.add_class("asic", ClassKind::CustomHw);
        let mc = d.add_class("sram", ClassKind::Memory);
        let main = d.graph_mut().add_node("Main", NodeKind::process());
        let sub = d.graph_mut().add_node("Sub", NodeKind::procedure());
        let v = d.graph_mut().add_node("v", NodeKind::scalar(8));
        let c1 = d
            .graph_mut()
            .add_channel(main, sub.into(), AccessKind::Call)
            .unwrap();
        let c2 = d
            .graph_mut()
            .add_channel(sub, v.into(), AccessKind::Write)
            .unwrap();
        // Annotate weights for every class so validation passes.
        for n in [main, sub] {
            for k in [pc, ac] {
                d.graph_mut().node_mut(n).ict_mut().set(k, 10);
                d.graph_mut().node_mut(n).size_mut().set(k, 100);
            }
        }
        for k in [pc, ac, mc] {
            d.graph_mut().node_mut(v).ict_mut().set(k, 1);
            d.graph_mut().node_mut(v).size_mut().set(k, 1);
        }
        let cpu = d.add_processor("cpu", pc);
        let asic = d.add_processor("asic", ac);
        let ram = d.add_memory("ram", mc);
        let bus = d.add_bus(Bus::new("b", 8, 1, 2));
        (d, (main, sub, v), (c1, c2), (cpu, asic, ram, bus))
    }

    #[test]
    fn complete_partition_validates() {
        let (d, (main, sub, v), (c1, c2), (cpu, _asic, ram, bus)) = fixture();
        let mut part = Partition::new(&d);
        part.assign_node(main, cpu.into());
        part.assign_node(sub, cpu.into());
        part.assign_node(v, ram.into());
        part.assign_channel(c1, bus);
        part.assign_channel(c2, bus);
        assert!(part.is_complete());
        part.validate(&d).unwrap();
    }

    #[test]
    fn unmapped_node_fails_validation() {
        let (d, (main, sub, _v), (c1, c2), (cpu, _asic, _ram, bus)) = fixture();
        let mut part = Partition::new(&d);
        part.assign_node(main, cpu.into());
        part.assign_node(sub, cpu.into());
        part.assign_channel(c1, bus);
        part.assign_channel(c2, bus);
        assert!(!part.is_complete());
        assert!(matches!(
            part.validate(&d),
            Err(CoreError::UnmappedNode { .. })
        ));
    }

    #[test]
    fn behavior_in_memory_fails_validation() {
        let (d, (main, sub, v), (c1, c2), (cpu, _asic, ram, bus)) = fixture();
        let mut part = Partition::new(&d);
        part.assign_node(main, cpu.into());
        part.assign_node(sub, ram.into()); // illegal
        part.assign_node(v, ram.into());
        part.assign_channel(c1, bus);
        part.assign_channel(c2, bus);
        assert!(matches!(
            part.validate(&d),
            Err(CoreError::BehaviorInMemory { .. })
        ));
    }

    #[test]
    fn missing_weight_fails_validation() {
        let (mut d, _, _, _) = fixture();
        // A fresh node with no weights at all.
        let orphan = d.graph_mut().add_node("orphan", NodeKind::procedure());
        let cpu = d.processor_by_name("cpu").unwrap();
        let mut part = Partition::new(&d);
        // Assign everything to cpu / ram / bus.
        let ram = d.memory_by_name("ram").unwrap();
        let bus = d.bus_by_name("b").unwrap();
        for n in d.graph().node_ids() {
            if d.graph().node(n).kind().is_behavior() {
                part.assign_node(n, cpu.into());
            } else {
                part.assign_node(n, ram.into());
            }
        }
        for c in d.graph().channel_ids() {
            part.assign_channel(c, bus);
        }
        let err = part.validate(&d).unwrap_err();
        assert_eq!(
            err,
            CoreError::MissingWeight {
                node: orphan,
                list: "ict",
                component: cpu.into()
            }
        );
    }

    #[test]
    fn dangling_component_fails_validation() {
        let (d, (main, sub, v), (c1, c2), (cpu, _asic, ram, bus)) = fixture();
        let mut part = Partition::new(&d);
        part.assign_node(main, cpu.into());
        part.assign_node(sub, PmRef::Processor(ProcessorId::from_raw(99)));
        part.assign_node(v, ram.into());
        part.assign_channel(c1, bus);
        part.assign_channel(c2, bus);
        assert!(matches!(
            part.validate(&d),
            Err(CoreError::UnknownComponent { .. })
        ));
    }

    #[test]
    fn dangling_bus_fails_validation() {
        let (d, (main, sub, v), (c1, c2), (cpu, _asic, ram, bus)) = fixture();
        let mut part = Partition::new(&d);
        part.assign_node(main, cpu.into());
        part.assign_node(sub, cpu.into());
        part.assign_node(v, ram.into());
        part.assign_channel(c1, bus);
        part.assign_channel(c2, BusId::from_raw(42));
        assert!(matches!(
            part.validate(&d),
            Err(CoreError::UnknownBus { .. })
        ));
    }

    #[test]
    fn membership_queries() {
        let (d, (main, sub, v), (c1, c2), (cpu, asic, ram, bus)) = fixture();
        let mut part = Partition::new(&d);
        part.assign_node(main, cpu.into());
        part.assign_node(sub, asic.into());
        part.assign_node(v, ram.into());
        part.assign_channel(c1, bus);
        part.assign_channel(c2, bus);
        assert_eq!(part.nodes_on(cpu.into()).collect::<Vec<_>>(), vec![main]);
        assert_eq!(part.nodes_on(asic.into()).collect::<Vec<_>>(), vec![sub]);
        assert_eq!(part.nodes_on(ram.into()).collect::<Vec<_>>(), vec![v]);
        assert_eq!(part.channels_on(bus).collect::<Vec<_>>(), vec![c1, c2]);
    }

    #[test]
    fn cut_channels_and_buses() {
        let (d, (main, sub, v), (c1, c2), (cpu, asic, ram, bus)) = fixture();
        let mut part = Partition::new(&d);
        part.assign_node(main, cpu.into());
        part.assign_node(sub, asic.into());
        part.assign_node(v, ram.into());
        part.assign_channel(c1, bus);
        part.assign_channel(c2, bus);
        // cpu boundary: c1 (main on cpu, sub on asic) crosses; c2 does not touch cpu.
        assert_eq!(part.cut_channels(&d, cpu).collect::<Vec<_>>(), vec![c1]);
        // asic boundary: both c1 (into asic) and c2 (out of asic) cross.
        assert_eq!(
            part.cut_channels(&d, asic).collect::<Vec<_>>(),
            vec![c1, c2]
        );
        assert_eq!(part.cut_buses(&d, asic), vec![bus]);
    }

    #[test]
    fn channel_to_port_counts_as_cut() {
        let (mut d, (main, _sub, _v), _, (cpu, _asic, _ram, bus)) = fixture();
        let p = d
            .graph_mut()
            .add_port("out1", crate::node::PortDirection::Out, 8);
        let c3 = d
            .graph_mut()
            .add_channel(main, p.into(), AccessKind::Write)
            .unwrap();
        let mut part = Partition::new(&d);
        part.assign_node(main, cpu.into());
        part.assign_channel(c3, bus);
        let cut: Vec<_> = part.cut_channels(&d, cpu).collect();
        assert!(cut.contains(&c3));
    }

    #[test]
    fn reassignment_returns_previous() {
        let (d, (main, ..), (c1, _), (cpu, asic, _ram, bus)) = fixture();
        let mut part = Partition::new(&d);
        assert_eq!(part.assign_node(main, cpu.into()), None);
        assert_eq!(part.assign_node(main, asic.into()), Some(cpu.into()));
        assert_eq!(part.unassign_node(main), Some(asic.into()));
        assert_eq!(part.node_component(main), None);
        assert_eq!(part.assign_channel(c1, bus), None);
        assert_eq!(part.unassign_channel(c1), Some(bus));
    }
}
